//! Market regions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a market region (index into the fleet's region list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub usize);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region-{}", self.0)
    }
}

impl From<usize> for RegionId {
    fn from(i: usize) -> Self {
        RegionId(i)
    }
}

/// A named electricity-market region (e.g. a MISO hub).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    id: RegionId,
    name: String,
}

impl Region {
    /// Creates a region with the given id and display name.
    pub fn new(id: impl Into<RegionId>, name: impl Into<String>) -> Self {
        Region {
            id: id.into(),
            name: name.into(),
        }
    }

    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The region's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The three regions of the paper's evaluation (Sec. V-A).
pub fn paper_regions() -> Vec<Region> {
    vec![
        Region::new(0, "Michigan"),
        Region::new(1, "Minnesota"),
        Region::new(2, "Wisconsin"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_accessors_and_display() {
        let r = Region::new(2, "Wisconsin");
        assert_eq!(r.id(), RegionId(2));
        assert_eq!(r.name(), "Wisconsin");
        assert_eq!(r.to_string(), "Wisconsin");
        assert_eq!(RegionId(2).to_string(), "region-2");
    }

    #[test]
    fn paper_regions_match_section_v() {
        let rs = paper_regions();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].name(), "Michigan");
        assert_eq!(rs[1].name(), "Minnesota");
        assert_eq!(rs[2].name(), "Wisconsin");
        assert_eq!(rs[2].id(), RegionId::from(2));
    }
}
