//! Hourly real-time electricity price traces (paper Fig. 2 / Table III).
//!
//! The paper drives its simulations with MISO real-time prices for
//! Michigan, Minnesota and Wisconsin on October 3, 2011, adjusted every
//! hour. The MISO archive is not available offline, so
//! [`miso_oct3_2011`] embeds synthetic 24-hour traces that (a) equal the
//! paper's Table III values *exactly* at hours 6 and 7 — the two hours the
//! smoothing and peak-shaving experiments straddle — and (b) follow the
//! qualitative shape of Fig. 2: a Michigan morning ramp toward an afternoon
//! peak, a flat Minnesota profile, and a volatile Wisconsin profile with a
//! negative-price dip in the early morning and a violent spike at hour 7.

use serde::{Deserialize, Serialize};

use crate::region::{Region, RegionId};

/// A 24-hour real-time price trace for one region, in $/MWh. Prices are a
/// step function of the hour (RTP updates hourly in the paper's market).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    region: Region,
    /// `hourly[h]` is the price during `[h, h+1)`, h = 0..24.
    hourly: Vec<f64>,
}

impl PriceTrace {
    /// Creates a trace from 24 hourly prices.
    ///
    /// Returns `None` unless exactly 24 finite values are supplied.
    pub fn new(region: Region, hourly: Vec<f64>) -> Option<Self> {
        if hourly.len() != 24 || hourly.iter().any(|p| !p.is_finite()) {
            return None;
        }
        Some(PriceTrace { region, hourly })
    }

    /// The region this trace belongs to.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Price in effect at hour-of-day `hour` (wrapped into `[0, 24)`).
    /// Negative prices are legal — they occur in real LMP markets (and in
    /// Fig. 2) when generation exceeds transmissible demand.
    pub fn price_at_hour(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0) as usize;
        self.hourly[h.min(23)]
    }

    /// Price at `seconds` past midnight.
    pub fn price_at_seconds(&self, seconds: f64) -> f64 {
        self.price_at_hour(seconds / 3600.0)
    }

    /// Borrow of the raw hourly values.
    pub fn hourly(&self) -> &[f64] {
        &self.hourly
    }

    /// Daily mean price.
    pub fn daily_mean(&self) -> f64 {
        self.hourly.iter().sum::<f64>() / 24.0
    }

    /// Daily price volatility: standard deviation of the hourly prices.
    pub fn daily_volatility(&self) -> f64 {
        let m = self.daily_mean();
        (self.hourly.iter().map(|p| (p - m).powi(2)).sum::<f64>() / 24.0).sqrt()
    }
}

/// The pinned Oct 3 2011 MISO-like traces for the paper's three regions
/// (Michigan, Minnesota, Wisconsin — in that order, matching
/// [`crate::region::paper_regions`]).
///
/// Hours 6 and 7 are the paper's Table III verbatim:
///
/// | Hour | Michigan | Minnesota | Wisconsin |
/// |------|----------|-----------|-----------|
/// | 6H   | 43.26    | 30.26     | 19.06     |
/// | 7H   | 49.90    | 29.47     | 77.97     |
pub fn miso_oct3_2011() -> Vec<PriceTrace> {
    let michigan = vec![
        28.5, 26.1, 24.8, 23.9, 24.5, 31.2, 43.26, 49.90, 55.3, 58.7, 61.2, 63.8, 66.4, 70.1, 73.5,
        75.2, 72.8, 68.4, 62.1, 55.6, 48.9, 41.7, 35.2, 30.8,
    ];
    let minnesota = vec![
        26.4, 24.9, 23.7, 22.8, 23.1, 27.4, 30.26, 29.47, 32.8, 35.6, 38.2, 40.5, 42.3, 44.1, 45.0,
        44.2, 42.7, 40.3, 37.8, 34.9, 32.1, 29.8, 27.6, 26.9,
    ];
    let wisconsin = vec![
        22.4, 18.7, 5.2, -12.6, -21.3, 2.8, 19.06, 77.97, 64.3, 52.1, 45.8, 41.2, 43.7, 48.9, 53.2,
        57.6, 54.1, 49.3, 42.8, 36.4, 30.2, 26.7, 24.1, 23.0,
    ];
    vec![
        PriceTrace::new(Region::new(0, "Michigan"), michigan).expect("24 finite values"),
        PriceTrace::new(Region::new(1, "Minnesota"), minnesota).expect("24 finite values"),
        PriceTrace::new(Region::new(2, "Wisconsin"), wisconsin).expect("24 finite values"),
    ]
}

/// A flat trace (useful for tests and ablations).
pub fn constant_trace(region: Region, price: f64) -> PriceTrace {
    PriceTrace::new(region, vec![price; 24]).expect("finite constant")
}

/// Prices of every trace at the given hour, in trace order — the `Prj`
/// vector the controller consumes.
pub fn prices_at_hour(traces: &[PriceTrace], hour: f64) -> Vec<f64> {
    traces.iter().map(|t| t.price_at_hour(hour)).collect()
}

/// Looks up a trace by region id.
pub fn trace_for_region(traces: &[PriceTrace], id: RegionId) -> Option<&PriceTrace> {
    traces.iter().find(|t| t.region.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_requires_24_finite_values() {
        let r = Region::new(0, "X");
        assert!(PriceTrace::new(r.clone(), vec![1.0; 23]).is_none());
        assert!(PriceTrace::new(r.clone(), vec![1.0; 25]).is_none());
        let mut bad = vec![1.0; 24];
        bad[3] = f64::NAN;
        assert!(PriceTrace::new(r.clone(), bad).is_none());
        assert!(PriceTrace::new(r, vec![1.0; 24]).is_some());
    }

    #[test]
    fn table_iii_values_are_exact() {
        let traces = miso_oct3_2011();
        assert_eq!(traces[0].price_at_hour(6.0), 43.26);
        assert_eq!(traces[0].price_at_hour(7.0), 49.90);
        assert_eq!(traces[1].price_at_hour(6.0), 30.26);
        assert_eq!(traces[1].price_at_hour(7.0), 29.47);
        assert_eq!(traces[2].price_at_hour(6.0), 19.06);
        assert_eq!(traces[2].price_at_hour(7.0), 77.97);
    }

    #[test]
    fn price_is_step_function_within_hour() {
        let traces = miso_oct3_2011();
        assert_eq!(traces[0].price_at_hour(6.0), traces[0].price_at_hour(6.99));
        assert_ne!(traces[0].price_at_hour(6.99), traces[0].price_at_hour(7.0));
    }

    #[test]
    fn hour_wraps_around_midnight() {
        let traces = miso_oct3_2011();
        assert_eq!(traces[0].price_at_hour(24.5), traces[0].price_at_hour(0.5));
        assert_eq!(traces[0].price_at_hour(-1.0), traces[0].price_at_hour(23.0));
    }

    #[test]
    fn seconds_accessor_matches_hours() {
        let traces = miso_oct3_2011();
        assert_eq!(
            traces[1].price_at_seconds(6.5 * 3600.0),
            traces[1].price_at_hour(6.5)
        );
    }

    #[test]
    fn wisconsin_has_negative_morning_dip_like_fig2() {
        let traces = miso_oct3_2011();
        let min = traces[2]
            .hourly()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(min < 0.0, "Wisconsin min {min}");
        // And the other regions stay positive.
        assert!(traces[0].hourly().iter().all(|&p| p > 0.0));
        assert!(traces[1].hourly().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn wisconsin_is_most_volatile_like_fig2() {
        let traces = miso_oct3_2011();
        let vol: Vec<f64> = traces.iter().map(|t| t.daily_volatility()).collect();
        assert!(vol[2] > vol[0] && vol[2] > vol[1], "{vol:?}");
        // Minnesota is the flattest.
        assert!(vol[1] < vol[0], "{vol:?}");
    }

    #[test]
    fn price_ranking_flips_between_6h_and_7h() {
        // This flip is what drives the smoothing/peak-shaving experiments:
        // Wisconsin is cheapest at 6H and the most expensive at 7H.
        let traces = miso_oct3_2011();
        let p6 = prices_at_hour(&traces, 6.0);
        let p7 = prices_at_hour(&traces, 7.0);
        assert!(p6[2] < p6[1] && p6[1] < p6[0]);
        assert!(p7[2] > p7[0] && p7[0] > p7[1]);
    }

    #[test]
    fn helpers_work() {
        let traces = miso_oct3_2011();
        assert_eq!(
            trace_for_region(&traces, RegionId(1))
                .unwrap()
                .region()
                .name(),
            "Minnesota"
        );
        assert!(trace_for_region(&traces, RegionId(9)).is_none());
        let flat = constant_trace(Region::new(5, "Flat"), 42.0);
        assert_eq!(flat.daily_mean(), 42.0);
        assert_eq!(flat.daily_volatility(), 0.0);
    }
}
