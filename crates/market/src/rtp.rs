//! Real-time pricing abstraction: `Pr_j = f(region, time, load)`
//! (paper eq. 9).
//!
//! Two implementations matter for the reproduction:
//!
//! * [`TracePricing`] — prices come from an hourly trace and are
//!   *independent of the data centers' own demand*; this is what the
//!   paper's Sec. V simulations use.
//! * [`DemandResponsivePricing`] — prices respond linearly to the IDC's own
//!   power draw, modelling the observation (paper Sec. I, citing Zhang et
//!   al. \[10\].) that MW-scale consumers move the wholesale price. This is
//!   the ingredient of the demand↔price "vicious cycle" extension
//!   experiment.

use crate::trace::PriceTrace;

/// A real-time price source: $/MWh as a function of region index, hour of
/// day and the consumer's own power draw (MW).
pub trait PricingModel {
    /// Price for `region` at `hour` (0–24, wrapping) when the consumer
    /// draws `own_load_mw`.
    fn price(&self, region: usize, hour: f64, own_load_mw: f64) -> f64;

    /// Number of regions priced by this model.
    fn num_regions(&self) -> usize;

    /// Convenience: the price vector `[Pr_1, …, Pr_N]` at `hour` for the
    /// given per-region loads.
    ///
    /// # Panics
    ///
    /// Panics if `own_loads_mw.len() != self.num_regions()`.
    fn prices(&self, hour: f64, own_loads_mw: &[f64]) -> Vec<f64> {
        assert_eq!(
            own_loads_mw.len(),
            self.num_regions(),
            "one load per region required"
        );
        (0..self.num_regions())
            .map(|r| self.price(r, hour, own_loads_mw[r]))
            .collect()
    }
}

/// Demand-independent pricing from hourly traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePricing {
    traces: Vec<PriceTrace>,
}

impl TracePricing {
    /// Wraps a set of per-region traces (region index = position).
    pub fn new(traces: Vec<PriceTrace>) -> Self {
        TracePricing { traces }
    }

    /// Borrow of the underlying traces.
    pub fn traces(&self) -> &[PriceTrace] {
        &self.traces
    }
}

impl PricingModel for TracePricing {
    fn price(&self, region: usize, hour: f64, _own_load_mw: f64) -> f64 {
        self.traces[region].price_at_hour(hour)
    }

    fn num_regions(&self) -> usize {
        self.traces.len()
    }
}

/// Trace-based pricing with a linear demand response:
/// `Pr = trace(hour) + γ · own_load_mw`.
///
/// `γ` (`$/MWh per MW`) is the *price impact* coefficient. γ = 0 recovers
/// [`TracePricing`]; larger γ strengthens the feedback loop between the
/// controller's allocation and the prices it observes.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandResponsivePricing {
    base: TracePricing,
    gamma: f64,
}

impl DemandResponsivePricing {
    /// Creates demand-responsive pricing with impact coefficient
    /// `gamma ≥ 0`. Returns `None` for negative or non-finite `gamma`.
    pub fn new(base: TracePricing, gamma: f64) -> Option<Self> {
        if !(gamma >= 0.0) || !gamma.is_finite() {
            return None;
        }
        Some(DemandResponsivePricing { base, gamma })
    }

    /// The price-impact coefficient γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl PricingModel for DemandResponsivePricing {
    fn price(&self, region: usize, hour: f64, own_load_mw: f64) -> f64 {
        self.base.price(region, hour, own_load_mw) + self.gamma * own_load_mw
    }

    fn num_regions(&self) -> usize {
        self.base.num_regions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::miso_oct3_2011;

    #[test]
    fn trace_pricing_ignores_load() {
        let p = TracePricing::new(miso_oct3_2011());
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.price(0, 6.0, 0.0), 43.26);
        assert_eq!(p.price(0, 6.0, 100.0), 43.26);
    }

    #[test]
    fn prices_vector_matches_individual_calls() {
        let p = TracePricing::new(miso_oct3_2011());
        let v = p.prices(7.0, &[0.0, 0.0, 0.0]);
        assert_eq!(v, vec![49.90, 29.47, 77.97]);
    }

    #[test]
    #[should_panic(expected = "one load per region")]
    fn prices_vector_validates_length() {
        let p = TracePricing::new(miso_oct3_2011());
        let _ = p.prices(7.0, &[0.0]);
    }

    #[test]
    fn demand_response_raises_price_linearly() {
        let base = TracePricing::new(miso_oct3_2011());
        let dr = DemandResponsivePricing::new(base, 2.0).unwrap();
        assert_eq!(dr.gamma(), 2.0);
        assert_eq!(dr.price(1, 6.0, 0.0), 30.26);
        assert_eq!(dr.price(1, 6.0, 5.0), 30.26 + 10.0);
    }

    #[test]
    fn zero_gamma_recovers_trace_pricing() {
        let base = TracePricing::new(miso_oct3_2011());
        let dr = DemandResponsivePricing::new(base.clone(), 0.0).unwrap();
        for h in 0..24 {
            assert_eq!(dr.price(2, h as f64, 7.5), base.price(2, h as f64, 7.5));
        }
    }

    #[test]
    fn gamma_is_validated() {
        let base = TracePricing::new(miso_oct3_2011());
        assert!(DemandResponsivePricing::new(base.clone(), -1.0).is_none());
        assert!(DemandResponsivePricing::new(base, f64::NAN).is_none());
    }
}
