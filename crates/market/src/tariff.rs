//! Power budgets and peak-demand penalties.
//!
//! The paper's motivation for peak shaving (Sec. I): electricity suppliers
//! impose a peak power limit and "penalize those IDCs heavily if this limit
//! is exceeded" \[10\], and sustained high peaks force subscription to a
//! larger delivery capacity. [`PowerBudget`] carries the per-IDC budgets
//! used as the MPC reference clamp (paper Sec. IV-D); [`PeakTariff`] prices
//! violations so experiments can report the monetary effect.

use serde::{Deserialize, Serialize};

/// Per-IDC power budgets in MW (the `P_rb` of paper Sec. IV-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    budgets_mw: Vec<f64>,
}

impl PowerBudget {
    /// Creates budgets; returns `None` if any budget is negative or
    /// non-finite.
    pub fn new(budgets_mw: Vec<f64>) -> Option<Self> {
        if budgets_mw.iter().any(|b| !(*b >= 0.0) || !b.is_finite()) {
            return None;
        }
        Some(PowerBudget { budgets_mw })
    }

    /// Unlimited budgets for `n` IDCs (no peak shaving).
    pub fn unlimited(n: usize) -> Self {
        PowerBudget {
            budgets_mw: vec![f64::MAX; n],
        }
    }

    /// The paper's Sec. V-C budgets: 5.13, 10.26 and 4.275 MW for Michigan,
    /// Minnesota and Wisconsin.
    pub fn paper_section_v_c() -> Self {
        PowerBudget {
            budgets_mw: vec![5.13, 10.26, 4.275],
        }
    }

    /// Number of IDCs covered.
    pub fn len(&self) -> usize {
        self.budgets_mw.len()
    }

    /// `true` when no IDC is covered.
    pub fn is_empty(&self) -> bool {
        self.budgets_mw.is_empty()
    }

    /// Budget of IDC `j` in MW.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn budget_mw(&self, j: usize) -> f64 {
        self.budgets_mw[j]
    }

    /// Borrow of all budgets.
    pub fn as_slice(&self) -> &[f64] {
        &self.budgets_mw
    }

    /// Clamps a per-IDC power vector to the budgets (the paper's reference
    /// clamp: `P_r = min(P_ro, P_rb)`).
    ///
    /// # Panics
    ///
    /// Panics if `power_mw.len() != self.len()`.
    pub fn clamp(&self, power_mw: &[f64]) -> Vec<f64> {
        assert_eq!(power_mw.len(), self.len(), "one power value per IDC");
        power_mw
            .iter()
            .zip(&self.budgets_mw)
            .map(|(&p, &b)| p.min(b))
            .collect()
    }

    /// Per-IDC violation magnitudes `max(0, P − budget)`.
    ///
    /// # Panics
    ///
    /// Panics if `power_mw.len() != self.len()`.
    pub fn violations(&self, power_mw: &[f64]) -> Vec<f64> {
        assert_eq!(power_mw.len(), self.len(), "one power value per IDC");
        power_mw
            .iter()
            .zip(&self.budgets_mw)
            .map(|(&p, &b)| (p - b).max(0.0))
            .collect()
    }
}

/// A peak-demand tariff: energy above the budget is charged at a penalty
/// multiple of the spot price.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakTariff {
    /// Multiplier applied to the spot price for energy drawn above budget
    /// (≥ 1).
    penalty_multiplier: f64,
}

impl PeakTariff {
    /// Creates a tariff; returns `None` if the multiplier is below 1 or
    /// non-finite.
    pub fn new(penalty_multiplier: f64) -> Option<Self> {
        if !(penalty_multiplier >= 1.0) || !penalty_multiplier.is_finite() {
            return None;
        }
        Some(PeakTariff { penalty_multiplier })
    }

    /// The penalty multiplier.
    pub fn penalty_multiplier(&self) -> f64 {
        self.penalty_multiplier
    }

    /// Cost in $ of drawing `power_mw` for `hours` at spot price
    /// `price_per_mwh`, against a `budget_mw` cap: energy below the cap at
    /// spot, energy above at spot × multiplier.
    pub fn interval_cost(
        &self,
        power_mw: f64,
        budget_mw: f64,
        price_per_mwh: f64,
        hours: f64,
    ) -> f64 {
        let within = power_mw.min(budget_mw).max(0.0);
        let excess = (power_mw - budget_mw).max(0.0);
        (within + excess * self.penalty_multiplier) * price_per_mwh * hours
    }
}

/// Plain spot energy cost in $: `price ($/MWh) × power (MW) × hours`.
pub fn energy_cost(price_per_mwh: f64, power_mw: f64, hours: f64) -> f64 {
    price_per_mwh * power_mw * hours
}

/// A demand charge: the utility bills the *maximum* power drawn over a
/// billing period at a flat $/MW rate, on top of the energy charge.
///
/// This is the tariff structure that makes batteries pay for themselves
/// (Wang et al., "Energy Storage in Datacenters", arXiv:1308.0585): a
/// single 15-minute spike sets the bill for the whole month, so shaving
/// the peak with stored energy saves `rate × shaved MW` regardless of how
/// little energy the shave itself took.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandCharge {
    /// $ per MW of billed (period-maximum) demand, per billing period.
    rate_per_mw: f64,
    /// Length of the billing period in hours (e.g. 720 for a 30-day month).
    billing_period_hours: f64,
}

impl DemandCharge {
    /// Creates a demand charge; returns `None` if the rate is negative or
    /// the billing period is not strictly positive, or either is
    /// non-finite.
    pub fn new(rate_per_mw: f64, billing_period_hours: f64) -> Option<Self> {
        if !(rate_per_mw >= 0.0)
            || !rate_per_mw.is_finite()
            || !(billing_period_hours > 0.0)
            || !billing_period_hours.is_finite()
        {
            return None;
        }
        Some(DemandCharge {
            rate_per_mw,
            billing_period_hours,
        })
    }

    /// A representative US commercial tariff: $12/kW-month over a 30-day
    /// (720 h) billing period.
    pub fn typical_commercial() -> Self {
        DemandCharge {
            rate_per_mw: 12_000.0,
            billing_period_hours: 720.0,
        }
    }

    /// $ per MW of billed demand per billing period.
    pub fn rate_per_mw(&self) -> f64 {
        self.rate_per_mw
    }

    /// Billing period length in hours.
    pub fn billing_period_hours(&self) -> f64 {
        self.billing_period_hours
    }

    /// The period rate amortized to $/MW/hour — the weight a per-hour
    /// optimization should put on the billed-peak epigraph variable so the
    /// instantaneous objective and the monthly bill agree in expectation.
    pub fn hourly_weight(&self) -> f64 {
        self.rate_per_mw / self.billing_period_hours
    }

    /// The bill in $ for the given per-IDC period-maximum demands (MW).
    pub fn bill(&self, billed_peaks_mw: &[f64]) -> f64 {
        billed_peaks_mw
            .iter()
            .map(|&p| self.rate_per_mw * p.max(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_constructor_validates() {
        assert!(PowerBudget::new(vec![1.0, -2.0]).is_none());
        assert!(PowerBudget::new(vec![f64::NAN]).is_none());
        assert!(PowerBudget::new(vec![1.0, 2.0]).is_some());
    }

    #[test]
    fn paper_budgets_match_section_v_c() {
        let b = PowerBudget::paper_section_v_c();
        assert_eq!(b.as_slice(), &[5.13, 10.26, 4.275]);
        assert_eq!(b.budget_mw(2), 4.275);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn clamp_and_violations() {
        let b = PowerBudget::paper_section_v_c();
        // The paper's 7H optimal powers: 5.7, 11.4, 1.628775 MW.
        let p = [5.7, 11.4, 1.628775];
        assert_eq!(b.clamp(&p), vec![5.13, 10.26, 1.628775]);
        let v = b.violations(&p);
        assert!((v[0] - 0.57).abs() < 1e-12);
        assert!((v[1] - 1.14).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn unlimited_budget_never_clamps() {
        let b = PowerBudget::unlimited(2);
        assert_eq!(b.clamp(&[1e9, 2e9]), vec![1e9, 2e9]);
        assert_eq!(b.violations(&[1e9, 2e9]), vec![0.0, 0.0]);
    }

    #[test]
    fn tariff_charges_penalty_only_above_budget() {
        let t = PeakTariff::new(3.0).unwrap();
        assert_eq!(t.penalty_multiplier(), 3.0);
        // Under budget: plain energy cost.
        assert_eq!(t.interval_cost(4.0, 5.0, 10.0, 1.0), 40.0);
        // 2 MW over budget: 5 at spot + 2 at 3× spot.
        assert_eq!(t.interval_cost(7.0, 5.0, 10.0, 1.0), 50.0 + 60.0);
        // Fractional hours scale linearly.
        assert_eq!(t.interval_cost(7.0, 5.0, 10.0, 0.5), 55.0);
    }

    #[test]
    fn tariff_validates_multiplier() {
        assert!(PeakTariff::new(0.5).is_none());
        assert!(PeakTariff::new(f64::INFINITY).is_none());
        assert!(PeakTariff::new(1.0).is_some());
    }

    #[test]
    fn plain_energy_cost() {
        assert_eq!(energy_cost(30.0, 2.0, 1.0), 60.0);
        assert_eq!(energy_cost(30.0, 2.0, 0.0), 0.0);
        // Negative prices (Fig. 2's Wisconsin dip) yield negative cost —
        // the consumer is paid to draw power.
        assert!(energy_cost(-20.0, 2.0, 1.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "one power value per IDC")]
    fn clamp_validates_length() {
        PowerBudget::paper_section_v_c().clamp(&[1.0]);
    }

    #[test]
    fn demand_charge_validates() {
        assert!(DemandCharge::new(-1.0, 720.0).is_none());
        assert!(DemandCharge::new(1.0, 0.0).is_none());
        assert!(DemandCharge::new(f64::NAN, 720.0).is_none());
        assert!(DemandCharge::new(1.0, f64::INFINITY).is_none());
        assert!(DemandCharge::new(0.0, 1.0).is_some());
    }

    #[test]
    fn demand_charge_bill_and_weight() {
        let dc = DemandCharge::typical_commercial();
        assert_eq!(dc.rate_per_mw(), 12_000.0);
        assert_eq!(dc.billing_period_hours(), 720.0);
        // $12k/MW-month over 720 h amortizes to $16.67/MW/h.
        assert!((dc.hourly_weight() - 12_000.0 / 720.0).abs() < 1e-12);
        // 5 MW + 10 MW billed peaks → $180k; negative peaks bill nothing.
        assert_eq!(dc.bill(&[5.0, 10.0]), 180_000.0);
        assert_eq!(dc.bill(&[-1.0]), 0.0);
    }
}
