//! Renewable ("green") generation profiles (paper Sec. II, citing Liu et
//! al. \[6\].: can geographic load balancing "additionally encourage the use
//! of green energy and reduce the use of brown energy"?).
//!
//! Each region has an hourly renewable generation profile (MW) available
//! to the IDC behind the meter. Consumption up to the profile is *green*
//! (zero marginal cost here); the excess is *brown* and pays the LMP. The
//! green-aware reference optimizer in `idc-control` uses these profiles to
//! bias load toward momentarily green regions.

use serde::{Deserialize, Serialize};

/// An hourly renewable-generation profile for one region (MW available).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenewableProfile {
    /// `hourly[h]` = renewable MW available during `[h, h+1)`.
    hourly: Vec<f64>,
}

impl RenewableProfile {
    /// Creates a profile from 24 hourly values. Returns `None` unless
    /// exactly 24 finite non-negative values are supplied.
    pub fn new(hourly: Vec<f64>) -> Option<Self> {
        if hourly.len() != 24 || hourly.iter().any(|g| !(*g >= 0.0) || !g.is_finite()) {
            return None;
        }
        Some(RenewableProfile { hourly })
    }

    /// A zero profile (no renewables).
    pub fn none() -> Self {
        RenewableProfile {
            hourly: vec![0.0; 24],
        }
    }

    /// A solar-like bell profile peaking at `peak_mw` around 13:00, zero
    /// at night.
    ///
    /// Returns `None` for negative or non-finite `peak_mw`.
    pub fn solar(peak_mw: f64) -> Option<Self> {
        if !(peak_mw >= 0.0) || !peak_mw.is_finite() {
            return None;
        }
        let hourly = (0..24)
            .map(|h| {
                let x = (h as f64 - 13.0) / 4.5;
                if (6..=20).contains(&h) {
                    peak_mw * (-x * x).exp()
                } else {
                    0.0
                }
            })
            .collect();
        Some(RenewableProfile { hourly })
    }

    /// A wind-like profile: `base_mw` with a stronger night component.
    ///
    /// Returns `None` for negative or non-finite `base_mw`.
    pub fn wind(base_mw: f64) -> Option<Self> {
        if !(base_mw >= 0.0) || !base_mw.is_finite() {
            return None;
        }
        let hourly = (0..24)
            .map(|h| {
                let phase = (h as f64 - 3.0) * std::f64::consts::TAU / 24.0;
                base_mw * (1.0 + 0.4 * phase.cos()).max(0.0)
            })
            .collect();
        Some(RenewableProfile { hourly })
    }

    /// Renewable MW available at hour-of-day `hour` (wrapped into
    /// `[0, 24)`).
    pub fn available_at_hour(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0) as usize;
        self.hourly[h.min(23)]
    }

    /// Borrow of the raw hourly values.
    pub fn hourly(&self) -> &[f64] {
        &self.hourly
    }

    /// Daily renewable energy (MWh).
    pub fn daily_energy_mwh(&self) -> f64 {
        self.hourly.iter().sum()
    }
}

/// Splits a consumption level against an available renewable level:
/// `(green_mw, brown_mw)`.
pub fn green_brown_split(power_mw: f64, renewable_mw: f64) -> (f64, f64) {
    let green = power_mw.max(0.0).min(renewable_mw.max(0.0));
    (green, power_mw.max(0.0) - green)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(RenewableProfile::new(vec![1.0; 23]).is_none());
        assert!(RenewableProfile::new(vec![-1.0; 24]).is_none());
        assert!(RenewableProfile::new(vec![f64::NAN; 24]).is_none());
        assert!(RenewableProfile::new(vec![1.0; 24]).is_some());
        assert!(RenewableProfile::solar(-1.0).is_none());
        assert!(RenewableProfile::wind(f64::INFINITY).is_none());
    }

    #[test]
    fn solar_peaks_at_midday_and_sleeps_at_night() {
        let s = RenewableProfile::solar(10.0).unwrap();
        assert!((s.available_at_hour(13.0) - 10.0).abs() < 1e-9);
        assert_eq!(s.available_at_hour(2.0), 0.0);
        assert!(s.available_at_hour(13.0) > s.available_at_hour(9.0));
        assert!(s.available_at_hour(9.0) > 0.0);
    }

    #[test]
    fn wind_is_stronger_at_night() {
        let w = RenewableProfile::wind(5.0).unwrap();
        assert!(w.available_at_hour(3.0) > w.available_at_hour(15.0));
        assert!(w.hourly().iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn hour_wraps() {
        let s = RenewableProfile::solar(10.0).unwrap();
        assert_eq!(s.available_at_hour(37.0), s.available_at_hour(13.0));
        assert_eq!(s.available_at_hour(-11.0), s.available_at_hour(13.0));
    }

    #[test]
    fn split_accounts_every_megawatt() {
        let (g, b) = green_brown_split(7.0, 4.0);
        assert_eq!((g, b), (4.0, 3.0));
        let (g, b) = green_brown_split(3.0, 4.0);
        assert_eq!((g, b), (3.0, 0.0));
        let (g, b) = green_brown_split(-1.0, 4.0);
        assert_eq!((g, b), (0.0, 0.0));
        let (g, b) = green_brown_split(3.0, -2.0);
        assert_eq!((g, b), (0.0, 3.0));
    }

    #[test]
    fn daily_energy_sums_profile() {
        assert_eq!(RenewableProfile::none().daily_energy_mwh(), 0.0);
        let flat = RenewableProfile::new(vec![2.0; 24]).unwrap();
        assert_eq!(flat.daily_energy_mwh(), 48.0);
    }
}
