//! Bottom-up bid-based stochastic price model (Skantze et al. \[17\].).
//!
//! The paper cites a "bottom-up bid-based stochastic price model" for
//! dynamic pricing (eq. 9: `Pr = f(region, time, load)`). Skantze's model
//! represents the market-clearing price as an exponential bid stack
//! evaluated at the load/supply gap:
//!
//! ```text
//! Pr(t) = e^{a + b·(L(t) − S(t))}
//! ```
//!
//! where load `L` and supply `S` follow mean-reverting (Ornstein–Uhlenbeck)
//! stochastic processes with diurnal drift. We implement both pieces.

use rand::Rng;

/// A mean-reverting Ornstein–Uhlenbeck process
/// `dx = κ(θ(t) − x)dt + σ dW`, discretized with exact conditional moments.
#[derive(Debug, Clone, PartialEq)]
pub struct OrnsteinUhlenbeck {
    mean_reversion: f64,
    volatility: f64,
}

impl OrnsteinUhlenbeck {
    /// Creates a process with mean-reversion rate `κ > 0` (1/hour) and
    /// volatility `σ ≥ 0` (per √hour). Returns `None` for invalid values.
    pub fn new(mean_reversion: f64, volatility: f64) -> Option<Self> {
        if !(mean_reversion > 0.0) || !(volatility >= 0.0) {
            return None;
        }
        Some(OrnsteinUhlenbeck {
            mean_reversion,
            volatility,
        })
    }

    /// Advances the state `x` by `dt` hours toward the (possibly
    /// time-varying) target `theta`, using the exact OU transition:
    /// `x' = θ + (x − θ)e^{−κ·dt} + σ√((1−e^{−2κ·dt})/(2κ)) · z`.
    pub fn step<R: Rng + ?Sized>(&self, rng: &mut R, x: f64, theta: f64, dt: f64) -> f64 {
        let decay = (-self.mean_reversion * dt).exp();
        let std = self.volatility * ((1.0 - decay * decay) / (2.0 * self.mean_reversion)).sqrt();
        theta + (x - theta) * decay + std * standard_normal(rng)
    }
}

/// Box–Muller normal variate (local copy to avoid a cross-crate dependency
/// for one function).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The exponential bid-stack price model: `Pr = exp(a + b·(load − supply))`
/// with OU-driven load and supply state.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use idc_market::stochastic::BidStackModel;
///
/// let mut model = BidStackModel::paper_like(0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let prices = model.simulate_day(&mut rng, 1.0);
/// assert_eq!(prices.len(), 24);
/// assert!(prices.iter().all(|&p| p > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct BidStackModel {
    /// Bid-stack intercept `a` (log-$/MWh at balanced load).
    intercept: f64,
    /// Bid-stack slope `b` (log-$/MWh per normalized MW of imbalance).
    slope: f64,
    load_process: OrnsteinUhlenbeck,
    supply_process: OrnsteinUhlenbeck,
    load: f64,
    supply: f64,
    /// Diurnal load target: mean + swing·cos(2π(h − peak)/24).
    load_mean: f64,
    load_swing: f64,
    load_peak_hour: f64,
    supply_mean: f64,
}

impl BidStackModel {
    /// Creates a model; see field docs for parameter meanings. Load/supply
    /// are expressed in normalized units (1.0 ≈ regional average).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        intercept: f64,
        slope: f64,
        load_process: OrnsteinUhlenbeck,
        supply_process: OrnsteinUhlenbeck,
        load_mean: f64,
        load_swing: f64,
        load_peak_hour: f64,
        supply_mean: f64,
    ) -> Self {
        BidStackModel {
            intercept,
            slope,
            load_process,
            supply_process,
            load: load_mean,
            supply: supply_mean,
            load_mean,
            load_swing,
            load_peak_hour,
            supply_mean,
        }
    }

    /// A parameterization producing prices in the 20–90 $/MWh band of the
    /// paper's Fig. 2, with region-dependent volatility (region 2 ≈
    /// Wisconsin is the spikiest).
    pub fn paper_like(region: usize) -> Self {
        let (vol_l, vol_s, swing) = match region {
            0 => (0.06, 0.04, 0.35), // Michigan: pronounced diurnal ramp
            1 => (0.04, 0.03, 0.18), // Minnesota: flat
            _ => (0.14, 0.10, 0.25), // Wisconsin: volatile
        };
        BidStackModel::new(
            3.6, // e^3.6 ≈ 36.6 $/MWh at balance
            2.2,
            OrnsteinUhlenbeck::new(0.8, vol_l).expect("valid parameters"),
            OrnsteinUhlenbeck::new(0.5, vol_s).expect("valid parameters"),
            1.0,
            swing,
            15.0,
            1.0,
        )
    }

    /// Current market-clearing price given an *extra* demand (normalized
    /// units) injected by the data centers — this is the coupling that
    /// creates the paper's demand↔price "vicious cycle".
    pub fn price_with_extra_demand(&self, extra_demand: f64) -> f64 {
        (self.intercept + self.slope * (self.load + extra_demand - self.supply)).exp()
    }

    /// Current price with no external demand injection.
    pub fn price(&self) -> f64 {
        self.price_with_extra_demand(0.0)
    }

    /// Advances the hidden load/supply state by `dt` hours at hour-of-day
    /// `hour` and returns the new price.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, hour: f64, dt: f64) -> f64 {
        let phase = (hour - self.load_peak_hour) * std::f64::consts::TAU / 24.0;
        let load_target = self.load_mean + self.load_swing * phase.cos();
        self.load = self.load_process.step(rng, self.load, load_target, dt);
        self.supply = self
            .supply_process
            .step(rng, self.supply, self.supply_mean, dt);
        self.price()
    }

    /// Simulates a full day, returning one price per `dt`-hour interval
    /// over 24 hours.
    pub fn simulate_day<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) -> Vec<f64> {
        let steps = (24.0 / dt).round() as usize;
        (0..steps)
            .map(|k| self.step(rng, k as f64 * dt, dt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ou_constructor_validates() {
        assert!(OrnsteinUhlenbeck::new(0.0, 1.0).is_none());
        assert!(OrnsteinUhlenbeck::new(-1.0, 1.0).is_none());
        assert!(OrnsteinUhlenbeck::new(1.0, -0.1).is_none());
        assert!(OrnsteinUhlenbeck::new(1.0, 0.0).is_some());
    }

    #[test]
    fn noiseless_ou_decays_to_target() {
        let ou = OrnsteinUhlenbeck::new(2.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut x = 10.0;
        for _ in 0..50 {
            x = ou.step(&mut rng, x, 1.0, 0.5);
        }
        assert!((x - 1.0).abs() < 1e-9, "x = {x}");
    }

    #[test]
    fn ou_stationary_spread_matches_theory() {
        // Var_stationary = σ²/(2κ).
        let ou = OrnsteinUhlenbeck::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = 0.0;
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            x = ou.step(&mut rng, x, 0.0, 0.25);
            samples.push(x);
        }
        let var = samples.iter().map(|v| v * v).sum::<f64>() / samples.len() as f64;
        let theory = 0.25 / 2.0;
        assert!((var - theory).abs() < 0.02, "var {var} vs {theory}");
    }

    #[test]
    fn prices_are_positive_and_in_realistic_band() {
        for region in 0..3 {
            let mut m = BidStackModel::paper_like(region);
            let mut rng = StdRng::seed_from_u64(region as u64);
            let prices = m.simulate_day(&mut rng, 1.0);
            assert!(prices.iter().all(|&p| p > 0.0));
            let mean = prices.iter().sum::<f64>() / prices.len() as f64;
            assert!(mean > 15.0 && mean < 120.0, "region {region} mean {mean}");
        }
    }

    #[test]
    fn extra_demand_raises_price() {
        let m = BidStackModel::paper_like(0);
        assert!(m.price_with_extra_demand(0.2) > m.price());
        assert!(m.price_with_extra_demand(-0.2) < m.price());
    }

    #[test]
    fn wisconsin_parameterization_is_most_volatile() {
        let vol = |region: usize| {
            let mut m = BidStackModel::paper_like(region);
            let mut rng = StdRng::seed_from_u64(77);
            let p = m.simulate_day(&mut rng, 0.25);
            let mean = p.iter().sum::<f64>() / p.len() as f64;
            (p.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / p.len() as f64).sqrt()
        };
        assert!(vol(2) > vol(1), "wi {} mn {}", vol(2), vol(1));
    }

    #[test]
    fn diurnal_drift_peaks_in_afternoon() {
        let mut m = BidStackModel::paper_like(0);
        let mut rng = StdRng::seed_from_u64(9);
        // Average many noiseless-ish days by heavy time-averaging.
        let mut afternoon = 0.0;
        let mut night = 0.0;
        for _ in 0..50 {
            let day = m.simulate_day(&mut rng, 1.0);
            afternoon += day[14] + day[15] + day[16];
            night += day[2] + day[3] + day[4];
        }
        assert!(afternoon > night, "afternoon {afternoon} vs night {night}");
    }
}
