//! Multi-region electricity market substrate for the `idc-mpc` workspace.
//!
//! The ICDCS 2012 paper prices IDC energy with Locational Marginal Pricing
//! (LMP) in deregulated North-American markets (paper Sec. III-C):
//! real-time prices vary by *region*, *hour of day* and *load*. This crate
//! provides:
//!
//! * [`region::Region`] — named market regions,
//! * [`trace::PriceTrace`] — hourly real-time price traces, including the
//!   pinned [`trace::miso_oct3_2011`] traces for Michigan / Minnesota /
//!   Wisconsin whose hour-6 and hour-7 values equal the paper's Table III
//!   exactly (the rest of the day is synthesized to match Fig. 2's shape —
//!   the real MISO archive is not available offline),
//! * [`stochastic::BidStackModel`] — the bottom-up bid-based stochastic
//!   price model the paper cites (Skantze et al. \[17\].): an exponential bid
//!   stack driven by mean-reverting load/supply processes,
//! * [`rtp`] — the [`rtp::PricingModel`] abstraction `Pr = f(region, time,
//!   load)` (paper eq. 9), including demand-responsive pricing used for the
//!   "vicious cycle" experiments of the introduction,
//! * [`tariff`] — power budgets and peak-demand penalties (the constraint
//!   that motivates peak shaving),
//! * [`contract`] — take-or-pay forward contracts that monetize demand
//!   predictability (the introduction's hedging/rebate argument),
//! * [`renewable`] — per-region renewable generation profiles for the
//!   green-energy extension (related work \[6\]).
//!
//! # Example
//!
//! ```
//! use idc_market::trace::miso_oct3_2011;
//!
//! let traces = miso_oct3_2011();
//! // Table III, 6H row.
//! assert_eq!(traces[0].price_at_hour(6.0), 43.26); // Michigan
//! assert_eq!(traces[1].price_at_hour(6.0), 30.26); // Minnesota
//! assert_eq!(traces[2].price_at_hour(6.0), 19.06); // Wisconsin
//! ```

#![warn(missing_docs)]

pub mod contract;
pub mod fault;
pub mod region;
pub mod renewable;
pub mod rtp;
pub mod stochastic;
pub mod tariff;
pub mod trace;
