//! Deterministic price-feed fault injection for verification runs.
//!
//! Real-time price feeds are the least reliable input of the control loop:
//! LMP publications arrive late, are revised, or drop out entirely, and
//! price-driven load control is known to misbehave exactly there (Pan et
//! al., "When Market Prices Drive the Load"). [`FaultyTracePricing`] wraps
//! a [`TracePricing`] source with a *deterministic* fault schedule so the
//! testkit can replay degraded-feed scenarios bit-for-bit from a seed:
//!
//! * [`PriceFault::Spike`] — the published price is multiplied by a factor
//!   inside a time window (a scarcity event or a bad tick),
//! * [`PriceFault::Dropout`] — the feed goes silent inside a window and
//!   consumers see the **last value published before the window started**
//!   (hold-last-value semantics, the standard stale-feed failure mode).

use crate::rtp::{PricingModel, TracePricing};

/// One deterministic perturbation of a regional price feed.
///
/// Windows are expressed in hours of day and do not wrap midnight:
/// a fault is active for `hour ∈ [start_hour, start_hour + duration_hours)`
/// after reducing `hour` modulo 24.
#[derive(Debug, Clone, PartialEq)]
pub enum PriceFault {
    /// The published price for `region` is multiplied by `factor` while
    /// the window is active.
    Spike {
        /// Region whose feed spikes.
        region: usize,
        /// Window start (hour of day, `[0, 24)`).
        start_hour: f64,
        /// Window length in hours.
        duration_hours: f64,
        /// Multiplicative factor applied to the published price.
        factor: f64,
    },
    /// The feed for `region` goes silent while the window is active;
    /// consumers keep seeing the value published at `start_hour`.
    Dropout {
        /// Region whose feed drops out.
        region: usize,
        /// Window start (hour of day, `[0, 24)`).
        start_hour: f64,
        /// Window length in hours.
        duration_hours: f64,
    },
}

impl PriceFault {
    /// A [`PriceFault::Spike`] on `region`'s feed over
    /// `[start_hour, start_hour + duration_hours)`.
    pub fn spike(region: usize, start_hour: f64, duration_hours: f64, factor: f64) -> Self {
        PriceFault::Spike {
            region,
            start_hour,
            duration_hours,
            factor,
        }
    }

    /// A [`PriceFault::Dropout`] on `region`'s feed over
    /// `[start_hour, start_hour + duration_hours)`.
    pub fn dropout(region: usize, start_hour: f64, duration_hours: f64) -> Self {
        PriceFault::Dropout {
            region,
            start_hour,
            duration_hours,
        }
    }

    /// The region this fault perturbs.
    pub fn region(&self) -> usize {
        match *self {
            PriceFault::Spike { region, .. } | PriceFault::Dropout { region, .. } => region,
        }
    }

    fn window(&self) -> (f64, f64) {
        match *self {
            PriceFault::Spike {
                start_hour,
                duration_hours,
                ..
            }
            | PriceFault::Dropout {
                start_hour,
                duration_hours,
                ..
            } => (start_hour, duration_hours),
        }
    }

    /// Whether the fault is active at `hour` (reduced modulo 24).
    pub fn active_at(&self, hour: f64) -> bool {
        let h = hour.rem_euclid(24.0);
        let (start, duration) = self.window();
        h >= start && h < start + duration
    }
}

/// Demand-independent trace pricing with a deterministic fault schedule
/// applied on top.
///
/// Dropouts are applied first (they pick *which* published value the
/// consumer sees), then spikes multiply whatever value survives — a spike
/// during a dropout therefore scales the held value, matching a bad tick
/// injected downstream of a stale cache.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyTracePricing {
    base: TracePricing,
    faults: Vec<PriceFault>,
}

impl FaultyTracePricing {
    /// Wraps `base` with `faults`. Returns `None` if any fault names a
    /// region the base model does not price, has a non-positive or
    /// non-finite window, or (for spikes) a negative or non-finite factor.
    pub fn new(base: TracePricing, faults: Vec<PriceFault>) -> Option<Self> {
        for fault in &faults {
            if fault.region() >= base.num_regions() {
                return None;
            }
            let (start, duration) = fault.window();
            if !start.is_finite() || !(0.0..24.0).contains(&start) {
                return None;
            }
            if !duration.is_finite() || duration <= 0.0 {
                return None;
            }
            if let PriceFault::Spike { factor, .. } = fault {
                if !factor.is_finite() || *factor < 0.0 {
                    return None;
                }
            }
        }
        Some(FaultyTracePricing { base, faults })
    }

    /// The unperturbed trace source.
    pub fn base(&self) -> &TracePricing {
        &self.base
    }

    /// The fault schedule.
    pub fn faults(&self) -> &[PriceFault] {
        &self.faults
    }
}

impl PricingModel for FaultyTracePricing {
    fn price(&self, region: usize, hour: f64, own_load_mw: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        // Hold-last-value: an active dropout redirects the lookup to the
        // instant the feed died.
        let mut effective_hour = h;
        for fault in &self.faults {
            if let PriceFault::Dropout {
                region: r,
                start_hour,
                ..
            } = fault
            {
                if *r == region && fault.active_at(h) {
                    effective_hour = *start_hour;
                }
            }
        }
        let mut price = self.base.price(region, effective_hour, own_load_mw);
        for fault in &self.faults {
            if let PriceFault::Spike {
                region: r, factor, ..
            } = fault
            {
                if *r == region && fault.active_at(h) {
                    price *= factor;
                }
            }
        }
        price
    }

    fn num_regions(&self) -> usize {
        self.base.num_regions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::miso_oct3_2011;

    fn base() -> TracePricing {
        TracePricing::new(miso_oct3_2011())
    }

    #[test]
    fn spike_multiplies_inside_window_only() {
        let faulty = FaultyTracePricing::new(
            base(),
            vec![PriceFault::Spike {
                region: 0,
                start_hour: 6.0,
                duration_hours: 1.0,
                factor: 3.0,
            }],
        )
        .unwrap();
        assert_eq!(faulty.price(0, 6.5, 0.0), 3.0 * base().price(0, 6.5, 0.0));
        // Outside the window and in other regions: untouched.
        assert_eq!(faulty.price(0, 7.0, 0.0), base().price(0, 7.0, 0.0));
        assert_eq!(faulty.price(1, 6.5, 0.0), base().price(1, 6.5, 0.0));
    }

    #[test]
    fn dropout_holds_the_value_at_window_start() {
        let faulty = FaultyTracePricing::new(
            base(),
            vec![PriceFault::Dropout {
                region: 2,
                start_hour: 6.0,
                duration_hours: 2.0,
            }],
        )
        .unwrap();
        let held = base().price(2, 6.0, 0.0);
        assert_eq!(faulty.price(2, 6.5, 0.0), held);
        assert_eq!(faulty.price(2, 7.9, 0.0), held);
        // Feed recovers at window end.
        assert_eq!(faulty.price(2, 8.0, 0.0), base().price(2, 8.0, 0.0));
    }

    #[test]
    fn spike_during_dropout_scales_the_held_value() {
        let faulty = FaultyTracePricing::new(
            base(),
            vec![
                PriceFault::Dropout {
                    region: 1,
                    start_hour: 6.0,
                    duration_hours: 2.0,
                },
                PriceFault::Spike {
                    region: 1,
                    start_hour: 7.0,
                    duration_hours: 1.0,
                    factor: 2.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(faulty.price(1, 7.5, 0.0), 2.0 * base().price(1, 6.0, 0.0));
    }

    #[test]
    fn constructor_validates_schedule() {
        assert!(FaultyTracePricing::new(
            base(),
            vec![PriceFault::Dropout {
                region: 3,
                start_hour: 6.0,
                duration_hours: 1.0
            }]
        )
        .is_none());
        assert!(FaultyTracePricing::new(
            base(),
            vec![PriceFault::Dropout {
                region: 0,
                start_hour: 6.0,
                duration_hours: 0.0
            }]
        )
        .is_none());
        assert!(FaultyTracePricing::new(
            base(),
            vec![PriceFault::Spike {
                region: 0,
                start_hour: 6.0,
                duration_hours: 1.0,
                factor: -1.0
            }]
        )
        .is_none());
        assert!(FaultyTracePricing::new(
            base(),
            vec![PriceFault::Spike {
                region: 0,
                start_hour: 25.0,
                duration_hours: 1.0,
                factor: 2.0
            }]
        )
        .is_none());
    }

    #[test]
    fn faultless_wrapper_matches_base_everywhere() {
        let faulty = FaultyTracePricing::new(base(), vec![]).unwrap();
        for h in 0..48 {
            let hour = h as f64 * 0.5;
            for r in 0..3 {
                assert_eq!(faulty.price(r, hour, 1.0), base().price(r, hour, 1.0));
            }
        }
    }
}
