//! The workload allocation matrix `λij` (paper Sec. III-A).
//!
//! `λij` is the share of portal `i`'s workload forwarded to IDC `j`. The
//! controller's input vector `U = [λij]` flattens this matrix **IDC-major**
//! (block `j` holds `λ_{1j} … λ_{Cj}`), matching the structure of the
//! paper's `B`, `H` and `Ψ` matrices (eq. 19, 27, 32).

use serde::{Deserialize, Serialize};

/// A `C × N` workload allocation (portals × IDCs), stored portal-major
/// internally and exported IDC-major as the control vector.
///
/// # Example
///
/// ```
/// use idc_datacenter::allocation::Allocation;
///
/// let mut a = Allocation::zeros(2, 3);
/// a.set(0, 1, 100.0);
/// a.set(1, 1, 50.0);
/// assert_eq!(a.idc_total(1), 150.0);
/// assert_eq!(a.portal_total(0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    portals: usize,
    idcs: usize,
    /// Row-major `portals × idcs`.
    shares: Vec<f64>,
}

impl Allocation {
    /// Creates an all-zero allocation for `portals × idcs`.
    pub fn zeros(portals: usize, idcs: usize) -> Self {
        Allocation {
            portals,
            idcs,
            shares: vec![0.0; portals * idcs],
        }
    }

    /// Builds an allocation from an IDC-major control vector
    /// `[λ_11…λ_C1, λ_12…λ_C2, …]` (the paper's `U`).
    ///
    /// Returns `None` if `u.len() != portals * idcs`.
    pub fn from_control_vector(portals: usize, idcs: usize, u: &[f64]) -> Option<Self> {
        if u.len() != portals * idcs {
            return None;
        }
        let mut a = Allocation::zeros(portals, idcs);
        for j in 0..idcs {
            for i in 0..portals {
                a.set(i, j, u[j * portals + i]);
            }
        }
        Some(a)
    }

    /// Number of portals `C`.
    pub fn portals(&self) -> usize {
        self.portals
    }

    /// Number of IDCs `N`.
    pub fn idcs(&self) -> usize {
        self.idcs
    }

    /// Share `λij`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, portal: usize, idc: usize) -> f64 {
        assert!(
            portal < self.portals && idc < self.idcs,
            "index out of range"
        );
        self.shares[portal * self.idcs + idc]
    }

    /// Sets share `λij`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, portal: usize, idc: usize, value: f64) {
        assert!(
            portal < self.portals && idc < self.idcs,
            "index out of range"
        );
        self.shares[portal * self.idcs + idc] = value;
    }

    /// Total workload received by IDC `j` (paper eq. 4): `λj = Σᵢ λij`.
    pub fn idc_total(&self, idc: usize) -> f64 {
        (0..self.portals).map(|i| self.get(i, idc)).sum()
    }

    /// All IDC totals `[λ1, …, λN]`.
    pub fn idc_totals(&self) -> Vec<f64> {
        (0..self.idcs).map(|j| self.idc_total(j)).collect()
    }

    /// Total workload portal `i` has distributed: `Σⱼ λij`.
    pub fn portal_total(&self, portal: usize) -> f64 {
        (0..self.idcs).map(|j| self.get(portal, j)).sum()
    }

    /// Exports the IDC-major control vector `U` (paper eq. 19 ordering).
    pub fn to_control_vector(&self) -> Vec<f64> {
        let mut u = Vec::with_capacity(self.portals * self.idcs);
        for j in 0..self.idcs {
            for i in 0..self.portals {
                u.push(self.get(i, j));
            }
        }
        u
    }

    /// `true` when every share is non-negative (paper eq. 3).
    pub fn is_nonnegative(&self, tol: f64) -> bool {
        self.shares.iter().all(|&s| s >= -tol)
    }

    /// `true` when each portal's shares sum to its offered workload within
    /// `tol` (paper eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `offered.len() != self.portals()`.
    pub fn conserves_workload(&self, offered: &[f64], tol: f64) -> bool {
        assert_eq!(offered.len(), self.portals, "one workload per portal");
        offered
            .iter()
            .enumerate()
            .all(|(i, &li)| (self.portal_total(i) - li).abs() <= tol * li.max(1.0))
    }

    /// Splits each portal's workload across IDCs proportionally to the
    /// given weights (e.g. IDC capacities). Weights must be non-negative
    /// with a positive sum.
    ///
    /// Returns `None` on invalid weights or mismatched lengths.
    pub fn proportional(offered: &[f64], weights: &[f64]) -> Option<Self> {
        if weights.is_empty() || weights.iter().any(|&w| !(w >= 0.0)) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut a = Allocation::zeros(offered.len(), weights.len());
        for (i, &li) in offered.iter().enumerate() {
            for (j, &w) in weights.iter().enumerate() {
                a.set(i, j, li * w / total);
            }
        }
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_hand_computation() {
        let mut a = Allocation::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 3.0);
        a.set(1, 1, 4.0);
        assert_eq!(a.idc_total(0), 4.0);
        assert_eq!(a.idc_total(1), 6.0);
        assert_eq!(a.idc_totals(), vec![4.0, 6.0]);
        assert_eq!(a.portal_total(0), 3.0);
        assert_eq!(a.portal_total(1), 7.0);
    }

    #[test]
    fn control_vector_roundtrip_is_idc_major() {
        let mut a = Allocation::zeros(2, 3);
        for i in 0..2 {
            for j in 0..3 {
                a.set(i, j, (10 * i + j) as f64);
            }
        }
        let u = a.to_control_vector();
        // Block j=0 first: λ00, λ10; then j=1: λ01, λ11; …
        assert_eq!(u, vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        let back = Allocation::from_control_vector(2, 3, &u).unwrap();
        assert_eq!(back, a);
        assert!(Allocation::from_control_vector(2, 3, &[1.0]).is_none());
    }

    #[test]
    fn invariant_checks() {
        let a = Allocation::proportional(&[10.0, 20.0], &[1.0, 1.0]).unwrap();
        assert!(a.is_nonnegative(0.0));
        assert!(a.conserves_workload(&[10.0, 20.0], 1e-12));
        assert!(!a.conserves_workload(&[10.0, 21.0], 1e-12));
        let mut b = a.clone();
        b.set(0, 0, -1.0);
        assert!(!b.is_nonnegative(1e-9));
        assert!(b.is_nonnegative(2.0)); // generous tolerance passes
    }

    #[test]
    fn proportional_respects_weights() {
        let a = Allocation::proportional(&[90.0], &[1.0, 2.0]).unwrap();
        assert_eq!(a.get(0, 0), 30.0);
        assert_eq!(a.get(0, 1), 60.0);
    }

    #[test]
    fn proportional_validates_weights() {
        assert!(Allocation::proportional(&[1.0], &[]).is_none());
        assert!(Allocation::proportional(&[1.0], &[-1.0, 2.0]).is_none());
        assert!(Allocation::proportional(&[1.0], &[0.0, 0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn get_panics_out_of_range() {
        Allocation::zeros(1, 1).get(1, 0);
    }
}
