//! The full portals + IDCs system of paper Fig. 1.

use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;
use crate::idc::{paper_idcs, IdcConfig};
use crate::portal::{paper_portals, FrontEndPortal};
use crate::sleep;

/// A distributed IDC fleet: `C` front-end portals feeding `N` IDCs.
///
/// # Example
///
/// ```
/// use idc_datacenter::fleet::IdcFleet;
///
/// let fleet = IdcFleet::paper_fleet();
/// assert_eq!(fleet.num_portals(), 5);
/// assert_eq!(fleet.num_idcs(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdcFleet {
    portals: Vec<FrontEndPortal>,
    idcs: Vec<IdcConfig>,
}

impl IdcFleet {
    /// Creates a fleet. Returns `None` when either list is empty.
    pub fn new(portals: Vec<FrontEndPortal>, idcs: Vec<IdcConfig>) -> Option<Self> {
        if portals.is_empty() || idcs.is_empty() {
            return None;
        }
        Some(IdcFleet { portals, idcs })
    }

    /// The paper's evaluation system (Tables I and II): five portals,
    /// three IDCs in Michigan / Minnesota / Wisconsin.
    pub fn paper_fleet() -> Self {
        IdcFleet {
            portals: paper_portals(),
            idcs: paper_idcs(),
        }
    }

    /// Number of front-end portals `C`.
    pub fn num_portals(&self) -> usize {
        self.portals.len()
    }

    /// Number of IDCs `N`.
    pub fn num_idcs(&self) -> usize {
        self.idcs.len()
    }

    /// Borrow of the portals.
    pub fn portals(&self) -> &[FrontEndPortal] {
        &self.portals
    }

    /// Mutable borrow of the portals (to advance workload traces).
    pub fn portals_mut(&mut self) -> &mut [FrontEndPortal] {
        &mut self.portals
    }

    /// Borrow of the IDCs.
    pub fn idcs(&self) -> &[IdcConfig] {
        &self.idcs
    }

    /// Offered workload vector `[L1, …, LC]`.
    pub fn offered_workloads(&self) -> Vec<f64> {
        self.portals.iter().map(|p| p.offered_workload()).collect()
    }

    /// Total offered workload `Σᵢ Lᵢ`.
    pub fn total_offered_workload(&self) -> f64 {
        self.portals.iter().map(|p| p.offered_workload()).sum()
    }

    /// Total workload capacity with every server ON, `Σⱼ λ̄ⱼ`.
    pub fn total_capacity(&self) -> f64 {
        self.idcs.iter().map(|i| i.max_workload()).sum()
    }

    /// The sleep (ON/OFF) controllability condition of Sec. IV-B.
    pub fn is_sleep_controllable(&self) -> bool {
        sleep::is_sleep_controllable(&self.idcs, self.total_offered_workload())
    }

    /// Total fleet power in MW for the given server counts and allocation.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree with the fleet.
    pub fn total_power_mw(&self, servers_on: &[u64], allocation: &Allocation) -> f64 {
        self.per_idc_power_mw(servers_on, allocation).iter().sum()
    }

    /// Per-IDC power in MW for the given server counts and allocation.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree with the fleet.
    pub fn per_idc_power_mw(&self, servers_on: &[u64], allocation: &Allocation) -> Vec<f64> {
        assert_eq!(servers_on.len(), self.num_idcs(), "one count per IDC");
        assert_eq!(
            allocation.idcs(),
            self.num_idcs(),
            "allocation IDC mismatch"
        );
        assert_eq!(
            allocation.portals(),
            self.num_portals(),
            "allocation portal mismatch"
        );
        self.idcs
            .iter()
            .enumerate()
            .map(|(j, idc)| idc.power_mw(servers_on[j], allocation.idc_total(j)))
            .collect()
    }

    /// A feasible "spread" allocation: each portal's workload split across
    /// IDCs proportionally to their maximum capacity. Useful as a warm
    /// start.
    pub fn proportional_allocation(&self) -> Allocation {
        let weights: Vec<f64> = self.idcs.iter().map(|i| i.max_workload()).collect();
        Allocation::proportional(&self.offered_workloads(), &weights)
            .expect("fleet capacities are positive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(IdcFleet::new(vec![], paper_idcs()).is_none());
        assert!(IdcFleet::new(paper_portals(), vec![]).is_none());
        assert!(IdcFleet::new(paper_portals(), paper_idcs()).is_some());
    }

    #[test]
    fn paper_fleet_dimensions_and_capacity() {
        let f = IdcFleet::paper_fleet();
        assert_eq!(f.num_portals(), 5);
        assert_eq!(f.num_idcs(), 3);
        assert_eq!(f.total_offered_workload(), 100_000.0);
        // Σ (Mµ − 1/D): 59 000 + 49 000 + 34 000.
        let expected = 59_000.0 + 49_000.0 + 34_000.0;
        assert!((f.total_capacity() - expected).abs() < 1e-9);
        assert!(f.is_sleep_controllable());
    }

    #[test]
    fn power_accounting_sums_per_idc_values() {
        let f = IdcFleet::paper_fleet();
        // Fully-loaded paper snapshot: 7 500 / 40 000 / 20 000 servers ON.
        let servers = [7_500u64, 40_000, 20_000];
        let mut alloc = Allocation::zeros(5, 3);
        // One portal per IDC is enough for the power model.
        alloc.set(0, 0, 15_000.0);
        alloc.set(1, 1, 50_000.0);
        alloc.set(2, 2, 35_000.0);
        let per = f.per_idc_power_mw(&servers, &alloc);
        assert!((per[0] - 2.1375).abs() < 1e-9);
        assert!((per[1] - 11.4).abs() < 1e-9);
        assert!((per[2] - 5.7).abs() < 1e-9);
        assert!((f.total_power_mw(&servers, &alloc) - 19.2375).abs() < 1e-9);
    }

    #[test]
    fn proportional_allocation_is_feasible() {
        let f = IdcFleet::paper_fleet();
        let a = f.proportional_allocation();
        assert!(a.is_nonnegative(0.0));
        assert!(a.conserves_workload(&f.offered_workloads(), 1e-9));
        // No IDC over its max capacity (weights are the capacities and the
        // fleet is controllable, so proportional shares fit).
        for (j, idc) in f.idcs().iter().enumerate() {
            assert!(a.idc_total(j) <= idc.max_workload() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "one count per IDC")]
    fn power_accounting_validates_lengths() {
        let f = IdcFleet::paper_fleet();
        let alloc = Allocation::zeros(5, 3);
        f.per_idc_power_mw(&[1, 2], &alloc);
    }
}
