//! The slow-loop server sleep (ON/OFF) controller (paper Sec. IV-B).
//!
//! The paper's two-time-scale architecture adjusts the number of powered
//! servers `mj` on a slower cadence than the workload split, using eq. 35:
//!
//! ```text
//! mj = ⌈ λj/µj + 1/(µj·Dj) ⌉
//! ```
//!
//! To smooth power demand (Fig. 5), the dynamic controller additionally
//! limits how many servers may be switched per decision — this *ramp
//! limit* is what turns the paper's "turns ON or OFF servers gradually"
//! into an explicit mechanism.

use serde::{Deserialize, Serialize};

use crate::idc::IdcConfig;

/// Decides per-IDC server counts from allocated workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepController {
    /// Maximum number of servers that may be switched (ON or OFF) per
    /// decision, per IDC. `None` = unlimited (the raw eq. 35 policy used by
    /// the baseline).
    ramp_limit: Option<u64>,
}

impl SleepController {
    /// The paper's raw eq. 35 policy: jump straight to the required count.
    pub fn unconstrained() -> Self {
        SleepController { ramp_limit: None }
    }

    /// A ramp-limited policy switching at most `limit` servers per
    /// decision (`limit ≥ 1`). Returns `None` for `limit == 0`.
    pub fn with_ramp_limit(limit: u64) -> Option<Self> {
        (limit > 0).then_some(SleepController {
            ramp_limit: Some(limit),
        })
    }

    /// The configured ramp limit, if any.
    pub fn ramp_limit(&self) -> Option<u64> {
        self.ramp_limit
    }

    /// Computes the next server count for one IDC given the current count
    /// and the workload `lambda` it must absorb.
    ///
    /// The target is eq. 35 clamped to `[0, Mj]`; with a ramp limit the
    /// result moves toward the target by at most the limit. Ramping *up*
    /// never stops short of what stability requires if the limit allows;
    /// when the target exceeds `Mj` the count saturates at `Mj`.
    pub fn next_servers(&self, idc: &IdcConfig, current: u64, lambda: f64) -> u64 {
        let target = match idc.required_servers(lambda.max(0.0)) {
            Some(m) => m,
            // Demand beyond installed capacity: all hands on deck.
            None => idc.total_servers(),
        };
        let current = current.min(idc.total_servers());
        match self.ramp_limit {
            None => target,
            Some(limit) => {
                if target > current {
                    (current + limit).min(target)
                } else {
                    current - limit.min(current - target)
                }
            }
        }
    }

    /// Vector form of [`Self::next_servers`].
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the number of IDCs.
    pub fn next_servers_all(
        &self,
        idcs: &[IdcConfig],
        current: &[u64],
        lambdas: &[f64],
    ) -> Vec<u64> {
        assert_eq!(current.len(), idcs.len(), "one current count per IDC");
        assert_eq!(lambdas.len(), idcs.len(), "one workload per IDC");
        idcs.iter()
            .zip(current)
            .zip(lambdas)
            .map(|((idc, &m), &l)| self.next_servers(idc, m, l))
            .collect()
    }
}

impl Default for SleepController {
    fn default() -> Self {
        SleepController::unconstrained()
    }
}

/// The sleep (ON/OFF) controllability condition of paper Sec. IV-B: the
/// fleet can absorb the offered workload within latency bounds iff
/// `Σᵢ Lᵢ ≤ Σⱼ λ̄ⱼ`.
pub fn is_sleep_controllable(idcs: &[IdcConfig], total_offered: f64) -> bool {
    total_offered <= idcs.iter().map(|i| i.max_workload()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idc::paper_idcs;

    #[test]
    fn unconstrained_jumps_to_eq_35_target() {
        let idc = &paper_idcs()[0]; // Michigan: µ=2, D=1ms
        let c = SleepController::unconstrained();
        // 15000/2 + 500 = 8000 regardless of the current count.
        assert_eq!(c.next_servers(idc, 100, 15_000.0), 8000);
        assert_eq!(c.next_servers(idc, 30_000, 15_000.0), 8000);
    }

    #[test]
    fn ramp_limit_moves_gradually() {
        let idc = &paper_idcs()[0];
        let c = SleepController::with_ramp_limit(1000).unwrap();
        assert_eq!(c.ramp_limit(), Some(1000));
        // Up: 5000 → 6000 (target 8000).
        assert_eq!(c.next_servers(idc, 5000, 15_000.0), 6000);
        // Down: 9500 → 8500 (target 8000).
        assert_eq!(c.next_servers(idc, 9500, 15_000.0), 8500);
        // Within one step of target: lands exactly.
        assert_eq!(c.next_servers(idc, 7500, 15_000.0), 8000);
        assert_eq!(c.next_servers(idc, 8400, 15_000.0), 8000);
    }

    #[test]
    fn saturates_at_installed_capacity() {
        let idc = &paper_idcs()[2]; // Wisconsin: M = 20 000
        let c = SleepController::unconstrained();
        // Demand beyond what all servers can serve → Mj.
        assert_eq!(c.next_servers(idc, 0, 1e9), 20_000);
        // Current count above Mj (bad input) is clamped.
        let r = SleepController::with_ramp_limit(10).unwrap();
        assert!(r.next_servers(idc, 90_000, 0.0) <= 20_000);
    }

    #[test]
    fn negative_workload_is_treated_as_zero() {
        let idc = &paper_idcs()[0];
        let c = SleepController::unconstrained();
        // Only the latency head-room remains: 1/(µD) = 500.
        assert_eq!(c.next_servers(idc, 1000, -50.0), 500);
    }

    #[test]
    fn ramp_limit_constructor_validates() {
        assert!(SleepController::with_ramp_limit(0).is_none());
        assert!(SleepController::with_ramp_limit(1).is_some());
        assert_eq!(SleepController::default(), SleepController::unconstrained());
    }

    #[test]
    fn controllability_condition_matches_paper_fleet() {
        let idcs = paper_idcs();
        // Σ λ̄ = (60000−1000) + (50000−800) + (35000−571.43) ≈ 142 628.
        assert!(is_sleep_controllable(&idcs, 100_000.0));
        assert!(is_sleep_controllable(&idcs, 142_000.0));
        assert!(!is_sleep_controllable(&idcs, 143_000.0));
    }

    #[test]
    fn vector_form_matches_scalar_form() {
        let idcs = paper_idcs();
        let c = SleepController::unconstrained();
        let all = c.next_servers_all(&idcs, &[0, 0, 0], &[15_000.0, 50_000.0, 10_000.0]);
        assert_eq!(all[0], c.next_servers(&idcs[0], 0, 15_000.0));
        assert_eq!(all[1], c.next_servers(&idcs[1], 0, 50_000.0));
        assert_eq!(all[2], c.next_servers(&idcs[2], 0, 10_000.0));
    }

    #[test]
    #[should_panic(expected = "one workload per IDC")]
    fn vector_form_validates_lengths() {
        let idcs = paper_idcs();
        SleepController::unconstrained().next_servers_all(&idcs, &[0, 0, 0], &[1.0]);
    }
}
