//! Per-server power models (paper Sec. III-B).
//!
//! The paper derives its linear power model in two steps:
//!
//! 1. a curve-fit against CPU utilization and frequency (Horvath & Skadron
//!    \[14\]): `P(f, U) = a₃·f·U + a₂·f + a₁·U + a₀` (eq. 5);
//! 2. substituting `U = λ/f` yields `P(λ) = b₁λ + b₀` with
//!    `b₀ = a₂f + a₀` and `b₁ = a₃ + a₁/f` (eq. 6).
//!
//! For the evaluation the paper only pins the endpoints — 150 W idle,
//! 285 W at peak speed \[19\] — so [`ServerSpec`] is calibrated from
//! (idle, peak, service-rate) triples.

use serde::{Deserialize, Serialize};

/// The four-parameter curve-fit power model `P(f, U)` of paper eq. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveFitModel {
    /// Coefficient of `f·U` (W per GHz per utilization unit).
    pub a3: f64,
    /// Coefficient of `f` (W per GHz).
    pub a2: f64,
    /// Coefficient of `U` (W per utilization unit).
    pub a1: f64,
    /// Constant term (W).
    pub a0: f64,
}

impl CurveFitModel {
    /// Power at frequency `f` and utilization `u ∈ [0, 1]` (paper eq. 5).
    pub fn power(&self, f: f64, u: f64) -> f64 {
        self.a3 * f * u + self.a2 * f + self.a1 * u + self.a0
    }

    /// Reduces to the linear-in-workload form at fixed frequency `f`
    /// (paper eq. 6): returns `(b1, b0)` such that `P(λ) = b1·λ + b0`,
    /// where λ is per-server workload and `U = λ/f`.
    pub fn at_frequency(&self, f: f64) -> (f64, f64) {
        (self.a3 + self.a1 / f, self.a2 * f + self.a0)
    }
}

/// A homogeneous server specification, calibrated by its idle power, peak
/// power and service rate (requests/s at peak processing speed).
///
/// # Example
///
/// ```
/// use idc_datacenter::server::ServerSpec;
///
/// // The paper's server: 150 W idle, 285 W at 2 req/s [19].
/// let s = ServerSpec::new(150.0, 285.0, 2.0).expect("valid spec");
/// assert_eq!(s.power_at(0.0), 150.0);
/// assert_eq!(s.power_at(2.0), 285.0);
/// assert_eq!(s.b1(), 67.5); // (285−150)/2 W per req/s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    idle_power_w: f64,
    peak_power_w: f64,
    service_rate: f64,
}

impl ServerSpec {
    /// Creates a spec. Returns `None` unless
    /// `0 ≤ idle ≤ peak` and `service_rate > 0` (all finite).
    pub fn new(idle_power_w: f64, peak_power_w: f64, service_rate: f64) -> Option<Self> {
        let finite =
            idle_power_w.is_finite() && peak_power_w.is_finite() && service_rate.is_finite();
        if !finite || idle_power_w < 0.0 || peak_power_w < idle_power_w || service_rate <= 0.0 {
            return None;
        }
        Some(ServerSpec {
            idle_power_w,
            peak_power_w,
            service_rate,
        })
    }

    /// The paper's evaluation server: 150 W idle, 285 W peak \[19\], at the
    /// given per-location service rate (Table II).
    pub fn paper_server(service_rate: f64) -> Option<Self> {
        ServerSpec::new(150.0, 285.0, service_rate)
    }

    /// Idle power in W (`b₀`).
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// Power at peak processing speed in W.
    pub fn peak_power_w(&self) -> f64 {
        self.peak_power_w
    }

    /// Service rate µ in requests/s.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Marginal power `b₁` in W per (req/s): `(peak − idle)/µ`.
    pub fn b1(&self) -> f64 {
        (self.peak_power_w - self.idle_power_w) / self.service_rate
    }

    /// Constant power `b₀ = idle` in W (paper eq. 6).
    pub fn b0(&self) -> f64 {
        self.idle_power_w
    }

    /// Power in W when this server processes `lambda` req/s
    /// (`P(λ) = b₁λ + b₀`, clamped at peak — a server cannot exceed µ).
    pub fn power_at(&self, lambda: f64) -> f64 {
        let l = lambda.clamp(0.0, self.service_rate);
        self.b1() * l + self.b0()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates_inputs() {
        assert!(ServerSpec::new(-1.0, 285.0, 2.0).is_none());
        assert!(ServerSpec::new(300.0, 285.0, 2.0).is_none());
        assert!(ServerSpec::new(150.0, 285.0, 0.0).is_none());
        assert!(ServerSpec::new(150.0, f64::NAN, 2.0).is_none());
        assert!(ServerSpec::new(150.0, 285.0, 2.0).is_some());
    }

    #[test]
    fn paper_server_endpoints() {
        let s = ServerSpec::paper_server(1.25).unwrap();
        assert_eq!(s.idle_power_w(), 150.0);
        assert_eq!(s.peak_power_w(), 285.0);
        assert_eq!(s.service_rate(), 1.25);
        assert_eq!(s.b0(), 150.0);
        assert_eq!(s.b1(), 135.0 / 1.25);
    }

    #[test]
    fn power_is_linear_between_endpoints() {
        let s = ServerSpec::paper_server(2.0).unwrap();
        assert_eq!(s.power_at(1.0), 150.0 + 67.5);
        // Clamping below zero and above capacity.
        assert_eq!(s.power_at(-5.0), 150.0);
        assert_eq!(s.power_at(99.0), 285.0);
    }

    #[test]
    fn curve_fit_reduction_matches_eq_6() {
        let m = CurveFitModel {
            a3: 40.0,
            a2: 30.0,
            a1: 20.0,
            a0: 100.0,
        };
        let f = 2.5;
        let (b1, b0) = m.at_frequency(f);
        assert_eq!(b0, 30.0 * 2.5 + 100.0);
        assert_eq!(b1, 40.0 + 20.0 / 2.5);
        // Consistency: P(f, λ/f) == b1 λ + b0.
        for lambda in [0.0, 0.5, 1.0, 2.0] {
            let direct = m.power(f, lambda / f);
            assert!((direct - (b1 * lambda + b0)).abs() < 1e-12);
        }
    }

    #[test]
    fn curve_fit_power_increases_with_utilization() {
        let m = CurveFitModel {
            a3: 40.0,
            a2: 30.0,
            a1: 20.0,
            a0: 100.0,
        };
        assert!(m.power(2.0, 0.9) > m.power(2.0, 0.1));
    }
}
