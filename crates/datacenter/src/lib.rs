//! Internet data center substrate for the `idc-mpc` workspace.
//!
//! Implements the physical models of the ICDCS 2012 paper's Sec. III:
//!
//! * [`server`] — the per-server power model: the curve-fit
//!   `P(f, U) = a₃fU + a₂f + a₁U + a₀` of Horvath & Skadron \[14\]
//!   (paper eq. 5) and its linear-in-workload reduction `P(λ) = b₁λ + b₀`
//!   (paper eq. 6–7),
//! * [`queueing`] — M/M/n service latency, both the paper's busy-system
//!   approximation `D = 1/(mµ − λ)` (eq. 14) and exact Erlang-C,
//! * [`idc`] — an IDC: `Mj` homogeneous servers, `mj` of them ON, latency
//!   bound `Dj` (paper eq. 1, 15, 30, 35),
//! * [`portal`] — front-end Web portals offering workload `Li` (eq. 2),
//! * [`allocation`] — the workload split `λij` and its invariants
//!   (conservation, non-negativity, capacity),
//! * [`sleep`] — the slow-loop server sleep (ON/OFF) controller (eq. 35)
//!   and its controllability condition,
//! * [`fleet`] — the portals + IDCs system of Fig. 1 with validation,
//! * [`power`] — power-demand accounting: volatility (the paper's "rate of
//!   change in power demand") and daily peaks.
//!
//! # Example
//!
//! ```
//! use idc_datacenter::fleet::IdcFleet;
//!
//! let fleet = IdcFleet::paper_fleet();
//! // Table I: five portals totalling 100 000 req/s.
//! assert_eq!(fleet.total_offered_workload(), 100_000.0);
//! // The ON/OFF controllability condition of Sec. IV-B holds.
//! assert!(fleet.is_sleep_controllable());
//! ```

#![warn(missing_docs)]

pub mod allocation;
pub mod fleet;
pub mod idc;
pub mod portal;
pub mod power;
pub mod queueing;
pub mod server;
pub mod sleep;
