//! Power-demand accounting: volatility and peaks.
//!
//! The paper defines power-demand *volatility* as "the rate of change in
//! power demand" and the *power peak* as "the power demand at peak load
//! during a day" (Sec. I). These are the headline metrics of Figs. 4–7.

/// Summary statistics of one IDC's power-demand trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerStats {
    /// Mean power over the trajectory (MW).
    pub mean_mw: f64,
    /// Peak power (MW) — the paper's "power peak".
    pub peak_mw: f64,
    /// Mean absolute step-to-step change (MW per step) — the paper's
    /// demand volatility.
    pub mean_abs_step_mw: f64,
    /// Largest single step (MW) — the worst demand jump.
    pub max_abs_step_mw: f64,
    /// Energy consumed over the trajectory (MWh), given the step length.
    pub energy_mwh: f64,
}

/// Computes [`PowerStats`] for a power trajectory sampled every
/// `step_hours` hours.
///
/// Returns `None` for an empty trajectory or non-positive step.
pub fn power_stats(power_mw: &[f64], step_hours: f64) -> Option<PowerStats> {
    if power_mw.is_empty() || !(step_hours > 0.0) {
        return None;
    }
    let n = power_mw.len() as f64;
    let mean_mw = power_mw.iter().sum::<f64>() / n;
    let peak_mw = power_mw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let (mut total_step, mut max_step) = (0.0, 0.0f64);
    for w in power_mw.windows(2) {
        let d = (w[1] - w[0]).abs();
        total_step += d;
        max_step = max_step.max(d);
    }
    let steps = (power_mw.len() - 1).max(1) as f64;
    Some(PowerStats {
        mean_mw,
        peak_mw,
        mean_abs_step_mw: total_step / steps,
        max_abs_step_mw: max_step,
        energy_mwh: mean_mw * n * step_hours,
    })
}

/// Fraction of samples (0–1) strictly above `budget_mw`.
pub fn budget_violation_fraction(power_mw: &[f64], budget_mw: f64) -> f64 {
    if power_mw.is_empty() {
        return 0.0;
    }
    power_mw.iter().filter(|&&p| p > budget_mw).count() as f64 / power_mw.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_trajectory() {
        let s = power_stats(&[2.0, 2.0, 2.0], 0.5).unwrap();
        assert_eq!(s.mean_mw, 2.0);
        assert_eq!(s.peak_mw, 2.0);
        assert_eq!(s.mean_abs_step_mw, 0.0);
        assert_eq!(s.max_abs_step_mw, 0.0);
        assert_eq!(s.energy_mwh, 3.0);
    }

    #[test]
    fn stats_capture_jumps() {
        // The paper's Wisconsin optimal trajectory in miniature: a step.
        let s = power_stats(&[5.7, 5.7, 1.63, 1.63], 1.0).unwrap();
        assert!((s.peak_mw - 5.7).abs() < 1e-12);
        assert!((s.max_abs_step_mw - 4.07).abs() < 1e-9);
        assert!((s.mean_abs_step_mw - 4.07 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_has_zero_volatility() {
        let s = power_stats(&[3.0], 1.0).unwrap();
        assert_eq!(s.mean_abs_step_mw, 0.0);
        assert_eq!(s.peak_mw, 3.0);
    }

    #[test]
    fn invalid_inputs_return_none() {
        assert!(power_stats(&[], 1.0).is_none());
        assert!(power_stats(&[1.0], 0.0).is_none());
        assert!(power_stats(&[1.0], -1.0).is_none());
    }

    #[test]
    fn violation_fraction() {
        assert_eq!(budget_violation_fraction(&[1.0, 2.0, 3.0, 4.0], 2.5), 0.5);
        assert_eq!(budget_violation_fraction(&[1.0], 2.0), 0.0);
        assert_eq!(budget_violation_fraction(&[], 2.0), 0.0);
        // Boundary: exactly at budget is not a violation.
        assert_eq!(budget_violation_fraction(&[2.0], 2.0), 0.0);
    }
}
