//! A single Internet data center (paper Sec. III-A/B/E).

use serde::{Deserialize, Serialize};

use crate::queueing;
use crate::server::ServerSpec;

/// Classification of an operating point `(m, λ)` against the M/M/n latency
/// model — the one place the simulator, the invariant checkers and any
/// online monitor agree on what "meets the bound" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyStatus {
    /// Stable and the mean latency satisfies the bound (eq. 30 with
    /// tolerance).
    WithinBound,
    /// Stable (`λ < mµ`) but the mean latency exceeds the bound.
    BoundExceeded,
    /// Overloaded past M/M/n stability (`λ ≥ mµ` with `λ > 0`): the queue
    /// grows without bound and latency diverges.
    Unstable,
}

/// Static configuration of one IDC: `Mj` homogeneous servers of a given
/// [`ServerSpec`], subject to the latency bound `Dj`.
///
/// # Example
///
/// ```
/// use idc_datacenter::idc::IdcConfig;
/// use idc_datacenter::server::ServerSpec;
///
/// // The paper's Michigan IDC (Table II).
/// let idc = IdcConfig::new(
///     "Michigan",
///     30_000,
///     ServerSpec::paper_server(2.0).expect("valid"),
///     0.001,
/// ).expect("valid config");
/// assert_eq!(idc.max_workload(), 30_000.0 * 2.0 - 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdcConfig {
    name: String,
    total_servers: u64,
    server: ServerSpec,
    latency_bound: f64,
    /// Power usage effectiveness: facility power / IT power (≥ 1).
    #[serde(default = "default_pue")]
    pue: f64,
}

fn default_pue() -> f64 {
    1.0
}

impl IdcConfig {
    /// Creates an IDC configuration. Returns `None` when `total_servers ==
    /// 0` or `latency_bound ≤ 0` / non-finite.
    pub fn new(
        name: impl Into<String>,
        total_servers: u64,
        server: ServerSpec,
        latency_bound: f64,
    ) -> Option<Self> {
        if total_servers == 0 || !(latency_bound > 0.0) || !latency_bound.is_finite() {
            return None;
        }
        Some(IdcConfig {
            name: name.into(),
            total_servers,
            server,
            latency_bound,
            pue: 1.0,
        })
    }

    /// Sets the facility's power usage effectiveness (PUE ≥ 1): cooling,
    /// UPS and network overhead as a multiplier on server power. The paper
    /// models server power only (its footnote 1); PUE re-introduces the
    /// facility overhead for users who want total-facility accounting.
    ///
    /// Returns `None` for `pue < 1` or non-finite values.
    pub fn with_pue(mut self, pue: f64) -> Option<Self> {
        if !(pue >= 1.0) || !pue.is_finite() {
            return None;
        }
        self.pue = pue;
        Some(self)
    }

    /// The facility's power usage effectiveness (1.0 = servers only).
    pub fn pue(&self) -> f64 {
        self.pue
    }

    /// Display name (typically the region).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total installed servers `Mj`.
    pub fn total_servers(&self) -> u64 {
        self.total_servers
    }

    /// The homogeneous server specification.
    pub fn server(&self) -> &ServerSpec {
        &self.server
    }

    /// Per-server service rate `µj` (req/s).
    pub fn service_rate(&self) -> f64 {
        self.server.service_rate()
    }

    /// Latency bound `Dj` (seconds).
    pub fn latency_bound(&self) -> f64 {
        self.latency_bound
    }

    /// Workload capacity with `m` servers ON under the latency bound
    /// (paper eq. 30): `λ̄ = µ(m − 1/(µD)) = mµ − 1/D`, floored at 0.
    pub fn capacity_with(&self, servers_on: u64) -> f64 {
        (servers_on.min(self.total_servers) as f64 * self.service_rate() - 1.0 / self.latency_bound)
            .max(0.0)
    }

    /// Maximum admissible workload with every server ON (the `λ̄j` of the
    /// sleep controllability condition, Sec. IV-B).
    pub fn max_workload(&self) -> f64 {
        self.capacity_with(self.total_servers)
    }

    /// Servers required for workload `lambda` (paper eq. 35), clamped to
    /// `Mj`. Returns `None` when even all servers cannot satisfy the bound.
    pub fn required_servers(&self, lambda: f64) -> Option<u64> {
        let needed = queueing::servers_for_latency(lambda, self.service_rate(), self.latency_bound);
        (needed <= self.total_servers).then_some(needed)
    }

    /// Total power in W with `m` servers ON processing `lambda` req/s
    /// (paper eq. 7 scaled by the facility PUE): `P = PUE·(b₁λ + m·b₀)`.
    ///
    /// The workload is clamped into the physically processable range
    /// `[0, m·µ]`.
    pub fn power_w(&self, servers_on: u64, lambda: f64) -> f64 {
        let m = servers_on.min(self.total_servers) as f64;
        let l = lambda.clamp(0.0, m * self.service_rate());
        self.pue * (self.server.b1() * l + m * self.server.b0())
    }

    /// [`Self::power_w`] in megawatts.
    pub fn power_mw(&self, servers_on: u64, lambda: f64) -> f64 {
        self.power_w(servers_on, lambda) / 1e6
    }

    /// Average latency with `m` servers ON at workload `lambda` (paper
    /// eq. 14); infinite when overloaded.
    pub fn latency(&self, servers_on: u64, lambda: f64) -> f64 {
        queueing::busy_latency(
            servers_on.min(self.total_servers),
            self.service_rate(),
            lambda,
        )
    }

    /// `true` when (`m`, `λ`) meets the latency bound.
    ///
    /// Checked in workload space (eq. 30: `λ ≤ mµ − 1/D`) with a
    /// req/s-scale tolerance, so operating points the optimizer places
    /// exactly on the capacity face are accepted despite floating-point
    /// slack.
    pub fn meets_latency_bound(&self, servers_on: u64, lambda: f64) -> bool {
        lambda <= self.capacity_with(servers_on) + 1e-6 * lambda.abs().max(1.0)
    }

    /// Full classification of the operating point `(m, λ)`: within bound,
    /// bound exceeded, or past M/M/n stability. `status == WithinBound` is
    /// equivalent to [`Self::meets_latency_bound`] for stable points; zero
    /// workload is always within bound.
    pub fn latency_status(&self, servers_on: u64, lambda: f64) -> LatencyStatus {
        let m = servers_on.min(self.total_servers) as f64;
        if lambda < m * self.service_rate() {
            if self.meets_latency_bound(servers_on, lambda) {
                LatencyStatus::WithinBound
            } else {
                LatencyStatus::BoundExceeded
            }
        } else if lambda > 0.0 {
            LatencyStatus::Unstable
        } else {
            LatencyStatus::WithinBound
        }
    }
}

/// The paper's three IDCs (Table II): Michigan (30 000 × 2.0 req/s),
/// Minnesota (40 000 × 1.25 req/s), Wisconsin (20 000 × 1.75 req/s), all
/// with 150/285 W servers and a 1 ms latency bound.
pub fn paper_idcs() -> Vec<IdcConfig> {
    let mk = |name: &str, m: u64, mu: f64| {
        IdcConfig::new(
            name,
            m,
            ServerSpec::paper_server(mu).expect("paper spec is valid"),
            0.001,
        )
        .expect("paper config is valid")
    };
    vec![
        mk("Michigan", 30_000, 2.0),
        mk("Minnesota", 40_000, 1.25),
        mk("Wisconsin", 20_000, 1.75),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn michigan() -> IdcConfig {
        paper_idcs().remove(0)
    }

    #[test]
    fn constructor_validates() {
        let s = ServerSpec::paper_server(2.0).unwrap();
        assert!(IdcConfig::new("x", 0, s, 0.001).is_none());
        assert!(IdcConfig::new("x", 10, s, 0.0).is_none());
        assert!(IdcConfig::new("x", 10, s, f64::NAN).is_none());
        assert!(IdcConfig::new("x", 10, s, 0.001).is_some());
    }

    #[test]
    fn paper_fleet_matches_table_ii() {
        let idcs = paper_idcs();
        assert_eq!(idcs[0].total_servers(), 30_000);
        assert_eq!(idcs[1].total_servers(), 40_000);
        assert_eq!(idcs[2].total_servers(), 20_000);
        assert_eq!(idcs[0].service_rate(), 2.0);
        assert_eq!(idcs[1].service_rate(), 1.25);
        assert_eq!(idcs[2].service_rate(), 1.75);
        assert!(idcs.iter().all(|i| i.latency_bound() == 0.001));
    }

    #[test]
    fn capacity_follows_eq_30() {
        let idc = michigan();
        // mµ − 1/D
        assert_eq!(idc.capacity_with(10_000), 20_000.0 - 1000.0);
        // Clamped at Mj.
        assert_eq!(idc.capacity_with(99_999_999), 60_000.0 - 1000.0);
        // Small m floors at zero rather than going negative.
        assert_eq!(idc.capacity_with(100), 0.0);
    }

    #[test]
    fn required_servers_follows_eq_35() {
        let idc = michigan();
        // λ/µ + 1/(µD) = 15000/2 + 500 = 8000.
        assert_eq!(idc.required_servers(15_000.0), Some(8000));
        // Beyond installed capacity → None.
        assert_eq!(idc.required_servers(1e9), None);
        // The returned deployment meets the bound.
        let m = idc.required_servers(15_000.0).unwrap();
        assert!(idc.meets_latency_bound(m, 15_000.0));
        assert!(!idc.meets_latency_bound(m - 1, 15_000.0));
    }

    #[test]
    fn power_follows_eq_7() {
        let idc = michigan();
        // Full load: m servers at peak power.
        let m = 7_500u64;
        let full = m as f64 * 2.0;
        assert!((idc.power_mw(m, full) - 7_500.0 * 285.0 / 1e6).abs() < 1e-12);
        // Idle: m servers at idle power.
        assert!((idc.power_mw(m, 0.0) - 7_500.0 * 150.0 / 1e6).abs() < 1e-12);
        // The paper's Fig. 4 numbers: 7 500 / 40 000 / 20 000 fully loaded
        // servers draw 2.1375 / 11.4 / 5.7 MW.
        let idcs = paper_idcs();
        assert!((idcs[0].power_mw(7_500, 15_000.0) - 2.1375).abs() < 1e-9);
        assert!((idcs[1].power_mw(40_000, 50_000.0) - 11.4).abs() < 1e-9);
        assert!((idcs[2].power_mw(20_000, 35_000.0) - 5.7).abs() < 1e-9);
    }

    #[test]
    fn power_clamps_workload_to_processable_range() {
        let idc = michigan();
        assert_eq!(idc.power_w(100, 1e12), idc.power_w(100, 100.0 * 2.0));
        assert_eq!(idc.power_w(100, -5.0), idc.power_w(100, 0.0));
    }

    #[test]
    fn pue_scales_power_but_not_capacity() {
        let base = michigan();
        let cooled = michigan().with_pue(1.5).unwrap();
        assert_eq!(cooled.pue(), 1.5);
        assert_eq!(base.pue(), 1.0);
        assert!((cooled.power_w(100, 100.0) - 1.5 * base.power_w(100, 100.0)).abs() < 1e-9);
        // Queueing-side quantities are unaffected.
        assert_eq!(cooled.capacity_with(100), base.capacity_with(100));
        assert_eq!(
            cooled.required_servers(1_000.0),
            base.required_servers(1_000.0)
        );
    }

    #[test]
    fn pue_is_validated() {
        assert!(michigan().with_pue(0.9).is_none());
        assert!(michigan().with_pue(f64::NAN).is_none());
        assert!(michigan().with_pue(1.0).is_some());
    }

    #[test]
    fn latency_status_classifies_operating_points() {
        let idc = michigan();
        // Comfortable headroom.
        assert_eq!(
            idc.latency_status(10_000, 15_000.0),
            LatencyStatus::WithinBound
        );
        // Stable but past the bound: λ < mµ yet λ > mµ − 1/D.
        assert_eq!(
            idc.latency_status(10_000, 19_500.0),
            LatencyStatus::BoundExceeded
        );
        // Overloaded past stability.
        assert_eq!(idc.latency_status(10, 1e6), LatencyStatus::Unstable);
        // Zero workload is always fine, even with everything asleep.
        assert_eq!(idc.latency_status(0, 0.0), LatencyStatus::WithinBound);
        // Agreement with the boolean check on stable points.
        for &(m, lam) in &[(8_000u64, 15_000.0), (500, 900.0), (30_000, 59_000.0)] {
            assert_eq!(
                idc.latency_status(m, lam) == LatencyStatus::WithinBound,
                idc.meets_latency_bound(m, lam),
                "m={m} lam={lam}"
            );
        }
    }

    #[test]
    fn latency_accessor_matches_queueing() {
        let idc = michigan();
        assert_eq!(idc.latency(10_000, 19_000.0), 1.0 / 1000.0);
        assert_eq!(idc.latency(10, 1e6), f64::INFINITY);
    }
}
