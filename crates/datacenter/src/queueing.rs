//! M/M/n service-latency models (paper Sec. III-E).
//!
//! The paper uses the M/M/n queue and then assumes a busy system
//! (`P_Q = 1`), giving the average latency `Dᵃ = 1/(mµ − λ)` (eq. 14).
//! We provide both that approximation (used by the controller, exactly as
//! in the paper) and the exact Erlang-C formula (used in tests to check
//! that the approximation is conservative).

/// The paper's busy-system average latency `D = 1/(n·µ − λ)` (eq. 14).
///
/// Returns `f64::INFINITY` when the system is not stable (`n·µ ≤ λ`).
pub fn busy_latency(servers: u64, mu: f64, lambda: f64) -> f64 {
    let capacity = servers as f64 * mu;
    if capacity <= lambda {
        f64::INFINITY
    } else {
        1.0 / (capacity - lambda)
    }
}

/// Fractional server requirement `λ/µ + 1/(µ·bound)` (eq. 35 before integer
/// rounding).
///
/// This is the single definition of the paper's M/M/n latency inversion that
/// both [`servers_for_latency`] and the LP reference governor derive from;
/// keep any tweak to the formula here so every layer stays consistent.
///
/// # Panics
///
/// Panics if `mu ≤ 0` or `bound ≤ 0`.
pub fn fractional_servers_for_latency(lambda: f64, mu: f64, bound: f64) -> f64 {
    assert!(mu > 0.0, "service rate must be positive");
    assert!(bound > 0.0, "latency bound must be positive");
    lambda.max(0.0) / mu + 1.0 / (mu * bound)
}

/// Minimum number of servers needed so the busy-system latency stays at or
/// below `bound` (inverts eq. 30): `m ≥ λ/µ + 1/(µ·bound)`.
///
/// # Panics
///
/// Panics if `mu ≤ 0` or `bound ≤ 0`.
pub fn servers_for_latency(lambda: f64, mu: f64, bound: f64) -> u64 {
    fractional_servers_for_latency(lambda, mu, bound).ceil() as u64
}

/// Erlang-C probability that an arriving request must wait, for an M/M/n
/// queue with offered load `a = λ/µ` and `n` servers.
///
/// Returns 1.0 when the queue is unstable (`a ≥ n`).
pub fn erlang_c(servers: u64, offered_load: f64) -> f64 {
    let n = servers as f64;
    let a = offered_load;
    if a <= 0.0 {
        return 0.0;
    }
    if a >= n {
        return 1.0;
    }
    // Compute iteratively in log-free form using the recurrence for the
    // Erlang-B blocking probability, then convert to Erlang-C.
    let mut b = 1.0; // Erlang-B with 0 servers
    for k in 1..=servers {
        b = a * b / (k as f64 + a * b);
    }
    // C = n·B / (n − a(1 − B))
    n * b / (n - a * (1.0 - b))
}

/// Exact M/M/n mean waiting time (queueing delay only):
/// `W_q = C(n, a) / (nµ − λ)`.
///
/// Returns `f64::INFINITY` when unstable.
pub fn mmn_mean_wait(servers: u64, mu: f64, lambda: f64) -> f64 {
    let capacity = servers as f64 * mu;
    if capacity <= lambda {
        return f64::INFINITY;
    }
    erlang_c(servers, lambda / mu) / (capacity - lambda)
}

/// `true` when an M/M/n queue with these parameters is stable.
pub fn is_stable(servers: u64, mu: f64, lambda: f64) -> bool {
    (servers as f64) * mu > lambda
}

/// Tail probability of the M/M/n waiting time:
/// `P(W > t) = C(n, λ/µ) · e^{−(nµ−λ)t}`.
///
/// Returns 1.0 for unstable queues and `t ≤ 0`.
pub fn mmn_wait_tail(servers: u64, mu: f64, lambda: f64, t: f64) -> f64 {
    let capacity = servers as f64 * mu;
    if capacity <= lambda || t <= 0.0 {
        return 1.0;
    }
    (erlang_c(servers, lambda / mu) * (-(capacity - lambda) * t).exp()).min(1.0)
}

/// The `p`-th percentile (0 < p < 1) of the M/M/n waiting time:
/// the smallest `t` with `P(W ≤ t) ≥ p`. Returns 0 when even `t = 0`
/// satisfies it (an arriving request is served immediately with
/// probability `1 − C(n, a) ≥ p`), and `f64::INFINITY` for unstable
/// queues.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn mmn_wait_percentile(servers: u64, mu: f64, lambda: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "percentile must lie in (0, 1)");
    let capacity = servers as f64 * mu;
    if capacity <= lambda {
        return f64::INFINITY;
    }
    let c = erlang_c(servers, lambda / mu);
    if 1.0 - c >= p {
        return 0.0;
    }
    // Solve C·e^{−(nµ−λ)t} = 1 − p.
    (c / (1.0 - p)).ln() / (capacity - lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_latency_matches_eq_14() {
        // 10 servers at µ=2 with λ=15 → D = 1/(20−15) = 0.2.
        assert_eq!(busy_latency(10, 2.0, 15.0), 0.2);
    }

    #[test]
    fn busy_latency_infinite_when_overloaded() {
        assert_eq!(busy_latency(10, 2.0, 20.0), f64::INFINITY);
        assert_eq!(busy_latency(10, 2.0, 25.0), f64::INFINITY);
    }

    #[test]
    fn servers_for_latency_inverts_the_bound() {
        // Paper numbers: λ=15000, µ=2, D=1ms → 15000/2 + 500 = 8000.
        assert_eq!(servers_for_latency(15_000.0, 2.0, 0.001), 8000);
        // The resulting deployment actually meets the bound...
        assert!(busy_latency(8000, 2.0, 15_000.0) <= 0.001);
        // ...and one server fewer does not.
        assert!(busy_latency(7999, 2.0, 15_000.0) > 0.001);
    }

    #[test]
    fn servers_for_latency_handles_zero_workload() {
        // Even idle IDCs keep the latency head-room servers on.
        assert_eq!(servers_for_latency(0.0, 2.0, 0.001), 500);
        assert_eq!(servers_for_latency(-5.0, 2.0, 0.001), 500);
    }

    #[test]
    fn erlang_c_known_values() {
        // Single server: C(1, a) = a (for a < 1).
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
        // Boundary behaviour.
        assert_eq!(erlang_c(4, 0.0), 0.0);
        assert_eq!(erlang_c(4, 4.0), 1.0);
        assert_eq!(erlang_c(4, 9.0), 1.0);
        // M/M/2 with a=1: B = 1/5·... compute: B1 = 1/(1+1)=0.5, B2 = 1·0.5/(2+0.5)=0.2;
        // C = 2·0.2/(2 − 1·0.8) = 0.4/1.2 = 1/3.
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_decreases_with_more_servers() {
        let a = 8.0;
        let mut prev = 1.0;
        for n in 9..20 {
            let c = erlang_c(n, a);
            assert!(c < prev, "C({n}) = {c} not < {prev}");
            prev = c;
        }
    }

    #[test]
    fn busy_approximation_upper_bounds_exact_wait() {
        // P_Q = 1 is the worst case, so eq. 14 ≥ exact mean wait.
        for (n, mu, lambda) in [(10u64, 2.0, 15.0), (100, 1.25, 110.0), (50, 1.75, 80.0)] {
            let approx = busy_latency(n, mu, lambda);
            let exact = mmn_mean_wait(n, mu, lambda);
            assert!(approx >= exact, "approx {approx} < exact {exact} for n={n}");
        }
    }

    #[test]
    fn stability_check() {
        assert!(is_stable(10, 2.0, 19.9));
        assert!(!is_stable(10, 2.0, 20.0));
    }

    #[test]
    fn wait_tail_decays_exponentially() {
        let (n, mu, lambda) = (10u64, 2.0, 15.0);
        let c = erlang_c(n, lambda / mu);
        // At t = 0⁺ the tail is C(n, a).
        assert!((mmn_wait_tail(n, mu, lambda, 1e-12) - c).abs() < 1e-9);
        // Halving property at t = ln 2 / (nµ−λ).
        let t_half = (2.0f64).ln() / (20.0 - 15.0);
        assert!((mmn_wait_tail(n, mu, lambda, t_half) - c / 2.0).abs() < 1e-9);
        // Unstable queues never clear.
        assert_eq!(mmn_wait_tail(10, 2.0, 25.0, 1.0), 1.0);
    }

    #[test]
    fn wait_percentile_inverts_the_tail() {
        let (n, mu, lambda) = (10u64, 2.0, 19.0);
        for p in [0.5, 0.9, 0.99] {
            let t = mmn_wait_percentile(n, mu, lambda, p);
            if t > 0.0 {
                // Tail at the percentile equals 1 − p.
                assert!(
                    (mmn_wait_tail(n, mu, lambda, t) - (1.0 - p)).abs() < 1e-9,
                    "p = {p}"
                );
            }
        }
        // A lightly loaded system serves most requests immediately.
        assert_eq!(mmn_wait_percentile(100, 2.0, 10.0, 0.5), 0.0);
        // Unstable → ∞.
        assert_eq!(mmn_wait_percentile(10, 2.0, 25.0, 0.9), f64::INFINITY);
        // Percentiles are monotone in p.
        let t90 = mmn_wait_percentile(n, mu, lambda, 0.90);
        let t99 = mmn_wait_percentile(n, mu, lambda, 0.99);
        assert!(t99 > t90);
    }

    #[test]
    #[should_panic(expected = "percentile must lie in (0, 1)")]
    fn wait_percentile_rejects_bad_p() {
        mmn_wait_percentile(10, 2.0, 15.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "latency bound must be positive")]
    fn servers_for_latency_rejects_zero_bound() {
        servers_for_latency(1.0, 1.0, 0.0);
    }
}
