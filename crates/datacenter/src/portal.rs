//! Front-end Web portals (paper Sec. III-A, Fig. 1).

use serde::{Deserialize, Serialize};

/// A front-end Web portal offering workload `Li` (req/s) that must be
/// split across the IDCs (paper eq. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontEndPortal {
    name: String,
    offered_workload: f64,
}

impl FrontEndPortal {
    /// Creates a portal. Returns `None` for negative or non-finite
    /// workload.
    pub fn new(name: impl Into<String>, offered_workload: f64) -> Option<Self> {
        if !(offered_workload >= 0.0) || !offered_workload.is_finite() {
            return None;
        }
        Some(FrontEndPortal {
            name: name.into(),
            offered_workload,
        })
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Offered workload `Li` in req/s.
    pub fn offered_workload(&self) -> f64 {
        self.offered_workload
    }

    /// Replaces the offered workload (used when the workload trace
    /// advances). Returns `false` (leaving the value unchanged) if the new
    /// value is negative or non-finite.
    pub fn set_offered_workload(&mut self, value: f64) -> bool {
        if value >= 0.0 && value.is_finite() {
            self.offered_workload = value;
            true
        } else {
            false
        }
    }
}

/// The paper's five portals (Table I): 30 000, 15 000, 15 000, 20 000 and
/// 20 000 req/s.
pub fn paper_portals() -> Vec<FrontEndPortal> {
    [30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0]
        .iter()
        .enumerate()
        .map(|(i, &l)| FrontEndPortal::new(format!("portal-{}", i + 1), l).expect("valid"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(FrontEndPortal::new("p", -1.0).is_none());
        assert!(FrontEndPortal::new("p", f64::INFINITY).is_none());
        assert!(FrontEndPortal::new("p", 0.0).is_some());
    }

    #[test]
    fn paper_portals_match_table_i() {
        let ps = paper_portals();
        assert_eq!(ps.len(), 5);
        let loads: Vec<f64> = ps.iter().map(|p| p.offered_workload()).collect();
        assert_eq!(
            loads,
            vec![30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0]
        );
        assert_eq!(loads.iter().sum::<f64>(), 100_000.0);
        assert_eq!(ps[0].name(), "portal-1");
    }

    #[test]
    fn set_offered_workload_validates() {
        let mut p = FrontEndPortal::new("p", 10.0).unwrap();
        assert!(p.set_offered_workload(20.0));
        assert_eq!(p.offered_workload(), 20.0);
        assert!(!p.set_offered_workload(-3.0));
        assert_eq!(p.offered_workload(), 20.0);
        assert!(!p.set_offered_workload(f64::NAN));
        assert_eq!(p.offered_workload(), 20.0);
    }
}
