//! Round-trip tests for the serde derives on the configuration types —
//! downstream users persist fleet configs as JSON.

use idc_datacenter::allocation::Allocation;
use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::{paper_idcs, IdcConfig};
use idc_datacenter::portal::FrontEndPortal;
use idc_datacenter::server::{CurveFitModel, ServerSpec};
use idc_datacenter::sleep::SleepController;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn server_spec_roundtrips() {
    let s = ServerSpec::paper_server(1.75).unwrap();
    assert_eq!(roundtrip(&s), s);
}

#[test]
fn curve_fit_model_roundtrips() {
    let m = CurveFitModel {
        a3: 40.0,
        a2: 30.0,
        a1: 20.0,
        a0: 100.0,
    };
    assert_eq!(roundtrip(&m), m);
}

#[test]
fn idc_config_roundtrips() {
    for idc in paper_idcs() {
        let back: IdcConfig = roundtrip(&idc);
        assert_eq!(back, idc);
        // Behaviour, not just fields, survives.
        assert_eq!(back.power_w(100, 150.0), idc.power_w(100, 150.0));
    }
}

#[test]
fn fleet_roundtrips() {
    let fleet = IdcFleet::paper_fleet();
    let back: IdcFleet = roundtrip(&fleet);
    assert_eq!(back, fleet);
    assert_eq!(back.total_capacity(), fleet.total_capacity());
}

#[test]
fn portal_and_allocation_roundtrip() {
    let p = FrontEndPortal::new("p1", 1234.5).unwrap();
    assert_eq!(roundtrip(&p), p);

    let mut a = Allocation::zeros(2, 3);
    a.set(0, 1, 10.0);
    a.set(1, 2, 20.0);
    let back: Allocation = roundtrip(&a);
    assert_eq!(back, a);
    assert_eq!(back.idc_total(1), 10.0);
}

#[test]
fn sleep_controller_roundtrips() {
    let c = SleepController::with_ramp_limit(1500).unwrap();
    assert_eq!(roundtrip(&c), c);
    let u = SleepController::unconstrained();
    assert_eq!(roundtrip(&u), u);
}

#[test]
fn malformed_json_is_rejected() {
    assert!(serde_json::from_str::<ServerSpec>("{\"bad\": 1}").is_err());
    assert!(serde_json::from_str::<IdcFleet>("[]").is_err());
}
