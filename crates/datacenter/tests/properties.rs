//! Property-based tests for the datacenter substrate.

use idc_datacenter::allocation::Allocation;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::queueing;
use idc_datacenter::server::ServerSpec;
use idc_datacenter::sleep::SleepController;
use proptest::prelude::*;

fn idc_strategy() -> impl Strategy<Value = IdcConfig> {
    (1_000u64..100_000, 0.5f64..4.0, 1e-4f64..1.0).prop_map(|(m, mu, d)| {
        IdcConfig::new(
            "gen",
            m,
            ServerSpec::new(150.0, 285.0, mu).expect("valid range"),
            d,
        )
        .expect("valid range")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Power is monotone in both workload and server count, and bounded by
    /// the all-at-peak envelope.
    #[test]
    fn power_is_monotone_and_bounded(
        idc in idc_strategy(),
        m in 0u64..100_000,
        lambda in 0.0f64..1e6,
    ) {
        let m = m.min(idc.total_servers());
        let p = idc.power_w(m, lambda);
        prop_assert!(p >= 0.0);
        prop_assert!(p <= idc.power_w(m, lambda + 100.0) + 1e-9);
        prop_assert!(p <= idc.power_w(m.saturating_add(10).min(idc.total_servers()), lambda) + 1e-9);
        prop_assert!(p <= idc.total_servers() as f64 * 285.0 + 1e-9);
    }

    /// Eq. 35 round-trip: the required server count always meets the
    /// bound, and one fewer server never does (when the workload needs at
    /// least one server beyond the head-room).
    #[test]
    fn required_servers_is_tight(
        idc in idc_strategy(),
        frac in 0.01f64..0.95,
    ) {
        let lambda = idc.max_workload() * frac;
        if let Some(m) = idc.required_servers(lambda) {
            prop_assert!(idc.meets_latency_bound(m, lambda));
            if m > 0 && lambda > 0.0 {
                // m − 1 violates unless the ceil was exact-integer.
                let slack = idc.capacity_with(m - 1) - lambda;
                prop_assert!(slack < idc.service_rate() + 1e-6);
            }
        }
    }

    /// Busy-system latency (eq. 14) always upper-bounds the exact M/M/n
    /// waiting time.
    #[test]
    fn busy_latency_bounds_erlang_c(
        servers in 1u64..500,
        mu in 0.5f64..4.0,
        rho in 0.05f64..0.98,
    ) {
        let lambda = servers as f64 * mu * rho;
        let approx = queueing::busy_latency(servers, mu, lambda);
        let exact = queueing::mmn_mean_wait(servers, mu, lambda);
        prop_assert!(approx >= exact - 1e-12, "{approx} < {exact}");
    }

    /// Proportional allocation always conserves workload and keeps shares
    /// non-negative.
    #[test]
    fn proportional_allocation_invariants(
        offered in prop::collection::vec(0.0f64..50_000.0, 1..6),
        weights in prop::collection::vec(0.1f64..10.0, 1..5),
    ) {
        let a = Allocation::proportional(&offered, &weights).unwrap();
        prop_assert!(a.is_nonnegative(0.0));
        prop_assert!(a.conserves_workload(&offered, 1e-9));
        // Control-vector round trip preserves everything.
        let u = a.to_control_vector();
        let back = Allocation::from_control_vector(offered.len(), weights.len(), &u).unwrap();
        prop_assert_eq!(back, a);
    }

    /// The ramp-limited sleep controller never moves more than the limit
    /// and never overshoots the eq. 35 target.
    #[test]
    fn sleep_ramp_respects_limit(
        idc in idc_strategy(),
        current in 0u64..100_000,
        frac in 0.0f64..1.2,
        limit in 1u64..10_000,
    ) {
        let current = current.min(idc.total_servers());
        let lambda = idc.max_workload() * frac;
        let c = SleepController::with_ramp_limit(limit).unwrap();
        let next = c.next_servers(&idc, current, lambda);
        prop_assert!(next.abs_diff(current) <= limit);
        prop_assert!(next <= idc.total_servers());
        // Moving toward the unconstrained target, never past it.
        let target = SleepController::unconstrained().next_servers(&idc, current, lambda);
        if target >= current {
            prop_assert!(next <= target);
            prop_assert!(next >= current);
        } else {
            prop_assert!(next >= target);
            prop_assert!(next <= current);
        }
    }
}
