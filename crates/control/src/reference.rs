//! The control-reference optimizer (paper Sec. IV-D, eq. 46) and the
//! peak-shaving clamp.
//!
//! The MPC tracks a reference computed by minimizing the instantaneous
//! electricity cost — the LP of Rao et al. (INFOCOM'10) that the paper
//! adopts as eq. 46:
//!
//! ```text
//! min_{m_j, λij}  Σ_j Pr_j · P_j(λ_j, m_j)
//! s.t.            Σ_j λij = L_i                 (workload conservation)
//!                 λ_j ≤ µ_j·m_j − 1/D_j        (latency bound, eq. 30)
//!                 0 ≤ m_j ≤ M_j,  λij ≥ 0
//! ```
//!
//! Peak shaving (Sec. IV-D) replaces the reference power with
//! `P_r = min(P_ro, P_rb)` where `P_rb` is the grid power budget — the MPC
//! then tracks the clamped value, keeping demand under the budget.

use idc_datacenter::idc::IdcConfig;
use idc_datacenter::queueing;
use idc_market::tariff::DemandCharge;
use idc_opt::linprog::{LinearProgram, LpWorkspace};
use idc_opt::{Error, Result};

/// The optimizer's output: the cost-minimal operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceSolution {
    allocation: Vec<f64>,
    servers: Vec<f64>,
    power_mw: Vec<f64>,
    cost_rate_per_hour: f64,
    /// Dual of each IDC's `m_j ≤ M_j` row ($/h per extra installed
    /// server; ≤ 0, and 0 where the bound is slack). Empty for solutions
    /// not produced by the LP (the greedy reference).
    server_shadow: Vec<f64>,
}

impl ReferenceSolution {
    /// The optimal workload split, IDC-major flat `λij` (length `N·C`).
    pub fn allocation(&self) -> &[f64] {
        &self.allocation
    }

    /// Optimal (continuous-relaxed) server counts per IDC.
    pub fn servers(&self) -> &[f64] {
        &self.servers
    }

    /// Integer server deployment: `⌈m_j⌉` clamped to the installed count.
    pub fn servers_ceil(&self, idcs: &[IdcConfig]) -> Vec<u64> {
        self.servers
            .iter()
            .zip(idcs)
            .map(|(&m, idc)| (m.ceil().max(0.0) as u64).min(idc.total_servers()))
            .collect()
    }

    /// Per-IDC power at the optimum, in MW — the `P_ro` of Sec. IV-D.
    pub fn power_mw(&self) -> &[f64] {
        &self.power_mw
    }

    /// Instantaneous cost rate at the optimum, in $/hour.
    pub fn cost_rate_per_hour(&self) -> f64 {
        self.cost_rate_per_hour
    }

    /// Marginal value of installed capacity: `server_shadow()[j]` is the
    /// change in optimal cost rate per additional installed server at IDC
    /// `j` (≤ 0; 0 where `M_j` is not binding). Answers "where should the
    /// operator build out?". Empty for the greedy reference, which carries
    /// no dual information.
    pub fn server_shadow(&self) -> &[f64] {
        &self.server_shadow
    }

    /// Per-IDC workload totals `λ_j` at the optimum.
    pub fn idc_workloads(&self, num_portals: usize) -> Vec<f64> {
        self.allocation
            .chunks(num_portals)
            .map(|block| block.iter().sum())
            .collect()
    }

    /// The peak-shaving clamp of Sec. IV-D: `P_r = min(P_ro, P_rb)`
    /// element-wise against the power budgets (MW).
    ///
    /// # Panics
    ///
    /// Panics if `budgets_mw.len()` differs from the number of IDCs.
    pub fn clamped_power_mw(&self, budgets_mw: &[f64]) -> Vec<f64> {
        assert_eq!(budgets_mw.len(), self.power_mw.len(), "one budget per IDC");
        self.power_mw
            .iter()
            .zip(budgets_mw)
            .map(|(&p, &b)| p.min(b))
            .collect()
    }
}

/// Solves the reference LP (paper eq. 46) for the given IDCs, offered
/// portal workloads and regional prices ($/MWh).
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] when `prices.len() != idcs.len()` or any
///   input is empty.
/// * [`Error::Infeasible`] when the offered workload exceeds the fleet's
///   latency-bounded capacity (the controllability condition fails).
///
/// # Example
///
/// ```
/// use idc_control::reference::optimal_reference;
/// use idc_datacenter::idc::paper_idcs;
///
/// # fn main() -> Result<(), idc_opt::Error> {
/// let idcs = paper_idcs();
/// // Table III, 6H prices: Wisconsin is cheapest and gets saturated.
/// let sol = optimal_reference(&idcs, &[100_000.0], &[43.26, 30.26, 19.06])?;
/// let lambdas = sol.idc_workloads(1);
/// assert!(lambdas[2] > 33_000.0); // Wisconsin near its 34 000 cap
/// # Ok(())
/// # }
/// ```
pub fn optimal_reference(
    idcs: &[IdcConfig],
    offered: &[f64],
    prices: &[f64],
) -> Result<ReferenceSolution> {
    ReferenceSolver::new().optimal(idcs, offered, prices)
}

/// A stateful eq. 46 solver that reuses its LP structure and simplex
/// workspace across calls.
///
/// For a fixed fleet the reference LP's constraint matrix never changes —
/// only the objective (prices) and the equality right-hand sides (offered
/// workloads) do. A policy solving the reference every sampling period
/// (β₁ + 1 times per step with anticipatory references) should hold one of
/// these instead of calling [`optimal_reference`], which rebuilds the LP
/// and reallocates the simplex tableau from scratch on every call. Results
/// are bit-identical either way — the cache changes where the numbers are
/// stored, not what is computed.
#[derive(Debug, Clone, Default)]
pub struct ReferenceSolver {
    ws: LpWorkspace,
    cache: Option<LpCache>,
    /// Separate cache for the demand-charge variant — its variable layout
    /// (`[λ, m, M]`) and row set differ from the plain eq. 46 LP, so the
    /// two must not evict each other when a policy interleaves them.
    dc_cache: Option<LpCache>,
}

/// A built reference LP plus the fleet fingerprint it corresponds to.
#[derive(Debug, Clone)]
struct LpCache {
    lp: LinearProgram,
    /// Everything the constraint structure depends on: dimensions and the
    /// per-IDC parameters baked into rows/bounds. Cost coefficients and
    /// equality RHS are excluded — they are rewritten in place per call.
    key: FleetKey,
}

#[derive(Debug, Clone, PartialEq)]
struct FleetKey {
    n: usize,
    c: usize,
    per_idc: Vec<[f64; 6]>,
}

impl FleetKey {
    fn of(idcs: &[IdcConfig], c: usize) -> Self {
        FleetKey {
            n: idcs.len(),
            c,
            per_idc: idcs
                .iter()
                .map(|idc| {
                    [
                        idc.service_rate(),
                        idc.latency_bound(),
                        idc.total_servers() as f64,
                        idc.pue(),
                        idc.server().b1(),
                        idc.server().b0(),
                    ]
                })
                .collect(),
        }
    }
}

impl ReferenceSolver {
    /// Creates a solver with empty caches; they fill on first use.
    pub fn new() -> Self {
        ReferenceSolver::default()
    }

    /// Solves the reference LP (paper eq. 46), reusing cached structure.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`optimal_reference`].
    pub fn optimal(
        &mut self,
        idcs: &[IdcConfig],
        offered: &[f64],
        prices: &[f64],
    ) -> Result<ReferenceSolution> {
        let n = idcs.len();
        let c = offered.len();
        if n == 0 || c == 0 || prices.len() != n {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "{n} IDCs, {c} portals, {} prices — all must be positive and consistent",
                    prices.len()
                ),
            });
        }
        validate_finite(prices, offered)?;

        let key = FleetKey::of(idcs, c);
        let rebuild = !matches!(&self.cache, Some(cached) if cached.key == key);
        if rebuild {
            self.cache = Some(LpCache {
                lp: build_reference_lp(idcs, c),
                key,
            });
        }
        let lp = &mut self.cache.as_mut().expect("cache filled above").lp;

        // Re-price and update demands in place; constraint rows are fixed.
        let cost = lp.cost_mut();
        for j in 0..n {
            let b1_mw = idcs[j].pue() * idcs[j].server().b1() / 1e6;
            let b0_mw = idcs[j].pue() * idcs[j].server().b0() / 1e6;
            for i in 0..c {
                cost[j * c + i] = prices[j] * b1_mw;
            }
            cost[n * c + j] = prices[j] * b0_mw;
        }
        lp.eq_rhs_mut().copy_from_slice(offered);

        let solution = lp.solve_with(&mut self.ws)?;
        // Inequality rows were added as: n capacity rows, then n installed
        // bounds — the latter's duals are the build-out shadow prices.
        let server_shadow = solution.duals_ub()[n..2 * n].to_vec();
        let x = solution.x();
        let allocation = x[..n * c].to_vec();
        let servers = x[n * c..].to_vec();
        let power_mw: Vec<f64> = (0..n)
            .map(|j| {
                let lam: f64 = allocation[j * c..(j + 1) * c].iter().sum();
                idcs[j].pue() * (idcs[j].server().b1() * lam + idcs[j].server().b0() * servers[j])
                    / 1e6
            })
            .collect();
        let cost_rate_per_hour = power_mw.iter().zip(prices).map(|(&p, &pr)| p * pr).sum();
        Ok(ReferenceSolution {
            allocation,
            servers,
            power_mw,
            cost_rate_per_hour,
            server_shadow,
        })
    }
}

/// The demand-charge-aware optimum: the eq. 46 operating point plus the
/// billed-peak epigraph values that priced it.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandChargeSolution {
    reference: ReferenceSolution,
    billed_peak_mw: Vec<f64>,
    demand_rate_per_hour: f64,
}

impl DemandChargeSolution {
    /// The underlying operating point (allocation, servers, power, energy
    /// cost rate).
    pub fn reference(&self) -> &ReferenceSolution {
        &self.reference
    }

    /// Per-IDC billed peaks `M_j` at the optimum, in MW: the larger of the
    /// period's running peak and the power this operating point draws.
    pub fn billed_peak_mw(&self) -> &[f64] {
        &self.billed_peak_mw
    }

    /// Amortized demand-charge rate at the optimum, in $/hour
    /// (`Σ_j w_j·M_j`).
    pub fn demand_rate_per_hour(&self) -> f64 {
        self.demand_rate_per_hour
    }

    /// Combined energy + amortized demand rate, in $/hour — the objective
    /// the epigraph LP actually minimized.
    pub fn total_rate_per_hour(&self) -> f64 {
        self.reference.cost_rate_per_hour + self.demand_rate_per_hour
    }
}

/// Solves the demand-charge-aware reference LP once, building the
/// structure from scratch. Stateful callers should use
/// [`ReferenceSolver::optimal_with_demand_charge`].
///
/// # Errors
///
/// Same failure modes as [`optimal_reference`], plus
/// [`Error::DimensionMismatch`] when `peak_so_far_mw` has the wrong length
/// or holds negative/non-finite entries.
pub fn optimal_with_demand_charge(
    idcs: &[IdcConfig],
    offered: &[f64],
    prices: &[f64],
    tariff: &DemandCharge,
    peak_so_far_mw: &[f64],
) -> Result<DemandChargeSolution> {
    ReferenceSolver::new().optimal_with_demand_charge(idcs, offered, prices, tariff, peak_so_far_mw)
}

impl ReferenceSolver {
    /// Solves the demand-charge-aware reference LP, reusing cached
    /// structure.
    ///
    /// Extends eq. 46 with one epigraph variable `M_j` per IDC (the billed
    /// peak, per Wang et al. arXiv:1308.0585):
    ///
    /// ```text
    /// min  Σ_j Pr_j·P_j(λ_j, m_j) + Σ_j w_j·M_j
    /// s.t. eq. 46 rows, plus
    ///      P_j(λ_j, m_j) − M_j ≤ 0          (epigraph)
    ///      M_j ≥ peak_so_far_j              (the period peak ratchets)
    /// ```
    ///
    /// where `w_j` is the tariff's [`DemandCharge::hourly_weight`]. While
    /// the running peak exceeds the power an IDC would draw anyway, the
    /// `M_j` floor is binding and the marginal demand-charge price of
    /// routing load there is zero — the LP happily fills up to the ratchet
    /// before demand charges start steering load elsewhere.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`optimal_with_demand_charge`].
    pub fn optimal_with_demand_charge(
        &mut self,
        idcs: &[IdcConfig],
        offered: &[f64],
        prices: &[f64],
        tariff: &DemandCharge,
        peak_so_far_mw: &[f64],
    ) -> Result<DemandChargeSolution> {
        let n = idcs.len();
        let c = offered.len();
        if n == 0 || c == 0 || prices.len() != n || peak_so_far_mw.len() != n {
            return Err(Error::DimensionMismatch {
                what: format!(
                    "{n} IDCs, {c} portals, {} prices, {} peaks — all must be positive and consistent",
                    prices.len(),
                    peak_so_far_mw.len()
                ),
            });
        }
        validate_finite(prices, offered)?;
        if peak_so_far_mw.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(Error::DimensionMismatch {
                what: "running peaks must be finite and non-negative".into(),
            });
        }

        let key = FleetKey::of(idcs, c);
        let rebuild = !matches!(&self.dc_cache, Some(cached) if cached.key == key);
        if rebuild {
            self.dc_cache = Some(LpCache {
                lp: build_demand_charge_lp(idcs, c),
                key,
            });
        }
        let lp = &mut self.dc_cache.as_mut().expect("cache filled above").lp;

        // Re-price in place. Variables: [λ (n·c), m (n), M (n)].
        let weight = tariff.hourly_weight();
        let cost = lp.cost_mut();
        for j in 0..n {
            let b1_mw = idcs[j].pue() * idcs[j].server().b1() / 1e6;
            let b0_mw = idcs[j].pue() * idcs[j].server().b0() / 1e6;
            for i in 0..c {
                cost[j * c + i] = prices[j] * b1_mw;
            }
            cost[n * c + j] = prices[j] * b0_mw;
            cost[n * c + n + j] = weight;
        }
        lp.eq_rhs_mut().copy_from_slice(offered);
        // Inequality rows: [latency (n) | installed (n) | epigraph (n) |
        // peak floor (n)] — only the floor moves between calls.
        let ineq = lp.ineq_rhs_mut();
        for j in 0..n {
            ineq[3 * n + j] = -peak_so_far_mw[j];
        }

        let solution = lp.solve_with(&mut self.ws)?;
        let server_shadow = solution.duals_ub()[n..2 * n].to_vec();
        let x = solution.x();
        let allocation = x[..n * c].to_vec();
        let servers = x[n * c..n * c + n].to_vec();
        let billed_peak_mw = x[n * c + n..].to_vec();
        let power_mw: Vec<f64> = (0..n)
            .map(|j| {
                let lam: f64 = allocation[j * c..(j + 1) * c].iter().sum();
                idcs[j].pue() * (idcs[j].server().b1() * lam + idcs[j].server().b0() * servers[j])
                    / 1e6
            })
            .collect();
        let cost_rate_per_hour = power_mw.iter().zip(prices).map(|(&p, &pr)| p * pr).sum();
        let demand_rate_per_hour = billed_peak_mw.iter().map(|&m| weight * m).sum();
        Ok(DemandChargeSolution {
            reference: ReferenceSolution {
                allocation,
                servers,
                power_mw,
                cost_rate_per_hour,
                server_shadow,
            },
            billed_peak_mw,
            demand_rate_per_hour,
        })
    }
}

/// Builds the demand-charge epigraph LP structure. Cost coefficients, the
/// equality RHS and the peak-floor RHS are rewritten per call.
fn build_demand_charge_lp(idcs: &[IdcConfig], c: usize) -> LinearProgram {
    let n = idcs.len();
    // Variables: [λ (IDC-major, n·c), m (n), M (n)].
    let nv = n * c + 2 * n;
    let mut lp = LinearProgram::minimize(vec![0.0; nv]);

    // Conservation per portal: Σ_j λij = L_i.
    for i in 0..c {
        let mut row = vec![0.0; nv];
        for j in 0..n {
            row[j * c + i] = 1.0;
        }
        lp = lp.equality(row, 0.0);
    }
    // Latency/capacity per IDC: Σ_i λij − µ_j m_j ≤ −1/D_j.
    for (j, idc) in idcs.iter().enumerate() {
        let mut row = vec![0.0; nv];
        for i in 0..c {
            row[j * c + i] = 1.0;
        }
        row[n * c + j] = -idc.service_rate();
        lp = lp.inequality(row, -1.0 / idc.latency_bound());
    }
    // Installed bound: m_j ≤ M_j (installed servers).
    for (j, idc) in idcs.iter().enumerate() {
        let mut row = vec![0.0; nv];
        row[n * c + j] = 1.0;
        lp = lp.inequality(row, idc.total_servers() as f64);
    }
    // Epigraph: P_j(λ, m) − M_j ≤ 0, with P in MW.
    for (j, idc) in idcs.iter().enumerate() {
        let b1_mw = idc.pue() * idc.server().b1() / 1e6;
        let b0_mw = idc.pue() * idc.server().b0() / 1e6;
        let mut row = vec![0.0; nv];
        for i in 0..c {
            row[j * c + i] = b1_mw;
        }
        row[n * c + j] = b0_mw;
        row[n * c + n + j] = -1.0;
        lp = lp.inequality(row, 0.0);
    }
    // Ratchet floor: −M_j ≤ −peak_so_far_j (rewritten per call).
    for j in 0..n {
        let mut row = vec![0.0; nv];
        row[n * c + n + j] = -1.0;
        lp = lp.inequality(row, 0.0);
    }
    lp
}

/// Builds the eq. 46 constraint structure for a fleet. Cost coefficients
/// and equality RHS are left zero — [`ReferenceSolver::optimal`] fills
/// them in per call.
fn build_reference_lp(idcs: &[IdcConfig], c: usize) -> LinearProgram {
    let n = idcs.len();
    // Variables: [λ_11…λ_C1, …, λ_1N…λ_CN, m_1…m_N] (IDC-major λ).
    let nv = n * c + n;
    let mut lp = LinearProgram::minimize(vec![0.0; nv]);

    // Conservation per portal: Σ_j λij = L_i.
    for i in 0..c {
        let mut row = vec![0.0; nv];
        for j in 0..n {
            row[j * c + i] = 1.0;
        }
        lp = lp.equality(row, 0.0);
    }
    // Latency/capacity per IDC: Σ_i λij − µ_j m_j ≤ −1/D_j.
    for (j, idc) in idcs.iter().enumerate() {
        let mut row = vec![0.0; nv];
        for i in 0..c {
            row[j * c + i] = 1.0;
        }
        row[n * c + j] = -idc.service_rate();
        lp = lp.inequality(row, -1.0 / idc.latency_bound());
    }
    // Installed bound: m_j ≤ M_j.
    for (j, idc) in idcs.iter().enumerate() {
        let mut row = vec![0.0; nv];
        row[n * c + j] = 1.0;
        lp = lp.inequality(row, idc.total_servers() as f64);
    }
    lp
}

/// Rejects non-finite prices or negative/non-finite workloads before they
/// can poison a solver.
fn validate_finite(prices: &[f64], offered: &[f64]) -> Result<()> {
    if prices.iter().any(|p| !p.is_finite()) {
        return Err(Error::DimensionMismatch {
            what: "prices must be finite".into(),
        });
    }
    if offered.iter().any(|l| !l.is_finite() || *l < 0.0) {
        return Err(Error::DimensionMismatch {
            what: "offered workloads must be finite and non-negative".into(),
        });
    }
    Ok(())
}

/// The *price-greedy* reference: fills IDCs in ascending order of raw
/// regional price, each to its latency-bounded capacity.
///
/// This is **not** the optimum of eq. 46 — the LP weighs price by the
/// power drawn per request (`Pr_j · peak/µ_j`) — but it is the policy the
/// paper's plotted "optimal method" trajectories actually follow (its
/// Figs. 4–7 allocations track raw price rank, e.g. Minnesota saturated at
/// 6H despite having the highest energy-per-request). The reproduction
/// harness runs both and reports the gap.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] on inconsistent inputs.
/// * [`Error::Infeasible`] when the offered workload exceeds the fleet's
///   capacity.
pub fn price_greedy_reference(
    idcs: &[IdcConfig],
    offered: &[f64],
    prices: &[f64],
) -> Result<ReferenceSolution> {
    let n = idcs.len();
    let c = offered.len();
    if n == 0 || c == 0 || prices.len() != n {
        return Err(Error::DimensionMismatch {
            what: format!(
                "{n} IDCs, {c} portals, {} prices — all must be positive and consistent",
                prices.len()
            ),
        });
    }
    validate_finite(prices, offered)?;
    let total: f64 = offered.iter().sum();
    let capacity: f64 = idcs.iter().map(|i| i.max_workload()).sum();
    if total > capacity {
        return Err(Error::Infeasible);
    }

    // IDC indices in ascending price order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| prices[a].partial_cmp(&prices[b]).expect("finite prices"));

    // Per-IDC targets: cheapest first, each filled to capacity.
    let mut targets = vec![0.0; n];
    let mut remaining = total;
    for &j in &order {
        let take = remaining.min(idcs[j].max_workload());
        targets[j] = take;
        remaining -= take;
    }

    // Split the targets back over portals in portal order.
    let mut allocation = vec![0.0; n * c];
    let mut portal_left: Vec<f64> = offered.to_vec();
    for &j in &order {
        let mut need = targets[j];
        for i in 0..c {
            if need <= 0.0 {
                break;
            }
            let take = portal_left[i].min(need);
            allocation[j * c + i] = take;
            portal_left[i] -= take;
            need -= take;
        }
    }

    // Eq. 35 with the latency head-room — kept even at zero load, exactly
    // as the LP's eq. 30 requires, so greedy and LP deployments are
    // comparable.
    let servers: Vec<f64> = (0..n)
        .map(|j| {
            queueing::fractional_servers_for_latency(
                targets[j],
                idcs[j].service_rate(),
                idcs[j].latency_bound(),
            )
            .min(idcs[j].total_servers() as f64)
        })
        .collect();
    let power_mw: Vec<f64> = (0..n)
        .map(|j| {
            idcs[j].pue()
                * (idcs[j].server().b1() * targets[j] + idcs[j].server().b0() * servers[j])
                / 1e6
        })
        .collect();
    let cost_rate_per_hour = power_mw.iter().zip(prices).map(|(&p, &pr)| p * pr).sum();
    Ok(ReferenceSolution {
        allocation,
        servers,
        power_mw,
        cost_rate_per_hour,
        server_shadow: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_datacenter::idc::paper_idcs;

    const PAPER_LOADS: [f64; 5] = [30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0];
    const PRICES_6H: [f64; 3] = [43.26, 30.26, 19.06];
    const PRICES_7H: [f64; 3] = [49.90, 29.47, 77.97];

    #[test]
    fn six_hour_optimum_ranks_by_cost_per_request() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        let lam = sol.idc_workloads(5);
        // The true LP ranks by Pr_j · (peak power / µ_j) — cost per unit of
        // workload — not by raw price: WI (3104) < MI (6165) < MN (6899).
        // Wisconsin and Michigan saturate their latency-bounded capacities
        // (34 000 and 59 000); Minnesota takes the remaining 7 000.
        assert!((lam[2] - 34_000.0).abs() < 1.0, "WI {}", lam[2]);
        assert!((lam[0] - 59_000.0).abs() < 1.0, "MI {}", lam[0]);
        assert!((lam[1] - 7_000.0).abs() < 1.0, "MN {}", lam[1]);
        // Conservation.
        assert!((lam.iter().sum::<f64>() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn seven_hour_optimum_flees_wisconsin() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_7H).unwrap();
        let lam = sol.idc_workloads(5);
        // Per-request ranking at 7H: MN (5526) < MI (7111) < WI (11947).
        // Wisconsin is abandoned entirely.
        assert!(lam[2] < 1.0, "WI {}", lam[2]);
        assert!((lam[1] - 49_000.0).abs() < 1.0, "MN {}", lam[1]);
        assert!((lam[0] - 51_000.0).abs() < 1.0, "MI {}", lam[0]);
    }

    #[test]
    fn six_to_seven_hour_transition_reshuffles_everything() {
        // The 6H→7H price flip makes the LP move most of the load — the
        // violent step the MPC is built to smooth.
        let idcs = paper_idcs();
        let at6 = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        let at7 = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_7H).unwrap();
        let l6 = at6.idc_workloads(5);
        let l7 = at7.idc_workloads(5);
        let moved: f64 = l6.iter().zip(&l7).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
        assert!(moved > 30_000.0, "only {moved} req/s moved");
    }

    #[test]
    fn server_counts_track_allocated_workload() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        // At the optimum m_j = λ_j/µ_j + 1/(µ_j·D_j) exactly (for positive
        // prices the LP pushes m down to the constraint).
        let lam = sol.idc_workloads(5);
        for j in 0..3 {
            let expected = lam[j] / idcs[j].service_rate()
                + 1.0 / (idcs[j].service_rate() * idcs[j].latency_bound());
            assert!(
                (sol.servers()[j] - expected).abs() < 1e-3,
                "IDC {j}: {} vs {expected}",
                sol.servers()[j]
            );
        }
        // Integer deployment respects installed bounds.
        let m = sol.servers_ceil(&idcs);
        for (j, idc) in idcs.iter().enumerate() {
            assert!(m[j] <= idc.total_servers());
        }
    }

    #[test]
    fn cost_rate_is_price_weighted_power() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        let manual: f64 = sol
            .power_mw()
            .iter()
            .zip(&PRICES_6H)
            .map(|(&p, &pr)| p * pr)
            .sum();
        assert!((sol.cost_rate_per_hour() - manual).abs() < 1e-9);
        assert!(sol.cost_rate_per_hour() > 0.0);
    }

    #[test]
    fn optimum_beats_proportional_allocation() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        // Proportional-to-capacity allocation cost.
        let caps: Vec<f64> = idcs.iter().map(|i| i.max_workload()).collect();
        let total_cap: f64 = caps.iter().sum();
        let total_load: f64 = PAPER_LOADS.iter().sum();
        let prop_cost: f64 = (0..3)
            .map(|j| {
                let lam = total_load * caps[j] / total_cap;
                let m = lam / idcs[j].service_rate()
                    + 1.0 / (idcs[j].service_rate() * idcs[j].latency_bound());
                let p = (idcs[j].server().b1() * lam + idcs[j].server().b0() * m) / 1e6;
                p * PRICES_6H[j]
            })
            .sum();
        assert!(
            sol.cost_rate_per_hour() < prop_cost,
            "{} vs {prop_cost}",
            sol.cost_rate_per_hour()
        );
    }

    #[test]
    fn server_shadow_prices_identify_the_buildout_target() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        let shadow = sol.server_shadow();
        // At 6H, Wisconsin and Michigan saturate their installed capacity
        // (binding M) — extra servers there save money; Minnesota has
        // slack capacity — zero marginal value.
        assert!(shadow[2] < -1e-6, "WI shadow {shadow:?}");
        assert!(shadow[0] < -1e-6, "MI shadow {shadow:?}");
        assert!(shadow[1].abs() < 1e-9, "MN shadow {shadow:?}");
        // Wisconsin (cheapest per request) is the best build-out target.
        assert!(shadow[2] < shadow[0], "{shadow:?}");
        // Greedy solutions carry no duals.
        let greedy = price_greedy_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        assert!(greedy.server_shadow().is_empty());
    }

    #[test]
    fn stateful_solver_matches_fresh_solves_across_price_flips() {
        let idcs = paper_idcs();
        let mut solver = ReferenceSolver::new();
        // Interleave the 6H/7H regimes: the cached LP must be re-priced
        // correctly every call, not just on the first.
        for prices in [PRICES_6H, PRICES_7H, PRICES_6H, PRICES_7H] {
            let cached = solver.optimal(&idcs, &PAPER_LOADS, &prices).unwrap();
            let fresh = optimal_reference(&idcs, &PAPER_LOADS, &prices).unwrap();
            assert_eq!(cached, fresh);
        }
        // Changing the offered workload only touches the equality RHS.
        let half: Vec<f64> = PAPER_LOADS.iter().map(|l| l / 2.0).collect();
        let cached = solver.optimal(&idcs, &half, &PRICES_6H).unwrap();
        assert_eq!(cached, optimal_reference(&idcs, &half, &PRICES_6H).unwrap());
    }

    #[test]
    fn stateful_solver_rebuilds_on_fleet_or_shape_change() {
        let idcs = paper_idcs();
        let mut solver = ReferenceSolver::new();
        solver.optimal(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        // Different portal count → different variable layout.
        let one_portal = solver.optimal(&idcs, &[100_000.0], &PRICES_6H).unwrap();
        assert_eq!(
            one_portal,
            optimal_reference(&idcs, &[100_000.0], &PRICES_6H).unwrap()
        );
        // Different fleet (subset) → different constraint rows.
        let two = &idcs[..2];
        let smaller = solver.optimal(two, &[50_000.0], &PRICES_6H[..2]).unwrap();
        assert_eq!(
            smaller,
            optimal_reference(two, &[50_000.0], &PRICES_6H[..2]).unwrap()
        );
        // And back to the full fleet without stale structure.
        let back = solver.optimal(&idcs, &PAPER_LOADS, &PRICES_7H).unwrap();
        assert_eq!(
            back,
            optimal_reference(&idcs, &PAPER_LOADS, &PRICES_7H).unwrap()
        );
    }

    #[test]
    fn stateful_solver_validates_like_the_free_function() {
        let mut solver = ReferenceSolver::new();
        let idcs = paper_idcs();
        assert!(matches!(
            solver.optimal(&idcs, &[1.0], &[1.0, 2.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(solver.optimal(&[], &[1.0], &[]).is_err());
        assert!(solver
            .optimal(&idcs, &[1.0], &[f64::NAN, 1.0, 1.0])
            .is_err());
        assert!(matches!(
            solver.optimal(&idcs, &[150_000.0], &PRICES_6H),
            Err(Error::Infeasible)
        ));
        // Errors leave the solver usable.
        assert!(solver.optimal(&idcs, &PAPER_LOADS, &PRICES_6H).is_ok());
    }

    #[test]
    fn clamp_applies_budgets() {
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_7H).unwrap();
        let budgets = [5.13, 10.26, 4.275];
        let clamped = sol.clamped_power_mw(&budgets);
        for j in 0..3 {
            assert!(clamped[j] <= budgets[j] + 1e-12);
            assert!(clamped[j] <= sol.power_mw()[j] + 1e-12);
        }
    }

    #[test]
    fn overload_is_infeasible() {
        let idcs = paper_idcs();
        // Total latency-bounded capacity is 142 000.
        let r = optimal_reference(&idcs, &[150_000.0], &PRICES_6H);
        assert!(matches!(r, Err(Error::Infeasible)));
    }

    #[test]
    fn dimensions_are_validated() {
        let idcs = paper_idcs();
        assert!(matches!(
            optimal_reference(&idcs, &[1.0], &[1.0, 2.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(optimal_reference(&[], &[1.0], &[]).is_err());
        assert!(optimal_reference(&idcs, &[], &PRICES_6H).is_err());
    }

    #[test]
    fn price_greedy_follows_raw_price_rank() {
        let idcs = paper_idcs();
        // 6H: raw price rank WI < MN < MI → WI and MN saturated, MI rest.
        let sol = price_greedy_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        let lam = sol.idc_workloads(5);
        assert!((lam[2] - 34_000.0).abs() < 1.0, "WI {}", lam[2]);
        assert!((lam[1] - 49_000.0).abs() < 1.0, "MN {}", lam[1]);
        assert!((lam[0] - 17_000.0).abs() < 1.0, "MI {}", lam[0]);
        assert!((lam.iter().sum::<f64>() - 100_000.0).abs() < 1e-9);
        // Allocation invariants hold.
        let per_portal: Vec<f64> = (0..5)
            .map(|i| (0..3).map(|j| sol.allocation()[j * 5 + i]).sum())
            .collect();
        for (i, &l) in PAPER_LOADS.iter().enumerate() {
            assert!((per_portal[i] - l).abs() < 1e-9);
        }
        assert!(sol.allocation().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn price_greedy_costs_at_least_the_lp_optimum() {
        let idcs = paper_idcs();
        for prices in [PRICES_6H, PRICES_7H] {
            let lp = optimal_reference(&idcs, &PAPER_LOADS, &prices).unwrap();
            let greedy = price_greedy_reference(&idcs, &PAPER_LOADS, &prices).unwrap();
            assert!(
                greedy.cost_rate_per_hour() >= lp.cost_rate_per_hour() - 1e-6,
                "greedy {} < lp {}",
                greedy.cost_rate_per_hour(),
                lp.cost_rate_per_hour()
            );
        }
    }

    #[test]
    fn price_greedy_validates_and_reports_infeasible() {
        let idcs = paper_idcs();
        assert!(matches!(
            price_greedy_reference(&idcs, &[1.0], &[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            price_greedy_reference(&idcs, &[150_000.0], &PRICES_6H),
            Err(Error::Infeasible)
        ));
    }

    #[test]
    fn non_finite_inputs_are_rejected() {
        let idcs = paper_idcs();
        assert!(optimal_reference(&idcs, &[1.0], &[f64::NAN, 1.0, 1.0]).is_err());
        assert!(optimal_reference(&idcs, &[f64::INFINITY], &[1.0, 1.0, 1.0]).is_err());
        assert!(optimal_reference(&idcs, &[-5.0], &[1.0, 1.0, 1.0]).is_err());
        assert!(price_greedy_reference(&idcs, &[1.0], &[f64::NAN, 1.0, 1.0]).is_err());
    }

    #[test]
    fn zero_rate_demand_charge_matches_plain_reference() {
        let idcs = paper_idcs();
        let tariff = DemandCharge::new(0.0, 720.0).unwrap();
        let dc = optimal_with_demand_charge(&idcs, &PAPER_LOADS, &PRICES_6H, &tariff, &[0.0; 3])
            .unwrap();
        let plain = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_6H).unwrap();
        for (a, b) in dc.reference().power_mw().iter().zip(plain.power_mw()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(dc.demand_rate_per_hour(), 0.0);
        assert!((dc.total_rate_per_hour() - plain.cost_rate_per_hour()).abs() < 1e-9);
    }

    #[test]
    fn billed_peak_is_max_of_power_and_ratchet() {
        let idcs = paper_idcs();
        let tariff = DemandCharge::typical_commercial();
        let peaks = [9.0, 0.0, 0.0]; // Michigan already peaked this period
        let dc = optimal_with_demand_charge(&idcs, &PAPER_LOADS, &PRICES_6H, &tariff, &peaks)
            .unwrap();
        for j in 0..3 {
            let m = dc.billed_peak_mw()[j];
            let p = dc.reference().power_mw()[j];
            assert!(m >= p - 1e-9, "IDC {j}: M {m} < P {p}");
            assert!(m >= peaks[j] - 1e-9, "IDC {j}: M {m} < ratchet");
            assert!(m <= p.max(peaks[j]) + 1e-6, "IDC {j}: M {m} padded");
        }
        assert!(
            (dc.demand_rate_per_hour()
                - tariff.hourly_weight() * dc.billed_peak_mw().iter().sum::<f64>())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn demand_charge_steers_load_off_a_fresh_peak() {
        // Fresh billing period (no ratchet): every MW of peak is billable,
        // so a dominant demand charge re-ranks the fleet by *power* per
        // request instead of energy cost per request. At 7H prices those
        // rankings disagree (energy: MN < MI ≪ WI; power: MI < WI < MN),
        // so the allocation moves and total fleet power drops.
        let idcs = paper_idcs();
        let plain = optimal_reference(&idcs, &PAPER_LOADS, &PRICES_7H).unwrap();
        let tariff = DemandCharge::new(500_000.0, 720.0).unwrap();
        let dc = optimal_with_demand_charge(&idcs, &PAPER_LOADS, &PRICES_7H, &tariff, &[0.0; 3])
            .unwrap();
        let plain_total: f64 = plain.power_mw().iter().sum();
        let dc_total: f64 = dc.reference().power_mw().iter().sum();
        assert!(
            dc_total < plain_total - 1.0,
            "demand charge did not reshape the fleet: {dc_total} vs {plain_total}"
        );
        assert!(dc.demand_rate_per_hour() > 0.0);
        // A ratchet at the plain peaks makes shaving pointless — the bill
        // is sunk, so the allocation returns to pure energy pricing.
        let ratchet: Vec<f64> = plain.power_mw().to_vec();
        let sunk = optimal_with_demand_charge(&idcs, &PAPER_LOADS, &PRICES_7H, &tariff, &ratchet)
            .unwrap();
        for (a, b) in sunk.reference().power_mw().iter().zip(plain.power_mw()) {
            assert!(*a <= b + 1e-6, "{a} vs {b}");
        }
        assert!(
            (sunk.reference().cost_rate_per_hour() - plain.cost_rate_per_hour()).abs() < 1e-6
        );
    }

    #[test]
    fn stateful_demand_charge_matches_fresh_and_coexists_with_plain() {
        let idcs = paper_idcs();
        let tariff = DemandCharge::typical_commercial();
        let mut solver = ReferenceSolver::new();
        let mut peaks = vec![0.0; 3];
        for prices in [PRICES_6H, PRICES_7H, PRICES_6H] {
            // Interleave plain and DC solves: separate caches, no eviction.
            let plain = solver.optimal(&idcs, &PAPER_LOADS, &prices).unwrap();
            assert_eq!(plain, optimal_reference(&idcs, &PAPER_LOADS, &prices).unwrap());
            let cached = solver
                .optimal_with_demand_charge(&idcs, &PAPER_LOADS, &prices, &tariff, &peaks)
                .unwrap();
            let fresh =
                optimal_with_demand_charge(&idcs, &PAPER_LOADS, &prices, &tariff, &peaks).unwrap();
            assert_eq!(cached, fresh);
            // Ratchet the running peaks like a billing period would.
            for (p, &m) in peaks.iter_mut().zip(cached.reference().power_mw()) {
                *p = p.max(m);
            }
        }
    }

    #[test]
    fn demand_charge_validates_peaks() {
        let idcs = paper_idcs();
        let tariff = DemandCharge::typical_commercial();
        assert!(matches!(
            optimal_with_demand_charge(&idcs, &PAPER_LOADS, &PRICES_6H, &tariff, &[0.0; 2]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(optimal_with_demand_charge(
            &idcs,
            &PAPER_LOADS,
            &PRICES_6H,
            &tariff,
            &[-1.0, 0.0, 0.0]
        )
        .is_err());
        assert!(optimal_with_demand_charge(
            &idcs,
            &PAPER_LOADS,
            &PRICES_6H,
            &tariff,
            &[f64::NAN, 0.0, 0.0]
        )
        .is_err());
    }

    #[test]
    fn negative_price_turns_everything_on() {
        // Wisconsin's Fig. 2 negative-price dip: the LP runs all servers
        // there (being paid to consume).
        let idcs = paper_idcs();
        let sol = optimal_reference(&idcs, &PAPER_LOADS, &[43.26, 30.26, -21.3]).unwrap();
        assert!((sol.servers()[2] - 20_000.0).abs() < 1e-6);
        // And saturates its workload capacity.
        let lam = sol.idc_workloads(5);
        assert!((lam[2] - 34_000.0).abs() < 1.0);
    }
}
