//! Block-banded "Riccati" backend for the condensed MPC (paper eq. 42–45).
//!
//! The dense backend condenses the tracking/smoothing least squares into an
//! `nv × nv` Hessian (`nv = N·C·β₂`) whose cumulative-sum constraint rows are
//! fully dense — every active-set iteration then pays `O(nv·m)` gathers and an
//! `O(m³)` working-set factorization. This module removes that density at the
//! source by a change of variables: instead of the stacked input *changes*
//! `ΔU = (x_0, …, x_{β₂−1})` it optimizes the stacked *cumulative* changes
//!
//! ```text
//! y_t = Σ_{t'≤t} x_{t'}            (so x_t = y_t − y_{t−1}, y_{−1} = 0)
//! ```
//!
//! In `y` every constraint of the paper becomes **stage-local**:
//!
//! * conservation (eq. 45): `Σ_j y_t[j·C+i] = rhs`, `n` entries in stage `t`;
//! * capacity (eq. 43): `Σ_i y_t[j·C+i] ≤ rhs`, `c` entries in stage `t`;
//! * non-negativity (eq. 44): `−y_t[idx] ≤ rhs`, a single entry;
//!
//! and the Hessian becomes **block-tridiagonal** — the tracking term touches
//! one stage per prediction row and the smoothing/ridge term couples only
//! adjacent stages (it is a first-order difference in `y`). The stages play
//! the role of the time recursion in a Riccati sweep: [`idc_linalg::banded`]
//! factors the Hessian by a backward block-Cholesky recursion and solves in
//! `O(β₂·(NC)²)` instead of `O(nv²)`, and [`idc_opt::banded_qp`] keeps the
//! working-set Schur complement factored incrementally across active-set
//! changes.
//!
//! Constraint rows are emitted in exactly the dense backend's order
//! (conservation `t`-major × portal, then capacity `t`-major × IDC, then
//! non-negativity `t`-major × entry), so warm-start active sets, the
//! receding-horizon seed shift in [`crate::mpc`], and reported active sets
//! are interchangeable between backends. The objective value also matches the
//! dense lowering exactly (both drop the same `bᵀQb` constant), which is what
//! the cross-backend equivalence tests assert.

use idc_linalg::banded::BlockTridiag;
use idc_opt::banded_qp::{BandedQp, SparseRow};
use idc_opt::Result;

use crate::mpc::{MpcConfig, MpcProblem};

/// The banded QP skeleton for one problem structure `(N, C, b₁, multipliers)`.
///
/// Mirrors the dense backend's cached `ConstrainedLeastSquares` +
/// `QuadraticProgram` pair: built once per structure, then only the gradient
/// and constraint right-hand sides are rewritten each sampling period.
#[derive(Debug, Clone)]
pub struct RiccatiSkeleton {
    qp: BandedQp,
    beta1: usize,
    beta2: usize,
    n: usize,
    c: usize,
    /// Stage block size: `N·C`, plus `2N` rate variables with storage.
    nb: usize,
    /// Per-IDC gradient coefficient `−2·b₁_j·Q·multiplier_j`.
    grad_coeff: Vec<f64>,
}

impl RiccatiSkeleton {
    /// Assembles the y-space Hessian, constraint rows, and placeholder
    /// right-hand sides for the given structure. Call
    /// [`BandedQp::prepare`] (via [`qp_mut`](Self::qp_mut)) afterwards to
    /// factor the Hessian.
    pub fn build(config: &MpcConfig, problem: &MpcProblem) -> Result<Self> {
        let n = problem.num_idcs();
        let c = problem.num_portals();
        let nc = n * c;
        let nb = problem.block_size();
        let storage = problem.storage.as_ref();
        let beta1 = config.prediction_horizon;
        let beta2 = config.control_horizon;
        let tw = config.tracking_weight;
        let sw = config.smoothing_weight;
        let ridge = config.input_ridge;

        // ---- Hessian: H_y = 2·(Ŝ + B̂) with Ŝ the stagewise tracking
        // normal matrix and B̂ the difference operator's normal matrix.
        //
        // Tracking row (s, j) reads b₁_j·Σ_i y_{τ(s)}[j·C+i] with
        // τ(s) = min(s, β₂−1), so stage τ < β₂−1 receives one row per IDC
        // and the final stage receives the β₁−β₂+1 tail rows. Each row
        // contributes a rank-one `b₁²·𝟙𝟙ᵀ` coupling within its IDC block.
        // With storage the row also reads `+b₁·y[γc_j] − b₁·y[γd_j]` (rate
        // changes in req/s equivalents), extending the rank-one pattern to
        // the rate entries with a sign flip on the discharge column.
        //
        // Smoothing row (t, j) reads the same pattern of (y_t − y_{t−1})
        // and the ridge penalizes (y_t − y_{t−1}) entrywise; a stage
        // appears in the difference at `t` and (except the last) at `t+1`,
        // hence the 2-vs-1 diagonal count, with `−B` on the subdiagonal
        // blocks.
        let signed_entries = |j: usize| -> Vec<(usize, f64)> {
            let mut e: Vec<(usize, f64)> = (0..c).map(|a| (j * c + a, 1.0)).collect();
            if storage.is_some() {
                e.push((nc + j, 1.0));
                e.push((nc + n + j, -1.0));
            }
            e
        };
        let mut h = BlockTridiag::new(nb, beta2);
        for tau in 0..beta2 {
            let track_count = if tau + 1 < beta2 {
                1.0
            } else {
                (beta1 - beta2 + 1) as f64
            };
            let smooth_count = if tau + 1 < beta2 { 2.0 } else { 1.0 };
            let block = h.diag_mut(tau);
            for j in 0..n {
                let b1 = problem.b1_mw[j];
                let couple = 2.0
                    * b1
                    * b1
                    * (tw * problem.tracking_multiplier[j] * track_count + sw * smooth_count);
                let entries = signed_entries(j);
                for &(ia, sa) in &entries {
                    for &(ib, sb) in &entries {
                        block[ia * nb + ib] = couple * sa * sb;
                    }
                }
            }
            for d in 0..nb {
                block[d * nb + d] += 2.0 * ridge * smooth_count;
            }
        }
        for tau in 0..beta2.saturating_sub(1) {
            let block = h.sub_mut(tau);
            for j in 0..n {
                let b1 = problem.b1_mw[j];
                let couple = -2.0 * sw * b1 * b1;
                let entries = signed_entries(j);
                for &(ia, sa) in &entries {
                    for &(ib, sb) in &entries {
                        block[ia * nb + ib] = couple * sa * sb;
                    }
                }
            }
            for d in 0..nb {
                block[d * nb + d] -= 2.0 * ridge;
            }
        }

        let mut qp = BandedQp::new(h, vec![0.0; beta2 * nb])?;
        // Constraint rows in the dense backend's exact order; rhs values
        // are per-step and rewritten in place.
        for t in 0..beta2 {
            for i in 0..c {
                let mut row = SparseRow::new();
                for j in 0..n {
                    row.push(t * nb + j * c + i, 1.0);
                }
                qp = qp.equality(row, 0.0);
            }
        }
        for t in 0..beta2 {
            for j in 0..n {
                let mut row = SparseRow::new();
                for i in 0..c {
                    row.push(t * nb + j * c + i, 1.0);
                }
                qp = qp.inequality(row, 0.0);
            }
        }
        for t in 0..beta2 {
            for idx in 0..nc {
                qp = qp.inequality(SparseRow::from_entries(vec![(t * nb + idx, -1.0)]), 0.0);
            }
        }
        if let Some(st) = storage {
            // Storage families in the dense backend's order. In y-space
            // the rate boxes are stage-local single entries (the
            // cumulative rate change at stage t IS y_t's rate entry); the
            // SoC rows sum the rate entries over stages ≤ t — multi-stage
            // rows are fine here, only the Hessian must stay banded.
            for sign in [1.0, -1.0] {
                for t in 0..beta2 {
                    for j in 0..n {
                        qp = qp
                            .inequality(SparseRow::from_entries(vec![(t * nb + nc + j, sign)]), 0.0);
                    }
                }
            }
            for sign in [1.0, -1.0] {
                for t in 0..beta2 {
                    for j in 0..n {
                        qp = qp.inequality(
                            SparseRow::from_entries(vec![(t * nb + nc + n + j, sign)]),
                            0.0,
                        );
                    }
                }
            }
            for sign in [1.0, -1.0] {
                for t in 0..beta2 {
                    for j in 0..n {
                        let mut row = SparseRow::new();
                        for r in 0..=t {
                            row.push(r * nb + nc + j, sign * st.charge_efficiency[j]);
                            row.push(r * nb + nc + n + j, -sign / st.discharge_efficiency[j]);
                        }
                        qp = qp.inequality(row, 0.0);
                    }
                }
            }
        }

        let grad_coeff = (0..n)
            .map(|j| -2.0 * problem.b1_mw[j] * tw * problem.tracking_multiplier[j])
            .collect();
        Ok(RiccatiSkeleton {
            qp,
            beta1,
            beta2,
            n,
            c,
            nb,
            grad_coeff,
        })
    }

    /// The underlying banded QP (for `prepare` and per-step rhs rewrites).
    pub fn qp_mut(&mut self) -> &mut BandedQp {
        &mut self.qp
    }

    /// Computes the y-space gradient from the per-step tracking rhs rows
    /// (`rhs[s·N + j] = reference − current power`, the same buffer the dense
    /// backend lowers through `ConstrainedLeastSquares::gradient_into`).
    ///
    /// `g_y[τ, j, i] = −2·b₁_j·Q·mult_j · Σ_{s: min(s,β₂−1)=τ} rhs[s·N+j]` —
    /// the smoothing rows have zero targets and contribute nothing.
    pub fn gradient_into(&self, rhs: &[f64], grad: &mut Vec<f64>) {
        let (n, c, nb) = (self.n, self.c, self.nb);
        let nc = n * c;
        grad.clear();
        grad.resize(self.beta2 * nb, 0.0);
        for tau in 0..self.beta2 {
            for j in 0..n {
                let sum: f64 = if tau + 1 < self.beta2 {
                    rhs[tau * n + j]
                } else {
                    (self.beta2 - 1..self.beta1).map(|s| rhs[s * n + j]).sum()
                };
                let g = self.grad_coeff[j] * sum;
                for i in 0..c {
                    grad[tau * nb + j * c + i] = g;
                }
                if nb > nc {
                    // Rate entries share the workload coefficient (same
                    // b₁ scale), with the discharge column sign-flipped.
                    grad[tau * nb + nc + j] = g;
                    grad[tau * nb + nc + n + j] = -g;
                }
            }
        }
    }
}

/// Stacks the running sums `y_t = Σ_{t'≤t} x_{t'}` of `nc`-sized blocks of
/// `x` into `y` (the ΔU → cumulative change of variables).
pub fn to_cumulative(nc: usize, x: &[f64], y: &mut Vec<f64>) {
    debug_assert!(nc > 0 && x.len().is_multiple_of(nc));
    y.clear();
    y.extend_from_slice(x);
    for t in 1..x.len() / nc {
        for k in 0..nc {
            y[t * nc + k] += y[(t - 1) * nc + k];
        }
    }
}

/// Inverse of [`to_cumulative`], in place: `x_t = y_t − y_{t−1}`.
pub fn to_deltas(nc: usize, y: &mut [f64]) {
    debug_assert!(nc > 0 && y.len().is_multiple_of(nc));
    for t in (1..y.len() / nc).rev() {
        for k in 0..nc {
            y[t * nc + k] -= y[(t - 1) * nc + k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_and_delta_round_trip() {
        let x = vec![1.0, 2.0, 3.0, -1.0, 0.5, 4.0];
        let mut y = Vec::new();
        to_cumulative(2, &x, &mut y);
        assert_eq!(y, vec![1.0, 2.0, 4.0, 1.0, 4.5, 5.0]);
        to_deltas(2, &mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn single_stage_transform_is_identity() {
        let x = vec![3.0, -2.0];
        let mut y = Vec::new();
        to_cumulative(2, &x, &mut y);
        assert_eq!(y, x);
        to_deltas(2, &mut y);
        assert_eq!(y, x);
    }
}
