//! Zero-order-hold discretization (paper eq. 21–25).
//!
//! Converts `Ẋ = AX + BU` (input held constant over each sampling period
//! `Ts`) into `X(k) = Φ X(k−1) + Ḡ U(k−1)` using the augmented-matrix
//! identity
//!
//! ```text
//! exp( [A B; 0 0]·Ts ) = [Φ Ḡ; 0 I]
//! ```
//!
//! which computes `Φ = e^{A·Ts}` and `Ḡ = ∫₀^Ts e^{As} B ds` in one call to
//! the Padé exponential. The paper applies this to both `B` and `F`
//! (eq. 24–25); pass `hstack(B, F)` and split the result, or call
//! [`zoh`] twice.

use idc_linalg::{expm::expm, Matrix};

use crate::statespace::CostStateSpace;

/// A discretized linear system `X(k) = Φ X(k−1) + Ḡ U(k−1) + Γ V(k−1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteCostModel {
    /// State transition `Φ = e^{A·Ts}` (paper eq. 23).
    pub phi: Matrix,
    /// Input matrix `Ḡ = ∫ e^{As} B ds` (paper eq. 24).
    pub g: Matrix,
    /// Exogenous matrix `Γ = ∫ e^{As} F ds` (paper eq. 25).
    pub gamma: Matrix,
    /// Sampling period in the same time unit as `A` (we use hours so that
    /// cost integrates in $/MWh · MW · h).
    pub ts: f64,
}

/// Discretizes `(A, B)` with a zero-order hold over `ts`.
///
/// # Errors
///
/// Propagates [`idc_linalg::Error`] when shapes disagree
/// (`a` not square / row mismatch) or the exponential fails.
pub fn zoh(a: &Matrix, b: &Matrix, ts: f64) -> idc_linalg::Result<(Matrix, Matrix)> {
    if !a.is_square() {
        return Err(idc_linalg::Error::NotSquare { shape: a.shape() });
    }
    if b.rows() != a.rows() {
        return Err(idc_linalg::Error::DimensionMismatch {
            op: "zoh",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let n = a.rows();
    let m = b.cols();
    let mut aug = Matrix::zeros(n + m, n + m);
    aug.set_block(0, 0, &a.scale(ts));
    aug.set_block(0, n, &b.scale(ts));
    let e = expm(&aug)?;
    Ok((e.block(0, 0, n, n), e.block(0, n, n, m)))
}

/// Discretizes the full cost model (paper eq. 21–25).
///
/// # Errors
///
/// Propagates linear-algebra failures from [`zoh`].
pub fn discretize(ss: &CostStateSpace, ts: f64) -> idc_linalg::Result<DiscreteCostModel> {
    let bf = Matrix::hstack(ss.b(), ss.f())?;
    let (phi, gbf) = zoh(ss.a(), &bf, ts)?;
    let nb = ss.b().cols();
    let g = gbf.block(0, 0, gbf.rows(), nb);
    let gamma = gbf.block(0, nb, gbf.rows(), ss.f().cols());
    Ok(DiscreteCostModel { phi, g, gamma, ts })
}

impl DiscreteCostModel {
    /// Advances the state one sampling period.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the model dimensions.
    pub fn step(&self, x: &[f64], u: &[f64], v: &[f64]) -> Vec<f64> {
        let px = self.phi.mul_vec(x).expect("state dim");
        let gu = self.g.mul_vec(u).expect("input dim");
        let gv = self.gamma.mul_vec(v).expect("exogenous dim");
        px.iter()
            .zip(&gu)
            .zip(&gv)
            .map(|((a, b), c)| a + b + c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoh_of_scalar_integrator() {
        // ẋ = u → Φ = 1, Ḡ = Ts.
        let a = Matrix::zeros(1, 1);
        let b = Matrix::identity(1);
        let (phi, g) = zoh(&a, &b, 0.5).unwrap();
        assert!((phi[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((g[(0, 0)] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn zoh_of_stable_scalar_matches_closed_form() {
        // ẋ = −2x + u → Φ = e^{−2Ts}, Ḡ = (1 − e^{−2Ts})/2.
        let a = Matrix::diag(&[-2.0]);
        let b = Matrix::identity(1);
        let ts = 0.3;
        let (phi, g) = zoh(&a, &b, ts).unwrap();
        assert!((phi[(0, 0)] - (-2.0 * ts).exp()).abs() < 1e-12);
        assert!((g[(0, 0)] - (1.0 - (-2.0 * ts).exp()) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zoh_validates_shapes() {
        assert!(zoh(&Matrix::zeros(2, 3), &Matrix::zeros(2, 1), 1.0).is_err());
        assert!(zoh(&Matrix::zeros(2, 2), &Matrix::zeros(3, 1), 1.0).is_err());
    }

    #[test]
    fn paper_model_discretization_is_exact() {
        // A is nilpotent (A² = 0): Φ = I + A·Ts, Ḡ = B·Ts + A·B·Ts²/2.
        let ss = CostStateSpace::new(
            &[43.26, 30.26, 19.06],
            &[67.5e-6, 108.0e-6, 77.14e-6],
            &[150e-6, 150e-6, 150e-6],
            5,
        )
        .unwrap();
        let ts = 1.0 / 120.0; // 30 s in hours
        let d = discretize(&ss, ts).unwrap();
        let mut phi_expected = Matrix::identity(4);
        phi_expected.scaled_add_assign(ts, ss.a()).unwrap();
        assert!((&d.phi - &phi_expected).unwrap().norm_max() < 1e-12);

        let mut g_expected = ss.b().scale(ts);
        let ab = ss.a().mul_mat(ss.b()).unwrap();
        g_expected.scaled_add_assign(ts * ts / 2.0, &ab).unwrap();
        let rel = (&d.g - &g_expected).unwrap().norm_max() / g_expected.norm_max();
        assert!(rel < 1e-9, "rel err {rel}");
    }

    #[test]
    fn discrete_step_accumulates_cost_and_energy() {
        // Single IDC, single portal: prices 50 $/MWh, b1 = 1e-4 MW/(req/s),
        // b0 = 1.5e-4 MW/server.
        let ss = CostStateSpace::new(&[50.0], &[1e-4], &[1.5e-4], 1).unwrap();
        let d = discretize(&ss, 0.1).unwrap();
        // Start at zero state; 1000 req/s on 10 servers.
        let x1 = d.step(&[0.0, 0.0], &[1000.0], &[10.0]);
        // Energy after one step: P·Ts = (0.1 + 0.0015)·0.1 = 0.01015 MWh·h⁻¹…
        let p = 1e-4 * 1000.0 + 1.5e-4 * 10.0;
        assert!((x1[1] - p * 0.1).abs() < 1e-12);
        // Cost grows quadratically (the paper's double-integrator):
        // C̄(Ts) = Pr·P·Ts²/2.
        assert!((x1[0] - 50.0 * p * 0.01 / 2.0).abs() < 1e-9);
        // A second step keeps integrating.
        let x2 = d.step(&x1, &[1000.0], &[10.0]);
        assert!(x2[0] > x1[0] && x2[1] > x1[1]);
    }
}
