//! The condensed constrained MPC controller (paper Sec. IV-C, eq. 37–45).
//!
//! Each sampling period the controller solves, in the stacked input change
//! `ΔU(k) ∈ ℝ^{NC·β₂}`, the constrained least-squares problem of paper
//! eq. 42:
//!
//! * **tracking term** — per-IDC power over the prediction horizon β₁ must
//!   follow the control reference (the LP optimum of eq. 46, clamped to the
//!   power budget for peak shaving, Sec. IV-D);
//! * **smoothing term** — per-IDC power *change* per control step is
//!   penalized (the paper's `R`-weighted input penalty: "the power demand
//!   can be smoothed by … penalizing inputs U(k)");
//! * **constraints** — workload conservation per portal per step (eq. 45),
//!   latency/capacity per IDC per step (eq. 43), and non-negativity of the
//!   allocated workload (eq. 44).
//!
//! Within one MPC solve the server counts `m_j` are frozen at their
//! slow-loop values — the two-time-scale separation of Sec. IV-B.
//!
//! Units: workload in req/s, power in MW, so the weights trade off MW² of
//! tracking error against MW² of per-step demand change — exactly the
//! paper's `Q` vs `R` trade-off.

use std::time::Instant;

use idc_linalg::par::default_threads;
use idc_linalg::Matrix;
use idc_obs::Span;
use idc_opt::banded_qp::BandedQpWorkspace;
use idc_opt::lsq::ConstrainedLeastSquares;
use idc_opt::qp::{QpWorkspace, QuadraticProgram};
use idc_opt::{Error, Result, SolveStats};
use idc_shard::shift_horizon;

use crate::riccati::{self, RiccatiSkeleton};
use crate::sharded::{ShardedSkeleton, ShardedStep, WarmRejection};

/// Which QP backend solves the condensed problem.
///
/// All backends minimize the same strictly convex objective over the same
/// constraints and agree on the unique minimizer to solver tolerance; they
/// differ only in how the linear algebra is organised.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverBackend {
    /// The original dense path: condense the least squares into a full
    /// `nv × nv` Hessian, solve working-set systems by dense factorization.
    /// Fastest at small fleet sizes.
    #[default]
    CondensedDense,
    /// The block-banded path of [`crate::riccati`]: a cumulative-input
    /// change of variables makes the Hessian block-tridiagonal and every
    /// constraint row stage-local, so KKT steps cost `O(β₂·(NC)²)` via a
    /// Riccati-style block-Cholesky recursion and the working-set Schur
    /// complement is updated incrementally across active-set changes.
    /// Orders of magnitude faster once `N·C·β₂` reaches a few hundred.
    BandedRiccati,
    /// The regional decomposition of [`crate::sharded`]: the fleet is
    /// partitioned into contiguous IDC shards, each solving its own
    /// warm-started banded QP over only its local variables, coordinated
    /// by exchange ADMM on cross-region workload conservation (and
    /// projected dual ascent on the optional global peak-power budget).
    /// Subproblem cost drops quadratically with the shard count, so this
    /// is the only backend that scales past a few thousand variables.
    Sharded {
        /// Number of regional shards (clamped to `[1, N]`).
        shards: usize,
        /// Consensus penalty relative to the objective's mean curvature.
        rho: f64,
        /// Coordinator round budget per step.
        max_outer: usize,
        /// Relative residual tolerance of the outer stopping rule.
        tol: f64,
    },
}

impl SolverBackend {
    /// The sharded backend with default coordination tuning: the penalty
    /// matched to the objective's own curvature, a round budget sized for
    /// cold starts, and a residual tolerance far below the cross-backend
    /// equivalence gate.
    pub const fn sharded(shards: usize) -> Self {
        SolverBackend::Sharded {
            shards,
            rho: 1.0,
            max_outer: 400,
            // Workload-relative residual tolerance: the conservation gap
            // is repaired exactly after the loop, so its plan-cost effect
            // is quadratically small — a 1e-6 residual measures as a
            // ~1e-9 relative cost difference against the monolithic
            // backend, three orders below the 1e-6 equivalence gate.
            // Each decade of extra tightness costs ~50 consensus rounds
            // per step on the transport-fiber tail, and below ~1e-8 the
            // inner solver's noise floor makes the residual
            // uncertifiable.
            tol: 1e-6,
        }
    }
}

/// Tuning of the MPC controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcConfig {
    /// Prediction horizon β₁ (steps).
    pub prediction_horizon: usize,
    /// Control horizon β₂ ≤ β₁ (steps).
    pub control_horizon: usize,
    /// Tracking weight `Q` (per MW² of reference deviation).
    pub tracking_weight: f64,
    /// Smoothing weight `R` (per MW² of per-step power change). Larger
    /// values smooth power demand harder at the expense of slower tracking.
    pub smoothing_weight: f64,
    /// Tiny ridge on individual `ΔU` entries keeping the Hessian strictly
    /// positive definite (portal-level reshuffles that do not move any
    /// IDC's total are otherwise free).
    pub input_ridge: f64,
    /// QP backend selection.
    pub backend: SolverBackend,
    /// Optional global peak-power budget (MW) enforced by the sharded
    /// backend via projected dual ascent on the per-stage fleet total
    /// (paper eq. 31 at fleet scope). `None` (the default) prices no cap,
    /// which keeps the sharded backend exactly equivalent to the
    /// monolithic ones; the monolithic backends ignore this field (they
    /// shave peaks through the reference clamp instead).
    pub sharded_peak_budget_mw: Option<f64>,
}

impl Default for MpcConfig {
    fn default() -> Self {
        MpcConfig {
            prediction_horizon: 5,
            control_horizon: 3,
            tracking_weight: 1.0,
            smoothing_weight: 4.0,
            input_ridge: 1e-9,
            backend: SolverBackend::default(),
            sharded_peak_budget_mw: None,
        }
    }
}

/// Cumulative wall-clock nanoseconds the controller spent per internal
/// phase, accumulated across [`MpcController::plan`] calls.
///
/// The split mirrors where a receding-horizon step can spend time:
/// structure rebuilds (`refresh`) and Hessian/Schur factorization
/// (`factor`) happen only when the problem structure changes, while
/// per-step gradient/rhs assembly plus warm-start bookkeeping (`condense`)
/// and the active-set iteration itself (`solve`) recur every step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanTimings {
    /// Structure-cache rebuilds: least-squares lowering or banded assembly,
    /// excluding factorization.
    pub refresh_ns: u64,
    /// `prepare()` — Hessian factorization and the all-rows Schur
    /// complement precompute.
    pub factor_ns: u64,
    /// Per-step condensing: gradient and constraint-rhs refresh, active-set
    /// seed re-indexing, and the warm-point shift/repair.
    pub condense_ns: u64,
    /// Active-set QP solves (warm-started and cold).
    pub solve_ns: u64,
}

impl PlanTimings {
    /// Total accounted time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.refresh_ns + self.factor_ns + self.condense_ns + self.solve_ns
    }
}

/// One sampling period's inputs to the controller.
///
/// This is a passive data structure assembled fresh each step by the
/// simulation loop; all lengths are validated by
/// [`MpcController::plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct MpcProblem {
    /// Per-IDC marginal power `b₁` in MW per (req/s).
    pub b1_mw: Vec<f64>,
    /// Per-IDC idle power `b₀` in MW per server.
    pub b0_mw: Vec<f64>,
    /// Servers currently ON per IDC (frozen over the horizon).
    pub servers_on: Vec<u64>,
    /// Per-IDC workload capacity `φ_j = µ_j(m_j − 1/(µ_j D_j))` in req/s
    /// given the current server counts (paper eq. 30).
    pub capacities: Vec<f64>,
    /// Previous input `U(k−1)`, IDC-major flat `λij` (length `N·C`).
    pub prev_input: Vec<f64>,
    /// Forecast portal workloads for each control step `t = 1..β₂`
    /// (`workload_forecast[t][i] = L̂ᵢ(k+t)`).
    pub workload_forecast: Vec<Vec<f64>>,
    /// Power reference per prediction step `s = 1..β₁`
    /// (`power_reference_mw[s][j]`), already budget-clamped for peak
    /// shaving.
    pub power_reference_mw: Vec<Vec<f64>>,
    /// Per-IDC multiplier on the tracking weight (length `N`). The peak-
    /// shaving policy weights budget-clamped IDCs heavily so their power
    /// is pinned at the budget while unclamped IDCs absorb the displaced
    /// load (paper Fig. 6: Wisconsin "converges to a value between its
    /// power budget and the optimal-policy value").
    pub tracking_multiplier: Vec<f64>,
    /// Optional per-IDC battery/UPS actuator. When present the stage
    /// vector grows from `N·C` workload changes to `N·C + 2N` — charge and
    /// discharge rate *changes* join the decision variables and grid draw
    /// becomes IT load + charge − discharge. `None` keeps the problem (and
    /// every solver path) exactly as before.
    pub storage: Option<StorageProblem>,
}

/// Per-IDC battery/UPS data for one sampling period.
///
/// All vectors hold one entry per IDC. Rates are in MW, energies in MWh;
/// internally the controller rescales the rate variables by `1/b₁_j` into
/// req/s equivalents so the enlarged Hessian keeps the workload variables'
/// conditioning — callers never see the scaled units.
///
/// The charge/discharge decision variables are rate *changes* against
/// `prev_charge_mw`/`prev_discharge_mw`, mirroring the `ΔU` formulation —
/// in the banded backend's cumulative y-space that keeps every rate bound
/// stage-local and the Hessian block-tridiagonal. State of charge evolves
/// as `soc' = soc + dt·(η_c·c − d/η_d)` and is constrained to
/// `[0, capacity]` at the end of every control stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageProblem {
    /// Usable energy capacity per IDC (MWh). Zero disables the unit.
    pub capacity_mwh: Vec<f64>,
    /// Maximum charge rate per IDC (MW). Zero models a battery outage
    /// (forced zero-rate step) without a structure rebuild — rate caps
    /// enter the right-hand sides only.
    pub max_charge_mw: Vec<f64>,
    /// Maximum discharge rate per IDC (MW).
    pub max_discharge_mw: Vec<f64>,
    /// Charge efficiency `η_c ∈ (0, 1]` (grid MW → stored MW).
    pub charge_efficiency: Vec<f64>,
    /// Discharge efficiency `η_d ∈ (0, 1]` (stored MW → grid MW).
    pub discharge_efficiency: Vec<f64>,
    /// State of charge at the start of the period (MWh).
    pub soc_mwh: Vec<f64>,
    /// Charge rate applied in the previous period (MW).
    pub prev_charge_mw: Vec<f64>,
    /// Discharge rate applied in the previous period (MW).
    pub prev_discharge_mw: Vec<f64>,
    /// Sampling period (hours); converts rates to energy per stage.
    pub dt_hours: f64,
}

impl MpcProblem {
    /// Uniform tracking multipliers (no IDC preferred).
    pub fn uniform_tracking(num_idcs: usize) -> Vec<f64> {
        vec![1.0; num_idcs]
    }
}

impl MpcProblem {
    /// Number of IDCs `N`.
    pub fn num_idcs(&self) -> usize {
        self.b1_mw.len()
    }

    /// Number of portals `C` (inferred from the input length).
    pub fn num_portals(&self) -> usize {
        if self.b1_mw.is_empty() {
            0
        } else {
            self.prev_input.len() / self.b1_mw.len()
        }
    }

    /// Current per-IDC workload totals `λ_j(k−1)`.
    pub fn current_idc_workloads(&self) -> Vec<f64> {
        let (n, c) = (self.num_idcs(), self.num_portals());
        (0..n)
            .map(|j| self.prev_input[j * c..(j + 1) * c].iter().sum())
            .collect()
    }

    /// Current per-IDC power in MW (IT draw only — see
    /// [`current_grid_power_mw`](Self::current_grid_power_mw) for the
    /// storage-adjusted draw).
    pub fn current_power_mw(&self) -> Vec<f64> {
        self.current_idc_workloads()
            .iter()
            .enumerate()
            .map(|(j, &l)| self.b1_mw[j] * l + self.b0_mw[j] * self.servers_on[j] as f64)
            .collect()
    }

    /// Current per-IDC *grid* power in MW: IT draw plus the previous
    /// period's net battery rate (charge − discharge). Equal to
    /// [`current_power_mw`](Self::current_power_mw) without storage.
    pub fn current_grid_power_mw(&self) -> Vec<f64> {
        let mut p = self.current_power_mw();
        if let Some(st) = &self.storage {
            for (j, pj) in p.iter_mut().enumerate() {
                *pj += st.prev_charge_mw[j] - st.prev_discharge_mw[j];
            }
        }
        p
    }

    /// Decision-variable block size per control stage: `N·C` workload
    /// changes, plus `2N` rate changes when storage is attached.
    pub fn block_size(&self) -> usize {
        let nc = self.num_idcs() * self.num_portals();
        if self.storage.is_some() {
            nc + 2 * self.num_idcs()
        } else {
            nc
        }
    }
}

/// The QP skeleton shared by every step with the same problem structure.
///
/// The tracking/smoothing matrix `A`, the weights `Q`, and the constraint
/// rows depend only on the dimensions `(N, C)`, the per-IDC marginal power
/// `b₁`, and the tracking multipliers — none of which change while the
/// fleet operates in one regime. Rebuilding them every sampling period
/// (and re-forming `H = 2(AᵀQA + R)`) dominated the solve time, so the
/// controller caches the lowered [`QuadraticProgram`] and per step only
/// refreshes the gradient and the constraint right-hand sides.
#[derive(Debug, Clone)]
struct StructureCache {
    n: usize,
    c: usize,
    b1_mw: Vec<f64>,
    tracking_multiplier: Vec<f64>,
    /// Storage structure fingerprint: the efficiencies are the only
    /// storage parameters that enter constraint *coefficients* (capacity,
    /// rate caps, SoC and previous rates all live in the right-hand
    /// sides), so a battery outage — zeroed rate caps — reuses the
    /// skeleton. `None` when the problem carries no storage.
    storage_key: Option<(Vec<f64>, Vec<f64>)>,
    skeleton: Skeleton,
}

/// The backend-specific solver skeleton held by the structure cache; per
/// step only the gradient and the constraint right-hand sides are rewritten
/// in place.
#[derive(Debug, Clone)]
enum Skeleton {
    /// The weighted least-squares skeleton (per-step gradient refresh via
    /// [`ConstrainedLeastSquares::gradient_into`]) and its lowered QP.
    Dense {
        lsq: ConstrainedLeastSquares,
        qp: QuadraticProgram,
    },
    /// The y-space block-banded QP of [`crate::riccati`].
    Banded(RiccatiSkeleton),
    /// The regional decomposition of [`crate::sharded`]: per-shard banded
    /// QPs plus the consensus coordinator state.
    Sharded(ShardedSkeleton),
}

/// The previous step's solution, kept to warm-start the next solve.
#[derive(Debug, Clone)]
struct WarmState {
    delta_u: Vec<f64>,
    active_set: Vec<usize>,
    /// Outer multipliers of the sharded backend (consensus duals then peak
    /// duals); empty for the monolithic backends.
    multipliers: Vec<f64>,
}

/// The warm-start state as plain exportable data: the stacked input
/// changes `ΔU` of the previous solve, the indices of its active
/// constraint set, and (sharded backend only) the outer coordination
/// multipliers. See [`MpcController::warm_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStateData {
    /// The previous solve's stacked `ΔU` (length `n·c·β₂`).
    pub delta_u: Vec<f64>,
    /// Indices of the constraints active at the previous solution.
    pub active_set: Vec<usize>,
    /// The sharded backend's outer multipliers (consensus conservation
    /// duals followed by peak-budget duals), empty for the monolithic
    /// backends. Multiplier warm starts shape the outer iteration count,
    /// so byte-identical checkpoint/restore must carry them.
    pub multipliers: Vec<f64>,
}

/// The receding-horizon controller.
///
/// Stateful across steps for performance only: it caches the condensed QP
/// skeleton (rebuilt when the problem structure changes) and warm-starts
/// the active-set solver from the previous step's shifted `ΔU` and active
/// set, falling back to a cold solve whenever the warm point is infeasible
/// for the new step. The *plan itself* is a pure function of the
/// [`MpcProblem`] — the QP is strictly convex, so warm and cold solves
/// agree on the unique minimizer — which keeps simulations deterministic.
#[derive(Debug, Clone)]
pub struct MpcController {
    config: MpcConfig,
    cache: Option<StructureCache>,
    warm: Option<WarmState>,
    ws: QpWorkspace,
    bws: BandedQpWorkspace,
    /// Scratch: stacked least-squares rhs `b` (tracking + smoothing rows).
    rhs: Vec<f64>,
    /// Scratch: QP gradient `g = −2AᵀQb`.
    grad: Vec<f64>,
    /// Scratch: equality / inequality right-hand sides, warm-start point.
    eq_rhs: Vec<f64>,
    in_rhs: Vec<f64>,
    warm_x: Vec<f64>,
    /// Scratch: the warm point in the banded backend's cumulative y-space.
    warm_y: Vec<f64>,
    /// Scratch for the warm-point equality repair: running per-entry and
    /// per-IDC cumulative allocations, and the distribution weights.
    repair_cum_entry: Vec<f64>,
    repair_cum_idc: Vec<f64>,
    repair_weights: Vec<f64>,
    /// Scratch: the previous active set re-indexed for the shifted horizon.
    seed: Vec<usize>,
    warm_solves: usize,
    cold_solves: usize,
    timings: PlanTimings,
    solve_stats: SolveStats,
    /// Fault injection: drop the next solve's second coordinator round.
    stall_next: bool,
}

impl MpcController {
    /// Creates a controller with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if the horizons are zero, `β₂ > β₁`, or a weight is negative.
    pub fn new(config: MpcConfig) -> Self {
        assert!(config.prediction_horizon > 0, "β₁ must be positive");
        assert!(
            config.control_horizon > 0 && config.control_horizon <= config.prediction_horizon,
            "horizons must satisfy 0 < β₂ ≤ β₁"
        );
        assert!(
            config.tracking_weight >= 0.0
                && config.smoothing_weight >= 0.0
                && config.input_ridge > 0.0,
            "weights must be non-negative and the ridge positive"
        );
        if let SolverBackend::Sharded {
            shards,
            rho,
            max_outer,
            tol,
        } = config.backend
        {
            assert!(shards > 0, "at least one shard required");
            assert!(
                rho > 0.0 && tol > 0.0,
                "sharded penalty and tolerance must be positive"
            );
            assert!(max_outer > 0, "at least one coordinator round required");
        }
        MpcController {
            config,
            cache: None,
            warm: None,
            ws: QpWorkspace::new(),
            bws: BandedQpWorkspace::new(),
            rhs: Vec::new(),
            grad: Vec::new(),
            eq_rhs: Vec::new(),
            in_rhs: Vec::new(),
            warm_x: Vec::new(),
            warm_y: Vec::new(),
            repair_cum_entry: Vec::new(),
            repair_cum_idc: Vec::new(),
            repair_weights: Vec::new(),
            seed: Vec::new(),
            warm_solves: 0,
            cold_solves: 0,
            timings: PlanTimings::default(),
            solve_stats: SolveStats::default(),
            stall_next: false,
        }
    }

    /// The controller's tuning.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Drops the cached QP skeleton and warm-start state. The next
    /// [`plan`](Self::plan) call solves cold from scratch.
    pub fn reset(&mut self) {
        self.cache = None;
        self.warm = None;
    }

    /// Number of plans solved from the previous step's warm start.
    pub fn warm_solves(&self) -> usize {
        self.warm_solves
    }

    /// Number of plans that required a cold solve (first step, structure
    /// change, or infeasible warm point).
    pub fn cold_solves(&self) -> usize {
        self.cold_solves
    }

    /// Exports the warm-start state — the previous step's `ΔU` and active
    /// set — as plain data for checkpointing, or `None` before the first
    /// solve (or after a [`reset`](Self::reset)).
    ///
    /// The warm start is behaviourally significant at solver tolerance
    /// (warm and cold solves agree only to the QP's convergence tolerance),
    /// so byte-identical checkpoint/restore of a closed loop must carry it.
    /// The structure cache is *not* part of the export: it is a pure
    /// function of the next [`MpcProblem`] and rebuilds deterministically.
    pub fn warm_state(&self) -> Option<WarmStateData> {
        self.warm.as_ref().map(|w| WarmStateData {
            delta_u: w.delta_u.clone(),
            active_set: w.active_set.clone(),
            multipliers: w.multipliers.clone(),
        })
    }

    /// Restores warm-start state previously exported with
    /// [`warm_state`](Self::warm_state); `None` clears it (the next solve
    /// is cold, as after a fresh construction).
    pub fn restore_warm_state(&mut self, state: Option<WarmStateData>) {
        self.warm = state.map(|w| WarmState {
            delta_u: w.delta_u,
            active_set: w.active_set,
            multipliers: w.multipliers,
        });
    }

    /// The `(warm, cold)` solve counters, for checkpointing alongside
    /// [`warm_state`](Self::warm_state).
    pub fn solve_counters(&self) -> (usize, usize) {
        (self.warm_solves, self.cold_solves)
    }

    /// Restores the `(warm, cold)` solve counters.
    pub fn restore_solve_counters(&mut self, warm: usize, cold: usize) {
        self.warm_solves = warm;
        self.cold_solves = cold;
    }

    /// Per-phase wall-clock time accumulated across [`plan`](Self::plan)
    /// calls since construction or the last [`reset_timings`](Self::reset_timings).
    pub fn timings(&self) -> PlanTimings {
        self.timings
    }

    /// Zeroes the per-phase timing counters.
    pub fn reset_timings(&mut self) {
        self.timings = PlanTimings::default();
    }

    /// Cumulative solver introspection counters across [`plan`](Self::plan)
    /// calls since construction or the last
    /// [`reset_solve_stats`](Self::reset_solve_stats).
    ///
    /// Like [`timings`](Self::timings) these are observability-only: they
    /// are *not* part of the checkpointed controller state
    /// ([`warm_state`](Self::warm_state) /
    /// [`solve_counters`](Self::solve_counters)), so restored runs resume
    /// with whatever was accumulated locally.
    pub fn solve_stats(&self) -> SolveStats {
        self.solve_stats
    }

    /// Zeroes the solver introspection counters.
    pub fn reset_solve_stats(&mut self) {
        self.solve_stats = SolveStats::default();
    }

    /// Arms both backends' workspaces so the next solve's incremental
    /// working-set factor build is deterministically poisoned, forcing the
    /// solver's stability-rebuild path. Fault-injection plumbing for the
    /// testkit's forced-refactorization fault kind; the resulting plan is
    /// unchanged (the rebuild recovers exactly), only
    /// [`SolveStats::refactorizations`] moves.
    pub fn force_refactor_next(&mut self) {
        self.ws.force_refactor_next();
        self.bws.force_refactor_next();
    }

    /// Drops one coordinator round of the next sharded solve: the shards
    /// re-solve against stale targets and that round's dual update plus
    /// residual check are lost, as if the coordinator's exchange stalled in
    /// flight. The outer loop must converge anyway (the following round
    /// resumes from unchanged multipliers), so the resulting plan is
    /// unchanged to solver tolerance — only
    /// [`SolveStats::outer_iterations`] moves. Fault-injection plumbing for
    /// the testkit's coordinator-stall fault kind; a no-op for the
    /// monolithic backends.
    pub fn force_coordinator_stall_next(&mut self) {
        self.stall_next = true;
    }

    /// Solves one receding-horizon step and returns the plan.
    ///
    /// Reuses the cached QP skeleton when the problem structure matches the
    /// previous call, and warm-starts the active-set solver from the
    /// previous step's shifted solution; both are pure accelerations — the
    /// plan is identical (up to solver tolerance) to a cold solve.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on inconsistent problem data.
    /// * [`Error::Infeasible`] when the forecast workload cannot be served
    ///   within the capacity constraints (the sleep loop must turn on more
    ///   servers first).
    /// * [`Error::IterationLimit`] / [`Error::Numerical`] from the QP.
    pub fn plan(&mut self, problem: &MpcProblem) -> Result<MpcPlan> {
        let _plan_span = Span::enter_cat("mpc.plan", "control");
        let n = problem.num_idcs();
        let c = problem.num_portals();
        self.validate(problem, n, c)?;

        let beta1 = self.config.prediction_horizon;
        let beta2 = self.config.control_horizon;
        let nc = n * c;
        let nb = problem.block_size();
        let lambda0 = problem.current_idc_workloads();

        self.refresh_structure(problem, n, c)?;

        // ---- Per-step data: the tracking rhs (smoothing rows stay zero),
        // lowered to the QP gradient, plus the constraint right-hand
        // sides — written into the cached QP in place. ----
        let condense_start = Instant::now();
        let rows = beta1 * n + beta2 * n;
        self.rhs.clear();
        self.rhs.resize(rows, 0.0);
        for s in 0..beta1 {
            for j in 0..n {
                let mut current_p =
                    problem.b1_mw[j] * lambda0[j] + problem.b0_mw[j] * problem.servers_on[j] as f64;
                if let Some(st) = &problem.storage {
                    // Grid draw carries the previous net battery rate; the
                    // rate *changes* are decision variables.
                    current_p += st.prev_charge_mw[j] - st.prev_discharge_mw[j];
                }
                self.rhs[s * n + j] = problem.power_reference_mw[s][j] - current_p;
            }
        }
        self.eq_rhs.clear();
        for forecast in &problem.workload_forecast {
            for i in 0..c {
                let prev: f64 = (0..n).map(|j| problem.prev_input[j * c + i]).sum();
                self.eq_rhs.push(forecast[i] - prev);
            }
        }
        self.in_rhs.clear();
        for _t in 0..beta2 {
            for j in 0..n {
                self.in_rhs.push(problem.capacities[j] - lambda0[j]);
            }
        }
        for _t in 0..beta2 {
            for idx in 0..nc {
                self.in_rhs.push(problem.prev_input[idx]);
            }
        }
        if let Some(st) = &problem.storage {
            // Storage families, each t-major × IDC, in req/s-equivalent
            // units (rates divided by b₁_j to match the workload
            // variables' scale): charge upper/lower, discharge
            // upper/lower, then SoC upper/lower (rows divided by dt·b₁_j).
            for _t in 0..beta2 {
                for j in 0..n {
                    self.in_rhs
                        .push((st.max_charge_mw[j] - st.prev_charge_mw[j]) / problem.b1_mw[j]);
                }
            }
            for _t in 0..beta2 {
                for j in 0..n {
                    self.in_rhs.push(st.prev_charge_mw[j] / problem.b1_mw[j]);
                }
            }
            for _t in 0..beta2 {
                for j in 0..n {
                    self.in_rhs
                        .push((st.max_discharge_mw[j] - st.prev_discharge_mw[j]) / problem.b1_mw[j]);
                }
            }
            for _t in 0..beta2 {
                for j in 0..n {
                    self.in_rhs.push(st.prev_discharge_mw[j] / problem.b1_mw[j]);
                }
            }
            for t in 0..beta2 {
                for j in 0..n {
                    let drift = soc_drift(st, j, t);
                    self.in_rhs.push(
                        (st.capacity_mwh[j] - st.soc_mwh[j] - drift)
                            / (st.dt_hours * problem.b1_mw[j]),
                    );
                }
            }
            for t in 0..beta2 {
                for j in 0..n {
                    let drift = soc_drift(st, j, t);
                    self.in_rhs
                        .push((st.soc_mwh[j] + drift) / (st.dt_hours * problem.b1_mw[j]));
                }
            }
        }
        {
            let cache = self.cache.as_mut().expect("refreshed above");
            match &mut cache.skeleton {
                Skeleton::Dense { lsq, qp } => {
                    lsq.gradient_into(&self.rhs, &mut self.grad)?;
                    qp.set_gradient(&self.grad)?;
                    qp.set_equality_rhs(&self.eq_rhs)?;
                    qp.set_inequality_rhs(&self.in_rhs)?;
                }
                Skeleton::Banded(skel) => {
                    skel.gradient_into(&self.rhs, &mut self.grad);
                    let qp = skel.qp_mut();
                    qp.set_gradient(&self.grad)?;
                    qp.set_equality_rhs(&self.eq_rhs)?;
                    qp.set_inequality_rhs(&self.in_rhs)?;
                }
                // No monolithic QP: the sharded solver scatters the rhs
                // buffers to its cells inside `ShardedSkeleton::solve`.
                Skeleton::Sharded(_) => {}
            }
        }

        // ---- Warm start, shared by every backend: shift the previous
        // active set and ΔU for the receding horizon, then repair the
        // shifted point back to exact feasibility. ----
        let has_base = self.shift_and_repair_warm(problem, &lambda0, n, c);

        if matches!(
            self.cache.as_ref().expect("refreshed above").skeleton,
            Skeleton::Sharded(_)
        ) {
            return self.plan_sharded(problem, &lambda0, n, c, has_base, condense_start);
        }

        // ---- Solve: warm-started from the repaired point (skipping the
        // phase-1 LP); by the full cold path as a last resort. ----
        let mut warm_started = false;
        let mut warm_failed = false;
        let mut warm_rejection = None;
        let cache = self.cache.as_mut().expect("refreshed above");
        let mut solution = None;
        {
            self.timings.condense_ns += condense_start.elapsed().as_nanos() as u64;
            {
                let solve_start = Instant::now();
                let span = Span::enter_cat("mpc.solve.warm", "solver");
                let warm_res = match &mut cache.skeleton {
                    Skeleton::Dense { qp, .. } => {
                        qp.warm_start(&self.warm_x, &self.seed, &mut self.ws)
                    }
                    Skeleton::Banded(skel) => {
                        // The banded backend optimizes cumulative changes;
                        // convert the repaired warm point at the boundary.
                        riccati::to_cumulative(nb, &self.warm_x, &mut self.warm_y);
                        skel.qp_mut()
                            .warm_start(&self.warm_y, &self.seed, &mut self.bws)
                    }
                    Skeleton::Sharded(_) => unreachable!("sharded solves returned above"),
                };
                drop(span);
                self.timings.solve_ns += solve_start.elapsed().as_nanos() as u64;
                match warm_res {
                    Ok(sol) => {
                        warm_started = has_base;
                        solution = Some(sol);
                    }
                    Err(_) => {
                        warm_failed = true;
                        // Diagnose *why* the repaired point was rejected so
                        // the policy layer can stream an anomaly record —
                        // a warm step must never pay a cold solve silently.
                        warm_rejection = Some(warm_rejection_breakdown(
                            &self.warm_x,
                            &self.eq_rhs,
                            &self.in_rhs,
                            n,
                            c,
                            beta2,
                            problem.storage.as_ref(),
                        ));
                    }
                }
            }
        }
        let is_banded = matches!(cache.skeleton, Skeleton::Banded(_));
        let solution = match solution {
            Some(sol) => sol,
            None => {
                let solve_start = Instant::now();
                let span = Span::enter_cat("mpc.solve.cold", "solver");
                let sol = match &mut cache.skeleton {
                    Skeleton::Dense { qp, .. } => qp.solve_with(&mut self.ws),
                    Skeleton::Banded(skel) => skel.qp_mut().solve_with(&mut self.bws),
                    Skeleton::Sharded(_) => unreachable!("sharded solves returned above"),
                };
                drop(span);
                self.timings.solve_ns += solve_start.elapsed().as_nanos() as u64;
                sol?
            }
        };
        if warm_started {
            self.warm_solves += 1;
        } else {
            self.cold_solves += 1;
        }
        let mut step_stats = *solution.stats();
        if warm_failed {
            step_stats.cold_fallbacks = 1;
        }
        self.solve_stats.merge(&step_stats);
        let iterations = solution.iterations();
        let active_set = solution.active_set().to_vec();
        let mut delta_u = solution.into_x();
        if is_banded {
            // Back from cumulative y-space to the stacked input changes.
            riccati::to_deltas(nb, &mut delta_u);
        }
        self.warm = Some(WarmState {
            delta_u: delta_u.clone(),
            active_set,
            multipliers: Vec::new(),
        });

        Ok(finish_plan(
            problem,
            &lambda0,
            beta1,
            beta2,
            n,
            c,
            delta_u,
            iterations,
            warm_started,
            0,
            0,
            0.0,
            warm_rejection.into_iter().collect(),
        ))
    }

    /// The sharded solve path of [`plan`](Self::plan): resume the outer
    /// multipliers (horizon-shifted), run the consensus loop over the
    /// per-shard warm solves, and persist both warm-start levels.
    fn plan_sharded(
        &mut self,
        problem: &MpcProblem,
        lambda0: &[f64],
        n: usize,
        c: usize,
        has_base: bool,
        condense_start: Instant,
    ) -> Result<MpcPlan> {
        let beta1 = self.config.prediction_horizon;
        let beta2 = self.config.control_horizon;
        let nc = n * c;
        let drop_round = std::mem::take(&mut self.stall_next);
        let threads = default_threads();
        // The relative stopping rule is anchored to the forecast magnitude:
        // conservation rows and portal sums live in req/s of workload.
        let scale = problem
            .workload_forecast
            .iter()
            .flatten()
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        let base_power_mw: f64 = (0..n)
            .map(|j| {
                problem.b1_mw[j] * lambda0[j] + problem.b0_mw[j] * problem.servers_on[j] as f64
            })
            .sum();
        riccati::to_cumulative(nc, &self.warm_x, &mut self.warm_y);

        let cache = self.cache.as_mut().expect("refreshed above");
        let Skeleton::Sharded(skel) = &mut cache.skeleton else {
            unreachable!("plan_sharded is only entered with a sharded skeleton")
        };
        // Resume the outer multipliers from the previous step, shifted one
        // stage for the receding horizon (the duals priced at new stage `t`
        // are the old stage-`t+1` duals, final stage repeated) — the outer
        // analogue of the active-set seed shift.
        let mlen = skel.multiplier_len();
        let mult_shifted = match (&self.warm, has_base) {
            (Some(w), true) if w.multipliers.len() == mlen => {
                let (crows, prows) = skel.multiplier_stage_lens();
                let mut m = w.multipliers.clone();
                shift_horizon(&mut m[..beta2 * crows], crows);
                if prows > 0 {
                    shift_horizon(&mut m[beta2 * crows..], prows);
                }
                Some(m)
            }
            _ => None,
        };
        self.timings.condense_ns += condense_start.elapsed().as_nanos() as u64;

        let solve_start = Instant::now();
        let span = Span::enter_cat("mpc.solve.sharded", "solver");
        let outcome = skel.solve(&ShardedStep {
            eq_rhs: &self.eq_rhs,
            in_rhs: &self.in_rhs,
            tracking_rhs: &self.rhs,
            warm_y: &self.warm_y,
            seed: &self.seed,
            multipliers: mult_shifted.as_deref(),
            base_power_mw,
            scale,
            drop_round,
            threads,
        });
        drop(span);
        self.timings.solve_ns += solve_start.elapsed().as_nanos() as u64;
        let outcome = outcome?;

        // A shard-level warm rejection pays a local cold solve, never a
        // silent global one; it still demotes the step's warm accounting.
        let warm_started = has_base && outcome.fallbacks == 0;
        if warm_started {
            self.warm_solves += 1;
        } else {
            self.cold_solves += 1;
        }
        self.solve_stats.merge(&outcome.stats);
        let mut delta_u = outcome.y;
        riccati::to_deltas(nc, &mut delta_u);
        self.warm = Some(WarmState {
            delta_u: delta_u.clone(),
            active_set: outcome.active_set,
            multipliers: outcome.multipliers,
        });

        Ok(finish_plan(
            problem,
            lambda0,
            beta1,
            beta2,
            n,
            c,
            delta_u,
            outcome.iterations,
            warm_started,
            outcome.outer.rounds,
            outcome.outer.rho_retunes,
            outcome.outer.primal_residual,
            outcome.rejections,
        ))
    }

    /// Shifts the previous step's active set and `ΔU` one stage for the
    /// receding horizon and repairs the shifted point back to exact
    /// feasibility (capacity projection plus conservation redistribution).
    /// Returns whether a usable previous solution existed. Shared by every
    /// backend; with no usable base the repair builds a feasible point
    /// from all zeros, which lets even the "cold" solve skip the phase-1
    /// LP.
    fn shift_and_repair_warm(
        &mut self,
        problem: &MpcProblem,
        lambda0: &[f64],
        n: usize,
        c: usize,
    ) -> bool {
        let beta2 = self.config.control_horizon;
        let nc = n * c;
        let nb = problem.block_size();
        let nv = nb * beta2;
        let has_base = matches!(&self.warm, Some(w) if w.delta_u.len() == nv);
        // Re-index the previous active set for the shifted horizon.
        // Every constraint family bounds *cumulative* sums through
        // block `t`, so after dropping the applied first block the
        // activity at new block `t` is the old activity at `t + 1` —
        // and the appended zero change block repeats the old final
        // block's cumulative sums, hence its activity too (for the SoC
        // rows, which keep integrating, the repeat is a heuristic seed
        // the solver filters if inactive). Without this shift most of
        // the seed is filtered out as inactive and the solver
        // re-discovers the set one iteration at a time.
        self.seed.clear();
        if has_base {
            let w = self.warm.as_ref().expect("has_base");
            let ncap = beta2 * n;
            let nnn = beta2 * nc;
            for &ci in &w.active_set {
                let (family, t, rest, stride) = if ci < ncap {
                    (0, ci / n, ci % n, n)
                } else if ci < ncap + nnn {
                    (ncap, (ci - ncap) / nc, (ci - ncap) % nc, nc)
                } else {
                    // Storage families (charge/discharge bounds, SoC
                    // bounds): six blocks of β₂·N rows, stride N.
                    let k = ci - ncap - nnn;
                    let fam = k / ncap;
                    let within = k % ncap;
                    (ncap + nnn + fam * ncap, within / n, within % n, n)
                };
                if t >= 1 {
                    self.seed.push(family + (t - 1) * stride + rest);
                }
                if t == beta2 - 1 {
                    self.seed.push(ci);
                }
            }
        }
        // Receding-horizon shift: drop the applied first block,
        // hold zero change in the newly revealed final block. With
        // no usable previous solution the base is all zeros and
        // the repair below builds a feasible point from scratch.
        self.warm_x.clear();
        self.warm_x.resize(nv, 0.0);
        if let (true, Some(w)) = (has_base, &self.warm) {
            for t in 0..beta2 - 1 {
                self.warm_x[t * nb..(t + 1) * nb]
                    .copy_from_slice(&w.delta_u[(t + 1) * nb..(t + 2) * nb]);
            }
        }
        // Storage repair: forward-simulate each IDC's battery under the
        // shifted rate changes and clamp to the rate and SoC boxes. The
        // policy nets and the simulator clamps the applied rates, so the
        // shifted plan's implied rates can sit outside the new step's
        // boxes (and an outage zeroes the caps outright); the clamps
        // below rewrite the Δ entries to the nearest feasible schedule.
        if let Some(st) = &problem.storage {
            for j in 0..n {
                let b1 = problem.b1_mw[j];
                let (ec, ed, dt) = (
                    st.charge_efficiency[j],
                    st.discharge_efficiency[j],
                    st.dt_hours,
                );
                let cap = st.capacity_mwh[j];
                let mut soc = st.soc_mwh[j].min(cap);
                // Cumulative rate changes in req/s-equivalent units.
                let (mut cum_gc, mut cum_gd) = (0.0, 0.0);
                for t in 0..beta2 {
                    let mut c_mw = (st.prev_charge_mw[j]
                        + b1 * (cum_gc + self.warm_x[t * nb + nc + j]))
                        .clamp(0.0, st.max_charge_mw[j]);
                    let mut d_mw = (st.prev_discharge_mw[j]
                        + b1 * (cum_gd + self.warm_x[t * nb + nc + n + j]))
                        .clamp(0.0, st.max_discharge_mw[j]);
                    // SoC upper: charge only up to full...
                    if soc + dt * (ec * c_mw - d_mw / ed) > cap {
                        c_mw = (((cap - soc) / dt + d_mw / ed) / ec).clamp(0.0, st.max_charge_mw[j]);
                    }
                    // ...SoC lower: discharge only down to empty.
                    if soc + dt * (ec * c_mw - d_mw / ed) < 0.0 {
                        d_mw = (ed * (soc / dt + ec * c_mw)).clamp(0.0, st.max_discharge_mw[j]);
                    }
                    soc = (soc + dt * (ec * c_mw - d_mw / ed)).clamp(0.0, cap);
                    let new_cum_gc = (c_mw - st.prev_charge_mw[j]) / b1;
                    let new_cum_gd = (d_mw - st.prev_discharge_mw[j]) / b1;
                    self.warm_x[t * nb + nc + j] = new_cum_gc - cum_gc;
                    self.warm_x[t * nb + nc + n + j] = new_cum_gd - cum_gd;
                    cum_gc = new_cum_gc;
                    cum_gd = new_cum_gd;
                }
            }
        }
        // Repair the conservation equalities exactly. The
        // discrepancy per (step, portal) is the forecast drift
        // since the previous solve; it is distributed across IDCs
        // proportionally to the slack that keeps the point
        // feasible — capacity headroom when load is added, the
        // distance to the non-negativity floor when load is
        // removed. If no slack fits, `warm_start`'s feasibility
        // check rejects the point and we solve cold.
        self.repair_cum_entry.clear();
        self.repair_cum_entry.resize(nc, 0.0);
        self.repair_cum_idc.clear();
        self.repair_cum_idc.resize(n, 0.0);
        self.repair_weights.clear();
        self.repair_weights.resize(n, 0.0);
        for t in 0..beta2 {
            for j in 0..n {
                for i in 0..c {
                    let v = self.warm_x[t * nb + j * c + i];
                    self.repair_cum_entry[j * c + i] += v;
                    self.repair_cum_idc[j] += v;
                }
            }
            // Capacity projection: the slow loop may have turned
            // servers off since the previous solve, leaving the
            // shifted point above an IDC's shrunken capacity. Pull
            // the excess off that IDC's entries (limited by their
            // non-negativity slack); the equality repair below
            // re-routes it to IDCs that still have headroom.
            for j in 0..n {
                let excess = self.repair_cum_idc[j] - (problem.capacities[j] - lambda0[j]);
                if excess <= 0.0 {
                    continue;
                }
                let slack_total: f64 = (0..c)
                    .map(|i| {
                        (self.repair_cum_entry[j * c + i] + problem.prev_input[j * c + i]).max(0.0)
                    })
                    .sum();
                if slack_total <= 0.0 {
                    continue;
                }
                let take = excess.min(slack_total);
                for i in 0..c {
                    let slack =
                        (self.repair_cum_entry[j * c + i] + problem.prev_input[j * c + i]).max(0.0);
                    let red = take * slack / slack_total;
                    self.warm_x[t * nb + j * c + i] -= red;
                    self.repair_cum_entry[j * c + i] -= red;
                    self.repair_cum_idc[j] -= red;
                }
            }
            for i in 0..c {
                let cum_i: f64 = (0..n).map(|j| self.repair_cum_entry[j * c + i]).sum();
                let d = self.eq_rhs[t * c + i] - cum_i;
                if d == 0.0 {
                    continue;
                }
                let mut total = 0.0;
                for j in 0..n {
                    let floor_dist =
                        self.repair_cum_entry[j * c + i] + problem.prev_input[j * c + i];
                    let slack = if d > 0.0 {
                        // Keep entries sitting on their
                        // non-negativity floor exactly there — the
                        // MPC optimum is sparse and disturbing a
                        // bound the seeded active set relies on
                        // costs the solver one iteration per
                        // constraint to re-discover.
                        if floor_dist > 1e-6 {
                            problem.capacities[j] - lambda0[j] - self.repair_cum_idc[j]
                        } else {
                            0.0
                        }
                    } else {
                        floor_dist
                    };
                    self.repair_weights[j] = slack.max(0.0);
                    total += self.repair_weights[j];
                }
                if d > 0.0 && total < d {
                    // The already-serving IDCs cannot absorb the full
                    // addition — distributing `d` over less than `d` of
                    // headroom would overshoot a capacity face and poison
                    // the warm point into a silent cold fallback. Spread
                    // over *all* remaining capacity instead, accepting the
                    // weaker seed to stay feasible.
                    total = 0.0;
                    for j in 0..n {
                        self.repair_weights[j] =
                            (problem.capacities[j] - lambda0[j] - self.repair_cum_idc[j]).max(0.0);
                        total += self.repair_weights[j];
                    }
                }
                if total <= 0.0 {
                    // No slack anywhere: the step is near-infeasible
                    // and the cold path should handle it.
                    self.repair_weights.iter_mut().for_each(|w| *w = 1.0);
                    total = n as f64;
                }
                for j in 0..n {
                    let add = d * self.repair_weights[j] / total;
                    self.warm_x[t * nb + j * c + i] += add;
                    self.repair_cum_entry[j * c + i] += add;
                    self.repair_cum_idc[j] += add;
                }
            }
        }
        has_base
    }

    /// Solves one step with *no* reuse of any kind: drops the cached
    /// skeleton, factorizations and warm-start state first, so the returned
    /// plan comes from a from-scratch solve. Differential oracles use this
    /// as the production baseline that cannot have been helped by caching.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`plan`](Self::plan).
    pub fn plan_cold(&mut self, problem: &MpcProblem) -> Result<MpcPlan> {
        self.reset();
        self.plan(problem)
    }

    /// Rebuilds the cached QP skeleton when the problem structure changed.
    ///
    /// The cache key is everything `A`, `Q`, and the constraint rows
    /// depend on: the dimensions, the marginal power `b₁`, and the
    /// tracking multipliers. Server counts, capacities, forecasts, and
    /// references only enter the per-step right-hand sides.
    fn refresh_structure(&mut self, problem: &MpcProblem, n: usize, c: usize) -> Result<()> {
        let storage_key = problem.storage.as_ref().map(|st| {
            (
                st.charge_efficiency.clone(),
                st.discharge_efficiency.clone(),
            )
        });
        if let Some(cache) = &self.cache {
            if cache.n == n
                && cache.c == c
                && cache.b1_mw == problem.b1_mw
                && cache.tracking_multiplier == problem.tracking_multiplier
                && cache.storage_key == storage_key
            {
                return Ok(());
            }
            // A weight change keeps the warm state usable (same variable
            // layout, same constraints); a dimension change does not —
            // and attaching or detaching storage changes the layout.
            if cache.n != n || cache.c != c || cache.storage_key.is_some() != storage_key.is_some()
            {
                self.warm = None;
            }
        }

        let refresh_start = Instant::now();
        let factor_before = self.timings.factor_ns;
        let skeleton = match self.config.backend {
            SolverBackend::CondensedDense => self.build_dense_skeleton(problem, n, c)?,
            SolverBackend::BandedRiccati => {
                let mut skel = RiccatiSkeleton::build(&self.config, problem)?;
                let factor_start = Instant::now();
                skel.qp_mut().prepare()?;
                self.timings.factor_ns += factor_start.elapsed().as_nanos() as u64;
                Skeleton::Banded(skel)
            }
            SolverBackend::Sharded {
                shards,
                rho,
                max_outer,
                tol,
            } => {
                let mut skel =
                    ShardedSkeleton::build(&self.config, problem, shards, rho, max_outer, tol)?;
                let factor_start = Instant::now();
                skel.prepare(default_threads())?;
                self.timings.factor_ns += factor_start.elapsed().as_nanos() as u64;
                Skeleton::Sharded(skel)
            }
        };
        let factored = self.timings.factor_ns - factor_before;
        self.timings.refresh_ns +=
            (refresh_start.elapsed().as_nanos() as u64).saturating_sub(factored);
        self.cache = Some(StructureCache {
            n,
            c,
            b1_mw: problem.b1_mw.clone(),
            tracking_multiplier: problem.tracking_multiplier.clone(),
            storage_key,
            skeleton,
        });
        Ok(())
    }

    /// Builds the dense condensed skeleton (least-squares rows lowered to a
    /// [`QuadraticProgram`], Hessian factored).
    fn build_dense_skeleton(
        &mut self,
        problem: &MpcProblem,
        n: usize,
        c: usize,
    ) -> Result<Skeleton> {
        let beta1 = self.config.prediction_horizon;
        let beta2 = self.config.control_horizon;
        let nc = n * c;
        let nb = problem.block_size();
        let nv = nb * beta2;
        let storage = problem.storage.as_ref();

        // ---- Least-squares rows: tracking then smoothing. Only the
        // sparsity pattern and the weights matter here; the rhs is
        // refreshed each step. With storage the per-IDC power row gains
        // `+b₁·Δγc − b₁·Δγd` (rate changes in req/s equivalents, so the
        // coefficient matches the workload entries'). ----
        let rows = beta1 * n + beta2 * n;
        let mut a = Matrix::zeros(rows, nv);
        let mut weights = vec![0.0; rows];
        for s in 0..beta1 {
            for j in 0..n {
                let row = s * n + j;
                for t in 0..=s.min(beta2 - 1) {
                    for i in 0..c {
                        a[(row, t * nb + j * c + i)] = problem.b1_mw[j];
                    }
                    if storage.is_some() {
                        a[(row, t * nb + nc + j)] = problem.b1_mw[j];
                        a[(row, t * nb + nc + n + j)] = -problem.b1_mw[j];
                    }
                }
                weights[row] = self.config.tracking_weight * problem.tracking_multiplier[j];
            }
        }
        for t in 0..beta2 {
            for j in 0..n {
                let row = beta1 * n + t * n + j;
                for i in 0..c {
                    a[(row, t * nb + j * c + i)] = problem.b1_mw[j];
                }
                if storage.is_some() {
                    a[(row, t * nb + nc + j)] = problem.b1_mw[j];
                    a[(row, t * nb + nc + n + j)] = -problem.b1_mw[j];
                }
                weights[row] = self.config.smoothing_weight;
            }
        }

        let mut lsq = ConstrainedLeastSquares::new(a, vec![0.0; rows])?
            .residual_weights(weights)?
            .regularization(vec![self.config.input_ridge; nv])?;

        // ---- Constraint structure; rhs values are per-step. ----
        // Workload conservation (paper eq. 45).
        for t in 0..beta2 {
            for i in 0..c {
                let mut row = vec![0.0; nv];
                for tp in 0..=t {
                    for j in 0..n {
                        row[tp * nb + j * c + i] = 1.0;
                    }
                }
                lsq = lsq.equality(row, 0.0);
            }
        }
        // Capacity / latency (paper eq. 43).
        for t in 0..beta2 {
            for j in 0..n {
                let mut row = vec![0.0; nv];
                for tp in 0..=t {
                    for i in 0..c {
                        row[tp * nb + j * c + i] = 1.0;
                    }
                }
                lsq = lsq.inequality(row, 0.0);
            }
        }
        // Non-negativity of U (paper eq. 44).
        for t in 0..beta2 {
            for idx in 0..nc {
                let mut row = vec![0.0; nv];
                for tp in 0..=t {
                    row[tp * nb + idx] = -1.0;
                }
                lsq = lsq.inequality(row, 0.0);
            }
        }
        if let Some(st) = storage {
            // Charge rate box: ±cumulative Δγc against the per-step rhs.
            for sign in [1.0, -1.0] {
                for t in 0..beta2 {
                    for j in 0..n {
                        let mut row = vec![0.0; nv];
                        for tp in 0..=t {
                            row[tp * nb + nc + j] = sign;
                        }
                        lsq = lsq.inequality(row, 0.0);
                    }
                }
            }
            // Discharge rate box.
            for sign in [1.0, -1.0] {
                for t in 0..beta2 {
                    for j in 0..n {
                        let mut row = vec![0.0; nv];
                        for tp in 0..=t {
                            row[tp * nb + nc + n + j] = sign;
                        }
                        lsq = lsq.inequality(row, 0.0);
                    }
                }
            }
            // SoC box: the stored energy after stage t is linear in the
            // rate changes — Δγc at stage q charges for the t−q+1 stages
            // it stays applied (rows scaled by 1/(dt·b₁), so the
            // coefficients are the bare efficiencies).
            for sign in [1.0, -1.0] {
                for t in 0..beta2 {
                    for j in 0..n {
                        let mut row = vec![0.0; nv];
                        for q in 0..=t {
                            let steps = (t - q + 1) as f64;
                            row[q * nb + nc + j] = sign * st.charge_efficiency[j] * steps;
                            row[q * nb + nc + n + j] =
                                -sign * steps / st.discharge_efficiency[j];
                        }
                        lsq = lsq.inequality(row, 0.0);
                    }
                }
            }
        }

        let mut qp = lsq.lower_to_qp()?;
        // Hoist the Hessian factorization and the all-rows Schur complement
        // out of the active-set iteration — the skeleton is solved once per
        // sampling period for as long as the structure lasts.
        let factor_start = Instant::now();
        qp.prepare()?;
        self.timings.factor_ns += factor_start.elapsed().as_nanos() as u64;
        Ok(Skeleton::Dense { lsq, qp })
    }

    fn validate(&self, p: &MpcProblem, n: usize, c: usize) -> Result<()> {
        let fail = |what: String| Err(Error::DimensionMismatch { what });
        if n == 0 {
            return fail("at least one IDC required".into());
        }
        if c == 0 || p.prev_input.len() != n * c {
            return fail(format!(
                "prev_input length {} is not a positive multiple of {n} IDCs",
                p.prev_input.len()
            ));
        }
        if p.b0_mw.len() != n || p.servers_on.len() != n || p.capacities.len() != n {
            return fail("b0_mw/servers_on/capacities must have one entry per IDC".into());
        }
        if p.workload_forecast.len() != self.config.control_horizon
            || p.workload_forecast.iter().any(|f| f.len() != c)
        {
            return fail(format!(
                "workload_forecast must be β₂ = {} steps of {c} portals",
                self.config.control_horizon
            ));
        }
        if p.power_reference_mw.len() != self.config.prediction_horizon
            || p.power_reference_mw.iter().any(|r| r.len() != n)
        {
            return fail(format!(
                "power_reference_mw must be β₁ = {} steps of {n} IDCs",
                self.config.prediction_horizon
            ));
        }
        if p.tracking_multiplier.len() != n || p.tracking_multiplier.iter().any(|&m| !(m >= 0.0)) {
            return fail("tracking_multiplier must hold one non-negative value per IDC".into());
        }
        if let Some(st) = &p.storage {
            if matches!(self.config.backend, SolverBackend::Sharded { .. }) {
                return fail(
                    "storage-enabled problems are not supported by the sharded backend".into(),
                );
            }
            if st.capacity_mwh.len() != n
                || st.max_charge_mw.len() != n
                || st.max_discharge_mw.len() != n
                || st.charge_efficiency.len() != n
                || st.discharge_efficiency.len() != n
                || st.soc_mwh.len() != n
                || st.prev_charge_mw.len() != n
                || st.prev_discharge_mw.len() != n
            {
                return fail("storage vectors must hold one entry per IDC".into());
            }
            if !(st.dt_hours > 0.0) || !st.dt_hours.is_finite() {
                return fail("storage dt_hours must be positive and finite".into());
            }
            for j in 0..n {
                let ok = st.capacity_mwh[j].is_finite()
                    && st.capacity_mwh[j] >= 0.0
                    && st.max_charge_mw[j].is_finite()
                    && st.max_charge_mw[j] >= 0.0
                    && st.max_discharge_mw[j].is_finite()
                    && st.max_discharge_mw[j] >= 0.0
                    && st.charge_efficiency[j] > 0.0
                    && st.charge_efficiency[j] <= 1.0
                    && st.discharge_efficiency[j] > 0.0
                    && st.discharge_efficiency[j] <= 1.0
                    && st.soc_mwh[j] >= 0.0
                    && st.soc_mwh[j] <= st.capacity_mwh[j]
                    && st.prev_charge_mw[j].is_finite()
                    && st.prev_charge_mw[j] >= 0.0
                    && st.prev_discharge_mw[j].is_finite()
                    && st.prev_discharge_mw[j] >= 0.0;
                if !ok {
                    return fail(format!("storage parameters for IDC {j} are out of range"));
                }
                if !(p.b1_mw[j] > 0.0) {
                    // The rate variables are scaled by 1/b₁_j into req/s
                    // equivalents; a zero marginal power leaves no scale.
                    return fail(format!(
                        "storage requires a positive marginal power b1_mw for IDC {j}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The SoC drift the previous rates alone would cause through the end of
/// stage `t` (MWh): the constant part of the stored-energy expression that
/// moves into the SoC rows' right-hand sides.
fn soc_drift(st: &StorageProblem, j: usize, t: usize) -> f64 {
    st.dt_hours
        * (t as f64 + 1.0)
        * (st.charge_efficiency[j] * st.prev_charge_mw[j]
            - st.prev_discharge_mw[j] / st.discharge_efficiency[j])
}

/// Computes the per-family constraint violations of a rejected warm point
/// (`warm_x` in stacked-ΔU space) so the rejection can be explained instead
/// of silently paying a cold solve.
fn warm_rejection_breakdown(
    warm_x: &[f64],
    eq_rhs: &[f64],
    in_rhs: &[f64],
    n: usize,
    c: usize,
    beta2: usize,
    storage: Option<&StorageProblem>,
) -> WarmRejection {
    let nc = n * c;
    let nb = nc + if storage.is_some() { 2 * n } else { 0 };
    let mut rej = WarmRejection::default();
    let mut cum = vec![0.0; nc];
    for t in 0..beta2 {
        for k in 0..nc {
            cum[k] += warm_x[t * nb + k];
        }
        for i in 0..c {
            let sum: f64 = (0..n).map(|j| cum[j * c + i]).sum();
            rej.conservation = rej.conservation.max((sum - eq_rhs[t * c + i]).abs());
        }
        for j in 0..n {
            let total: f64 = cum[j * c..(j + 1) * c].iter().sum();
            rej.capacity = rej.capacity.max(total - in_rhs[t * n + j]);
        }
        for k in 0..nc {
            rej.nonnegativity = rej
                .nonnegativity
                .max(-(cum[k] + in_rhs[beta2 * n + t * nc + k]));
        }
    }
    if let Some(st) = storage {
        // Families C–H past the non-negativity block: cumulative charge /
        // discharge boxes, then the SoC box (all in scaled units, matching
        // the assembled rhs).
        let base = beta2 * n + beta2 * nc;
        let mut cum_gc = vec![0.0; n];
        let mut cum_gd = vec![0.0; n];
        let mut soc_c = vec![0.0; n];
        let mut soc_d = vec![0.0; n];
        for t in 0..beta2 {
            for j in 0..n {
                cum_gc[j] += warm_x[t * nb + nc + j];
                cum_gd[j] += warm_x[t * nb + nc + n + j];
                soc_c[j] += cum_gc[j];
                soc_d[j] += cum_gd[j];
                let soc = st.charge_efficiency[j] * soc_c[j] - soc_d[j] / st.discharge_efficiency[j];
                let row = t * n + j;
                rej.storage = rej
                    .storage
                    .max(cum_gc[j] - in_rhs[base + row])
                    .max(-cum_gc[j] - in_rhs[base + beta2 * n + row])
                    .max(cum_gd[j] - in_rhs[base + 2 * beta2 * n + row])
                    .max(-cum_gd[j] - in_rhs[base + 3 * beta2 * n + row])
                    .max(soc - in_rhs[base + 4 * beta2 * n + row])
                    .max(-soc - in_rhs[base + 5 * beta2 * n + row]);
            }
        }
    }
    rej
}

/// Assembles the plan from the solved `ΔU`: the applied first block and the
/// predicted per-IDC power trajectory. Shared by the monolithic and sharded
/// solve paths.
#[allow(clippy::too_many_arguments)]
fn finish_plan(
    problem: &MpcProblem,
    lambda0: &[f64],
    beta1: usize,
    beta2: usize,
    n: usize,
    c: usize,
    delta_u: Vec<f64>,
    qp_iterations: usize,
    warm_started: bool,
    outer_rounds: u64,
    rho_retunes: u64,
    consensus_residual: f64,
    warm_rejections: Vec<WarmRejection>,
) -> MpcPlan {
    let nc = n * c;
    let nb = problem.block_size();
    // Receding horizon: apply only the first block.
    let next_input: Vec<f64> = problem
        .prev_input
        .iter()
        .zip(&delta_u[..nc])
        .map(|(u, d)| (u + d).max(0.0))
        .collect();

    // First-block battery rates, netted: the QP may plan simultaneous
    // charge and discharge (round-trip losses are not in the objective),
    // but physically only the net flow moves — fold it onto one side.
    let (next_charge_mw, next_discharge_mw) = match &problem.storage {
        Some(st) => {
            let mut charge = Vec::with_capacity(n);
            let mut discharge = Vec::with_capacity(n);
            for j in 0..n {
                let raw_c = (st.prev_charge_mw[j] + problem.b1_mw[j] * delta_u[nc + j])
                    .clamp(0.0, st.max_charge_mw[j]);
                let raw_d = (st.prev_discharge_mw[j] + problem.b1_mw[j] * delta_u[nc + n + j])
                    .clamp(0.0, st.max_discharge_mw[j]);
                let net = raw_c - raw_d;
                if net >= 0.0 {
                    charge.push(net);
                    discharge.push(0.0);
                } else {
                    charge.push(0.0);
                    discharge.push(-net);
                }
            }
            (charge, discharge)
        }
        None => (Vec::new(), Vec::new()),
    };

    // Predicted per-IDC grid power over the prediction horizon.
    let mut predicted_power_mw = Vec::with_capacity(beta1);
    for s in 0..beta1 {
        let mut per_idc = Vec::with_capacity(n);
        for j in 0..n {
            let mut lam = lambda0[j];
            for t in 0..=s.min(beta2 - 1) {
                for i in 0..c {
                    lam += delta_u[t * nb + j * c + i];
                }
            }
            let mut p = problem.b1_mw[j] * lam + problem.b0_mw[j] * problem.servers_on[j] as f64;
            if let Some(st) = &problem.storage {
                let mut net = st.prev_charge_mw[j] - st.prev_discharge_mw[j];
                for t in 0..=s.min(beta2 - 1) {
                    net += problem.b1_mw[j] * (delta_u[t * nb + nc + j] - delta_u[t * nb + nc + n + j]);
                }
                p += net;
            }
            per_idc.push(p);
        }
        predicted_power_mw.push(per_idc);
    }

    MpcPlan {
        delta_u,
        next_input,
        next_charge_mw,
        next_discharge_mw,
        predicted_power_mw,
        qp_iterations,
        warm_started,
        outer_rounds,
        rho_retunes,
        consensus_residual,
        warm_rejections,
    }
}

/// The result of one receding-horizon solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcPlan {
    delta_u: Vec<f64>,
    next_input: Vec<f64>,
    next_charge_mw: Vec<f64>,
    next_discharge_mw: Vec<f64>,
    predicted_power_mw: Vec<Vec<f64>>,
    qp_iterations: usize,
    warm_started: bool,
    outer_rounds: u64,
    rho_retunes: u64,
    consensus_residual: f64,
    warm_rejections: Vec<WarmRejection>,
}

impl MpcPlan {
    /// The full stacked `ΔU(k)` over the control horizon.
    pub fn delta_u(&self) -> &[f64] {
        &self.delta_u
    }

    /// The input to apply now: `U(k) = U(k−1) + ΔU(k|k)`, IDC-major flat.
    pub fn next_input(&self) -> &[f64] {
        &self.next_input
    }

    /// Per-IDC battery charge rate (MW) to apply now, netted against the
    /// planned discharge (at most one of charge/discharge is nonzero per
    /// IDC). Empty when the problem carried no storage.
    pub fn next_charge_mw(&self) -> &[f64] {
        &self.next_charge_mw
    }

    /// Per-IDC battery discharge rate (MW) to apply now, netted against
    /// the planned charge. Empty when the problem carried no storage.
    pub fn next_discharge_mw(&self) -> &[f64] {
        &self.next_discharge_mw
    }

    /// Predicted per-IDC power (MW) for each prediction step.
    pub fn predicted_power_mw(&self) -> &[Vec<f64>] {
        &self.predicted_power_mw
    }

    /// Active-set iterations spent in the QP.
    pub fn qp_iterations(&self) -> usize {
        self.qp_iterations
    }

    /// Whether this plan was solved from the previous step's warm start.
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }

    /// Coordinator rounds of the sharded backend (0 for the monolithic
    /// backends).
    pub fn outer_rounds(&self) -> u64 {
        self.outer_rounds
    }

    /// Penalty retunes applied by the sharded backend's residual
    /// balancing during this solve (0 for the monolithic backends).
    pub fn rho_retunes(&self) -> u64 {
        self.rho_retunes
    }

    /// Final relative consensus primal residual of the sharded backend
    /// (0.0 for the monolithic backends).
    pub fn consensus_residual(&self) -> f64 {
        self.consensus_residual
    }

    /// Warm-start rejections this step, one per rejecting solver (the
    /// monolithic backends report at most one, with `shard == 0`). Empty
    /// whenever the warm path held — a non-empty list means a cold solve
    /// was paid and says which constraint family the shifted point
    /// violated.
    pub fn warm_rejections(&self) -> &[WarmRejection] {
        &self.warm_rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One portal with 10 000 req/s, two IDCs. IDC 0: µ=2-ish parameters,
    /// IDC 1 cheaper reference target.
    fn two_idc_problem(prev: [f64; 2], reference: [f64; 2]) -> MpcProblem {
        MpcProblem {
            b1_mw: vec![67.5e-6, 108.0e-6],
            b0_mw: vec![150.0e-6, 150.0e-6],
            servers_on: vec![8_000, 10_000],
            capacities: vec![15_000.0, 11_500.0],
            prev_input: prev.to_vec(),
            workload_forecast: vec![vec![10_000.0]; 3],
            power_reference_mw: vec![reference.to_vec(); 5],
            tracking_multiplier: MpcProblem::uniform_tracking(2),
            storage: None,
        }
    }

    /// A 4 MWh / 2 MW battery at 95%/95% efficiency per IDC, half charged.
    fn test_storage(n: usize) -> StorageProblem {
        StorageProblem {
            capacity_mwh: vec![4.0; n],
            max_charge_mw: vec![2.0; n],
            max_discharge_mw: vec![2.0; n],
            charge_efficiency: vec![0.95; n],
            discharge_efficiency: vec![0.95; n],
            soc_mwh: vec![2.0; n],
            prev_charge_mw: vec![0.0; n],
            prev_discharge_mw: vec![0.0; n],
            dt_hours: 1.0 / 12.0,
        }
    }

    fn power_of(problem: &MpcProblem, u: &[f64]) -> Vec<f64> {
        (0..2)
            .map(|j| problem.b1_mw[j] * u[j] + problem.b0_mw[j] * problem.servers_on[j] as f64)
            .collect()
    }

    #[test]
    fn degenerate_peak_shaving_instance_terminates() {
        // Regression: captured from the Fig. 6 peak-shaving run. The
        // previous input sits exactly on two capacity faces with many
        // zero entries, making the QP vertex highly degenerate.
        let problem = MpcProblem {
            b1_mw: vec![6.75e-5, 0.000108, 7.714285714285714e-5],
            b0_mw: vec![0.00015, 0.00015, 0.00015],
            servers_on: vec![9002, 40000, 20000],
            capacities: vec![18003.0, 49999.0, 34999.0],
            prev_input: vec![
                0.0, 0.0, 0.0, 0.0, 15002.0, 0.0, 10001.0, 15000.0, 20000.0, 4998.0, 30000.0,
                4999.0, 0.0, 0.0, 0.0,
            ],
            workload_forecast: vec![vec![30000.0, 15000.0, 15000.0, 20000.0, 20000.0]; 3],
            power_reference_mw: vec![vec![5.13, 10.26, 1.6289828571428573]; 5],
            tracking_multiplier: vec![25.0, 25.0, 1.0],
            storage: None,
        };
        let mut controller = MpcController::new(MpcConfig::default());
        let plan = controller.plan(&problem).expect("must terminate");
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 100_000.0).abs() < 1e-3, "total {total}");
    }

    #[test]
    fn conservation_holds_after_step() {
        let mut controller = MpcController::new(MpcConfig::default());
        let problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let plan = controller.plan(&problem).unwrap();
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 10_000.0).abs() < 1e-6, "total {total}");
        assert!(plan.next_input().iter().all(|&u| u >= 0.0));
    }

    #[test]
    fn tracking_moves_power_toward_reference() {
        let mut controller = MpcController::new(MpcConfig::default());
        // All load on IDC 0; the reference wants it on IDC 1.
        let problem = two_idc_problem(
            [10_000.0, 0.0],
            [
                150.0e-6 * 8_000.0,                        // idle power only on IDC 0
                108.0e-6 * 10_000.0 + 150.0e-6 * 10_000.0, // full load on IDC 1
            ],
        );
        let before = power_of(&problem, &problem.current_idc_workloads());
        let plan = controller.plan(&problem).unwrap();
        let after_lam = [plan.next_input()[0], plan.next_input()[1]];
        let after = power_of(&problem, &after_lam);
        // Moves in the right direction...
        assert!(after[0] < before[0], "IDC0 {} → {}", before[0], after[0]);
        assert!(after[1] > before[1], "IDC1 {} → {}", before[1], after[1]);
        // ...but the smoothing penalty stops it from jumping all the way.
        assert!(
            after_lam[1] < 10_000.0 - 1.0,
            "smoothing should prevent a full jump, got {after_lam:?}"
        );
    }

    #[test]
    fn higher_smoothing_weight_slows_the_move() {
        let mut fast = MpcController::new(MpcConfig {
            smoothing_weight: 0.1,
            ..MpcConfig::default()
        });
        let mut slow = MpcController::new(MpcConfig {
            smoothing_weight: 50.0,
            ..MpcConfig::default()
        });
        let problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.58]);
        let moved = |plan: &MpcPlan| plan.next_input()[1];
        let fast_move = moved(&fast.plan(&problem).unwrap());
        let slow_move = moved(&slow.plan(&problem).unwrap());
        assert!(
            fast_move > slow_move + 1.0,
            "fast {fast_move} vs slow {slow_move}"
        );
    }

    #[test]
    fn capacity_constraint_binds() {
        let mut controller = MpcController::new(MpcConfig {
            smoothing_weight: 0.0001,
            ..MpcConfig::default()
        });
        // Reference demands everything on IDC 1, but IDC 1 caps at 11 500
        // while 10 000 must also keep flowing... push forecast to 12 000.
        let mut problem = two_idc_problem([12_000.0, 0.0], [0.0, 10.0]);
        problem.workload_forecast = vec![vec![12_000.0]; 3];
        let plan = controller.plan(&problem).unwrap();
        // IDC 1 cannot exceed its capacity.
        assert!(plan.next_input()[1] <= 11_500.0 + 1e-6);
        // Conservation still holds.
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn workload_change_is_absorbed() {
        let mut controller = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([5_000.0, 5_000.0], [1.5, 1.5]);
        // Forecast says the workload jumps to 14 000.
        problem.workload_forecast = vec![vec![14_000.0]; 3];
        let plan = controller.plan(&problem).unwrap();
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 14_000.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn infeasible_capacity_is_reported() {
        let mut controller = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.0, 1.0]);
        problem.workload_forecast = vec![vec![30_000.0]; 3]; // > 26 500 total
        assert!(matches!(controller.plan(&problem), Err(Error::Infeasible)));
    }

    #[test]
    fn dimension_validation() {
        let mut controller = MpcController::new(MpcConfig::default());
        let good = two_idc_problem([10_000.0, 0.0], [1.0, 1.0]);
        let mut bad = good.clone();
        bad.capacities = vec![1.0];
        assert!(matches!(
            controller.plan(&bad),
            Err(Error::DimensionMismatch { .. })
        ));
        let mut bad = good.clone();
        bad.workload_forecast = vec![vec![1.0]; 2]; // β₂ = 3 expected
        assert!(controller.plan(&bad).is_err());
        let mut bad = good;
        bad.power_reference_mw = vec![vec![1.0, 1.0]; 2]; // β₁ = 5 expected
        assert!(controller.plan(&bad).is_err());
    }

    #[test]
    fn perfect_start_stays_put() {
        let mut controller = MpcController::new(MpcConfig::default());
        // Current allocation already produces the reference power.
        let problem = two_idc_problem(
            [6_000.0, 4_000.0],
            [
                67.5e-6 * 6_000.0 + 150.0e-6 * 8_000.0,
                108.0e-6 * 4_000.0 + 150.0e-6 * 10_000.0,
            ],
        );
        let plan = controller.plan(&problem).unwrap();
        assert!((plan.next_input()[0] - 6_000.0).abs() < 1.0);
        assert!((plan.next_input()[1] - 4_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "horizons must satisfy")]
    fn config_validation_panics_on_bad_horizons() {
        let _ = MpcController::new(MpcConfig {
            prediction_horizon: 2,
            control_horizon: 3,
            ..MpcConfig::default()
        });
    }

    #[test]
    fn warm_started_steps_match_a_cold_controller() {
        // Drive a closed loop for several steps. A stateful controller
        // (structure cache + warm start) must produce the same plan as a
        // fresh cold-solving controller at every step: the QP is strictly
        // convex, so both find the unique minimizer.
        let mut warm = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        for step in 0..6 {
            let plan = warm.plan(&problem).unwrap();
            let mut cold = MpcController::new(MpcConfig::default());
            let cold_plan = cold.plan(&problem).unwrap();
            for (w, c) in plan.next_input().iter().zip(cold_plan.next_input()) {
                assert!((w - c).abs() < 1e-4, "step {step}: {w} vs {c}");
            }
            if step > 0 {
                assert!(plan.warm_started(), "step {step} should warm start");
            }
            problem.prev_input = plan.next_input().to_vec();
        }
        assert_eq!(warm.warm_solves(), 5);
        assert_eq!(warm.cold_solves(), 1);
    }

    #[test]
    fn warm_state_roundtrip_resumes_bit_identically() {
        // Drive one controller continuously; drive a second that is torn
        // down and rebuilt from the exported warm state mid-run. Both must
        // produce bit-identical plans afterwards: the structure cache
        // rebuilds deterministically and the warm start carries over.
        let mut continuous = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        for _ in 0..3 {
            let plan = continuous.plan(&problem).unwrap();
            problem.prev_input = plan.next_input().to_vec();
        }
        assert!(continuous.warm_state().is_some());

        let mut restored = MpcController::new(MpcConfig::default());
        restored.restore_warm_state(continuous.warm_state());
        let (w, c) = continuous.solve_counters();
        restored.restore_solve_counters(w, c);

        for step in 0..4 {
            let a = continuous.plan(&problem).unwrap();
            let b = restored.plan(&problem).unwrap();
            assert_eq!(a.warm_started(), b.warm_started(), "step {step}");
            for (x, y) in a.next_input().iter().zip(b.next_input()) {
                assert_eq!(x.to_bits(), y.to_bits(), "step {step}: {x} vs {y}");
            }
            problem.prev_input = a.next_input().to_vec();
        }
        assert_eq!(continuous.solve_counters(), restored.solve_counters());
        assert_eq!(continuous.warm_state(), restored.warm_state());

        // Clearing the warm state forces the next solve cold.
        restored.restore_warm_state(None);
        let plan = restored.plan(&problem).unwrap();
        assert!(!plan.warm_started());
    }

    #[test]
    fn structure_cache_rebuilds_on_weight_change() {
        let mut controller = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        controller.plan(&problem).unwrap();
        // Flip to peak-shaving weights mid-run: the skeleton must rebuild
        // and the result match a fresh controller's.
        problem.tracking_multiplier = vec![25.0, 1.0];
        let plan = controller.plan(&problem).unwrap();
        let mut fresh = MpcController::new(MpcConfig::default());
        let fresh_plan = fresh.plan(&problem).unwrap();
        for (a, b) in plan.next_input().iter().zip(fresh_plan.next_input()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn infeasible_warm_start_falls_back_to_cold() {
        let mut controller = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let plan = controller.plan(&problem).unwrap();
        assert!(!plan.warm_started(), "first solve is cold by definition");

        // The caller overrides the input state externally (the policy's
        // emergency fallback does exactly this). The remembered ΔU tail
        // keeps draining IDC 0, but IDC 0 now holds nothing, so the
        // shifted warm point violates non-negativity — a violation the
        // equality repair cannot see. The controller must reject the warm
        // point and still produce a valid plan via the cold path.
        problem.prev_input = vec![0.0, 10_000.0];
        let plan = controller.plan(&problem).unwrap();
        assert!(!plan.warm_started(), "warm point should have been rejected");
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 10_000.0).abs() < 1e-6, "total {total}");
        assert!(plan.next_input().iter().all(|&u| u >= 0.0));

        // And the *next* step warm-starts again off the recovered state.
        problem.prev_input = plan.next_input().to_vec();
        let plan = controller.plan(&problem).unwrap();
        assert!(plan.warm_started(), "recovery step should warm start");
    }

    #[test]
    fn reset_forces_a_cold_solve() {
        let mut controller = MpcController::new(MpcConfig::default());
        let problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        controller.plan(&problem).unwrap();
        controller.plan(&problem).unwrap();
        assert_eq!(controller.warm_solves(), 1);
        controller.reset();
        let plan = controller.plan(&problem).unwrap();
        assert!(!plan.warm_started());
        assert_eq!(controller.cold_solves(), 2);
    }

    #[test]
    fn banded_backend_matches_dense_in_closed_loop() {
        // Drive both backends through the same closed loop; the QP is
        // strictly convex, so they must agree on the minimizer each step
        // and both must settle into warm-started solves.
        let mut dense = MpcController::new(MpcConfig::default());
        let mut banded = MpcController::new(MpcConfig {
            backend: SolverBackend::BandedRiccati,
            ..MpcConfig::default()
        });
        let mut pd = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let mut pb = pd.clone();
        for step in 0..6 {
            let plan_d = dense.plan(&pd).unwrap();
            let plan_b = banded.plan(&pb).unwrap();
            for (a, b) in plan_d.next_input().iter().zip(plan_b.next_input()) {
                assert!((a - b).abs() < 1e-4, "step {step}: {a} vs {b}");
            }
            pd.prev_input = plan_d.next_input().to_vec();
            pb.prev_input = plan_b.next_input().to_vec();
        }
        assert_eq!(banded.warm_solves(), 5);
        assert_eq!(banded.cold_solves(), 1);
    }

    #[test]
    fn banded_backend_handles_degenerate_peak_shaving() {
        let problem = MpcProblem {
            b1_mw: vec![6.75e-5, 0.000108, 7.714285714285714e-5],
            b0_mw: vec![0.00015, 0.00015, 0.00015],
            servers_on: vec![9002, 40000, 20000],
            capacities: vec![18003.0, 49999.0, 34999.0],
            prev_input: vec![
                0.0, 0.0, 0.0, 0.0, 15002.0, 0.0, 10001.0, 15000.0, 20000.0, 4998.0, 30000.0,
                4999.0, 0.0, 0.0, 0.0,
            ],
            workload_forecast: vec![vec![30000.0, 15000.0, 15000.0, 20000.0, 20000.0]; 3],
            power_reference_mw: vec![vec![5.13, 10.26, 1.6289828571428573]; 5],
            tracking_multiplier: vec![25.0, 25.0, 1.0],
            storage: None,
        };
        let mut controller = MpcController::new(MpcConfig {
            backend: SolverBackend::BandedRiccati,
            ..MpcConfig::default()
        });
        let plan = controller.plan(&problem).expect("must terminate");
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 100_000.0).abs() < 1e-3, "total {total}");
    }

    #[test]
    fn sharded_backend_matches_dense_in_closed_loop() {
        // The consensus outer loop stops at a workload-relative residual
        // and the final repair restores conservation exactly, so the
        // sharded plans must track the monolithic minimizer step for
        // step — per entry to within a few× the backend tolerance on the
        // 10k req/s scale (the portal-split directions are near-flat, so
        // entries are the loosest-determined quantity; plan cost agrees
        // orders of magnitude tighter) — and settle into warm starts on
        // both levels (active sets and multipliers).
        let mut dense = MpcController::new(MpcConfig::default());
        let mut sharded = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        });
        let mut pd = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let mut ps = pd.clone();
        for step in 0..6 {
            let plan_d = dense.plan(&pd).unwrap();
            let plan_s = sharded.plan(&ps).unwrap();
            assert!(plan_s.outer_rounds() > 0, "step {step}: no outer rounds");
            assert!(
                plan_s.warm_rejections().is_empty(),
                "step {step}: unexpected warm rejection {:?}",
                plan_s.warm_rejections()
            );
            for (a, b) in plan_d.next_input().iter().zip(plan_s.next_input()) {
                assert!((a - b).abs() < 5e-6 * 10_000.0, "step {step}: {a} vs {b}");
            }
            let total: f64 = plan_s.next_input().iter().sum();
            assert!(
                (total - 10_000.0).abs() < 1e-6,
                "step {step}: total {total}"
            );
            pd.prev_input = plan_d.next_input().to_vec();
            ps.prev_input = plan_s.next_input().to_vec();
        }
        assert_eq!(sharded.warm_solves(), 5);
        assert_eq!(sharded.cold_solves(), 1);
    }

    #[test]
    fn sharded_single_shard_still_converges() {
        // One shard degenerates to an augmented-Lagrangian solve of the
        // full problem (conservation enforced by the penalty + dual loop
        // instead of hard equality rows); the fixed point is the same.
        let mut dense = MpcController::new(MpcConfig::default());
        let mut sharded = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(1),
            ..MpcConfig::default()
        });
        let problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let plan_d = dense.plan(&problem).unwrap();
        let plan_s = sharded.plan(&problem).unwrap();
        for (a, b) in plan_d.next_input().iter().zip(plan_s.next_input()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn sharded_backend_handles_degenerate_peak_shaving() {
        let problem = MpcProblem {
            b1_mw: vec![6.75e-5, 0.000108, 7.714285714285714e-5],
            b0_mw: vec![0.00015, 0.00015, 0.00015],
            servers_on: vec![9002, 40000, 20000],
            capacities: vec![18003.0, 49999.0, 34999.0],
            prev_input: vec![
                0.0, 0.0, 0.0, 0.0, 15002.0, 0.0, 10001.0, 15000.0, 20000.0, 4998.0, 30000.0,
                4999.0, 0.0, 0.0, 0.0,
            ],
            workload_forecast: vec![vec![30000.0, 15000.0, 15000.0, 20000.0, 20000.0]; 3],
            power_reference_mw: vec![vec![5.13, 10.26, 1.6289828571428573]; 5],
            tracking_multiplier: vec![25.0, 25.0, 1.0],
            storage: None,
        };
        let mut controller = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(3),
            ..MpcConfig::default()
        });
        let plan = controller.plan(&problem).expect("must terminate");
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 100_000.0).abs() < 1e-3, "total {total}");
    }

    #[test]
    fn sharded_plans_are_bitwise_reproducible() {
        // Two identical closed loops must produce byte-identical plans —
        // the determinism the cross-process and cross-thread-count
        // reproducibility gates build on.
        let run = || {
            let mut controller = MpcController::new(MpcConfig {
                backend: SolverBackend::sharded(2),
                ..MpcConfig::default()
            });
            let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
            let mut plans = Vec::new();
            for _ in 0..4 {
                let plan = controller.plan(&problem).unwrap();
                problem.prev_input = plan.next_input().to_vec();
                plans.push(plan);
            }
            plans
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_infeasible_capacity_is_reported() {
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        // Total capacity is 26 500; demand 30 000 cannot be served.
        problem.workload_forecast = vec![vec![30_000.0]; 3];
        let mut controller = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        });
        assert!(matches!(controller.plan(&problem), Err(Error::Infeasible)));
    }

    #[test]
    fn sharded_coordinator_stall_converges_to_the_same_plan() {
        let mut baseline = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        });
        let mut stalled = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        });
        let mut pb = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let mut ps = pb.clone();
        for step in 0..3 {
            if step == 1 {
                stalled.force_coordinator_stall_next();
            }
            let plan_b = baseline.plan(&pb).unwrap();
            let plan_s = stalled.plan(&ps).unwrap();
            for (a, b) in plan_b.next_input().iter().zip(plan_s.next_input()) {
                assert!((a - b).abs() < 1e-3, "step {step}: {a} vs {b}");
            }
            let total: f64 = plan_s.next_input().iter().sum();
            assert!(
                (total - 10_000.0).abs() < 1e-6,
                "step {step}: total {total}"
            );
            pb.prev_input = plan_b.next_input().to_vec();
            ps.prev_input = plan_s.next_input().to_vec();
        }
    }

    #[test]
    fn sharded_warm_state_roundtrip_is_exact() {
        // Checkpoint/restore must carry the outer multipliers: a restored
        // controller has to replay the remaining steps byte-identically.
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let config = MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        };
        let mut original = MpcController::new(config);
        for _ in 0..2 {
            let plan = original.plan(&problem).unwrap();
            problem.prev_input = plan.next_input().to_vec();
        }
        let saved = original.warm_state().expect("warm state exists");
        assert!(!saved.multipliers.is_empty(), "multipliers must persist");

        let mut restored = MpcController::new(config);
        restored.restore_warm_state(Some(saved));
        let plan_o = original.plan(&problem).unwrap();
        let plan_r = restored.plan(&problem).unwrap();
        assert_eq!(plan_o, plan_r);
        assert_eq!(original.warm_state(), restored.warm_state());
    }

    #[test]
    fn sharded_peak_budget_holds_total_power_below_cap() {
        // Reference wants everything on the expensive IDC 1; an
        // unconstrained solve would push total fleet power to ~3.78 MW.
        // With a 3.6 MW budget the peak duals must re-route load back to
        // IDC 0 until every stage's total fits the cap.
        let reference = [
            150.0e-6 * 8_000.0,
            108.0e-6 * 10_000.0 + 150.0e-6 * 10_000.0,
        ];
        let budget = 3.6;
        let mut controller = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            sharded_peak_budget_mw: Some(budget),
            ..MpcConfig::default()
        });
        let mut problem = two_idc_problem([10_000.0, 0.0], reference);
        for _ in 0..8 {
            let plan = controller.plan(&problem).unwrap();
            problem.prev_input = plan.next_input().to_vec();
        }
        let plan = controller.plan(&problem).unwrap();
        for (s, per_idc) in plan.predicted_power_mw().iter().enumerate() {
            let total: f64 = per_idc.iter().sum();
            assert!(
                total <= budget + 1e-3,
                "stage {s}: total power {total} exceeds budget {budget}"
            );
        }
        // The budget binds (the unconstrained optimum is above the cap), so
        // the converged allocation should sit near the budget, not far
        // below it.
        let stage0: f64 = plan.predicted_power_mw()[0].iter().sum();
        assert!(
            stage0 > budget - 0.2,
            "stage 0 power {stage0} too far below cap"
        );
    }

    #[test]
    fn repair_survives_partial_serving_headroom() {
        // Regression for the silent cold fallbacks: IDC 0 serves nearly at
        // capacity while IDC 1 idles. A forecast jump larger than IDC 0's
        // headroom used to be distributed over the *serving* IDCs only,
        // overshooting IDC 0's capacity face and silently rejecting the
        // warm point. The repair must spread the excess over all remaining
        // capacity instead and keep the step warm.
        let mut problem = two_idc_problem([9_990.0, 0.0], [0.5, 10.0]);
        problem.workload_forecast = vec![vec![9_990.0]; 3];
        let mut controller = MpcController::new(MpcConfig::default());
        let plan = controller.plan(&problem).unwrap();
        problem.prev_input = plan.next_input().to_vec();
        // Forecast jumps by far more than IDC 0's remaining headroom.
        problem.workload_forecast = vec![vec![12_000.0]; 3];
        let plan = controller.plan(&problem).unwrap();
        assert!(
            plan.warm_started(),
            "repair must keep the step warm when serving headroom is partial"
        );
        assert!(plan.warm_rejections().is_empty());
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 12_000.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn warm_rejection_breakdown_reports_violated_families() {
        // 1 stage would hide cumulative effects; use the standard layout:
        // n = 2 IDCs, c = 1 portal, β₂ = 2 stages.
        let (n, c, beta2) = (2, 1, 2);
        // Stage sums: IDC0 gets 5 then 5 more (cum 10), IDC1 stays 0.
        let warm_x = vec![5.0, 0.0, 5.0, 0.0];
        // Conservation wants 8 per stage: stage 0 off by 3, stage 1 by 2.
        let eq_rhs = vec![8.0, 8.0];
        // Capacity rows (t-major × IDC): IDC0 capacity 7 → cum 10 violates
        // by 3 at stage 1. Non-negativity rhs = prev inputs (all 1).
        let in_rhs = vec![7.0, 100.0, 7.0, 100.0, 1.0, 1.0, 1.0, 1.0];
        let rej = warm_rejection_breakdown(&warm_x, &eq_rhs, &in_rhs, n, c, beta2, None);
        assert!((rej.conservation - 3.0).abs() < 1e-12, "{rej:?}");
        assert!((rej.capacity - 3.0).abs() < 1e-12, "{rej:?}");
        assert_eq!(rej.nonnegativity, 0.0, "{rej:?}");
        assert!((rej.worst() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn plan_timings_accumulate_and_reset() {
        let mut controller = MpcController::new(MpcConfig::default());
        let problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        controller.plan(&problem).unwrap();
        let t = controller.timings();
        assert!(t.factor_ns > 0 && t.condense_ns > 0 && t.solve_ns > 0);
        assert!(t.total_ns() >= t.factor_ns + t.condense_ns + t.solve_ns);
        controller.reset_timings();
        assert_eq!(controller.timings(), PlanTimings::default());
    }

    #[test]
    fn problem_accessors() {
        let p = two_idc_problem([6_000.0, 4_000.0], [1.0, 1.0]);
        assert_eq!(p.num_idcs(), 2);
        assert_eq!(p.num_portals(), 1);
        assert_eq!(p.current_idc_workloads(), vec![6_000.0, 4_000.0]);
        let power = p.current_power_mw();
        assert!((power[0] - (67.5e-6 * 6_000.0 + 150.0e-6 * 8_000.0)).abs() < 1e-12);
        assert_eq!(p.block_size(), 2);
        let mut ps = p.clone();
        ps.storage = Some(test_storage(2));
        assert_eq!(ps.block_size(), 6);
        ps.storage.as_mut().unwrap().prev_discharge_mw[1] = 0.5;
        let grid = ps.current_grid_power_mw();
        assert!((grid[0] - power[0]).abs() < 1e-12);
        assert!((grid[1] - (power[1] - 0.5)).abs() < 1e-12);
    }

    /// Advances a belief battery state exactly as the controller's
    /// constraints model it: `soc' = soc + dt·(η_c·c − d/η_d)`.
    fn apply_rates(st: &mut StorageProblem, charge: &[f64], discharge: &[f64]) {
        for j in 0..st.soc_mwh.len() {
            st.soc_mwh[j] += st.dt_hours
                * (st.charge_efficiency[j] * charge[j]
                    - discharge[j] / st.discharge_efficiency[j]);
            st.soc_mwh[j] = st.soc_mwh[j].clamp(0.0, st.capacity_mwh[j]);
            st.prev_charge_mw[j] = charge[j];
            st.prev_discharge_mw[j] = discharge[j];
        }
    }

    #[test]
    fn storage_discharges_against_a_low_reference() {
        // Reference sits 0.5 MW below the IT power each IDC can reach by
        // shifting alone (total workload is fixed), so the cheapest way to
        // track it is battery discharge.
        let mut controller = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem(
            [6_000.0, 4_000.0],
            [
                67.5e-6 * 6_000.0 + 150.0e-6 * 8_000.0 - 0.5,
                108.0e-6 * 4_000.0 + 150.0e-6 * 10_000.0 - 0.5,
            ],
        );
        problem.storage = Some(test_storage(2));
        let plan = controller.plan(&problem).unwrap();
        for j in 0..2 {
            assert!(
                plan.next_discharge_mw()[j] > 0.1,
                "IDC {j} should discharge, got {:?}",
                plan.next_discharge_mw()
            );
            assert_eq!(plan.next_charge_mw()[j], 0.0);
        }
        // Predicted grid power moves below the IT-only draw.
        let it_power = problem.current_power_mw();
        assert!(plan.predicted_power_mw()[0][0] < it_power[0]);
    }

    #[test]
    fn storage_rates_respect_caps_and_soc() {
        // A nearly empty battery with a harsh low reference: discharge is
        // wanted hard but must respect both the rate cap and the energy
        // actually stored.
        let mut st = test_storage(2);
        st.soc_mwh = vec![0.05, 0.05];
        let mut problem = two_idc_problem([6_000.0, 4_000.0], [0.2, 0.2]);
        problem.storage = Some(st);
        let mut controller = MpcController::new(MpcConfig::default());
        for _ in 0..6 {
            let plan = controller.plan(&problem).unwrap();
            let st = problem.storage.as_ref().unwrap();
            for j in 0..2 {
                let (c_mw, d_mw) = (plan.next_charge_mw()[j], plan.next_discharge_mw()[j]);
                assert!((0.0..=st.max_charge_mw[j] + 1e-9).contains(&c_mw), "{c_mw}");
                assert!(
                    (0.0..=st.max_discharge_mw[j] + 1e-9).contains(&d_mw),
                    "{d_mw}"
                );
                // Discharging this hard for one step may not overdrain.
                let drained = st.dt_hours * d_mw / st.discharge_efficiency[j];
                assert!(
                    drained <= st.soc_mwh[j] + 1e-9,
                    "discharge {d_mw} MW would overdrain soc {}",
                    st.soc_mwh[j]
                );
            }
            problem.prev_input = plan.next_input().to_vec();
            let (c, d) = (
                plan.next_charge_mw().to_vec(),
                plan.next_discharge_mw().to_vec(),
            );
            apply_rates(problem.storage.as_mut().unwrap(), &c, &d);
            let st = problem.storage.as_ref().unwrap();
            for j in 0..2 {
                assert!(
                    st.soc_mwh[j] >= -1e-9 && st.soc_mwh[j] <= st.capacity_mwh[j] + 1e-9,
                    "soc out of bounds: {}",
                    st.soc_mwh[j]
                );
            }
        }
    }

    #[test]
    fn storage_banded_matches_dense_in_closed_loop() {
        let mut dense = MpcController::new(MpcConfig::default());
        let mut banded = MpcController::new(MpcConfig {
            backend: SolverBackend::BandedRiccati,
            ..MpcConfig::default()
        });
        let mut pd = two_idc_problem([10_000.0, 0.0], [1.0, 2.0]);
        pd.storage = Some(test_storage(2));
        let mut pb = pd.clone();
        for step in 0..6 {
            let plan_d = dense.plan(&pd).unwrap();
            let plan_b = banded.plan(&pb).unwrap();
            for (a, b) in plan_d.next_input().iter().zip(plan_b.next_input()) {
                assert!((a - b).abs() < 1e-4, "step {step}: {a} vs {b}");
            }
            for j in 0..2 {
                let da = plan_d.next_charge_mw()[j] - plan_d.next_discharge_mw()[j];
                let db = plan_b.next_charge_mw()[j] - plan_b.next_discharge_mw()[j];
                assert!((da - db).abs() < 1e-6, "step {step}: net rate {da} vs {db}");
            }
            pd.prev_input = plan_d.next_input().to_vec();
            pb.prev_input = plan_b.next_input().to_vec();
            let (cd, dd) = (
                plan_d.next_charge_mw().to_vec(),
                plan_d.next_discharge_mw().to_vec(),
            );
            apply_rates(pd.storage.as_mut().unwrap(), &cd, &dd);
            let (cb, db) = (
                plan_b.next_charge_mw().to_vec(),
                plan_b.next_discharge_mw().to_vec(),
            );
            apply_rates(pb.storage.as_mut().unwrap(), &cb, &db);
        }
        assert_eq!(banded.warm_solves(), 5, "banded must stay warm");
    }

    #[test]
    fn storage_warm_steps_match_a_cold_controller() {
        let mut warm = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.0, 2.2]);
        problem.storage = Some(test_storage(2));
        for step in 0..6 {
            let plan = warm.plan(&problem).unwrap();
            let mut cold = MpcController::new(MpcConfig::default());
            let cold_plan = cold.plan(&problem).unwrap();
            for (w, c) in plan.next_input().iter().zip(cold_plan.next_input()) {
                assert!((w - c).abs() < 1e-4, "step {step}: {w} vs {c}");
            }
            for j in 0..2 {
                let a = plan.next_charge_mw()[j] - plan.next_discharge_mw()[j];
                let b = cold_plan.next_charge_mw()[j] - cold_plan.next_discharge_mw()[j];
                assert!((a - b).abs() < 1e-6, "step {step}: {a} vs {b}");
            }
            problem.prev_input = plan.next_input().to_vec();
            let (c, d) = (
                plan.next_charge_mw().to_vec(),
                plan.next_discharge_mw().to_vec(),
            );
            apply_rates(problem.storage.as_mut().unwrap(), &c, &d);
        }
        assert_eq!(warm.warm_solves(), 5);
    }

    #[test]
    fn battery_outage_forces_zero_rates() {
        // Zero rate caps (the fault-matrix battery-outage kind) pin the
        // rates without a structure rebuild and the plan degrades to the
        // storage-free allocation.
        let mut st = test_storage(2);
        st.max_charge_mw = vec![0.0, 0.0];
        st.max_discharge_mw = vec![0.0, 0.0];
        let mut with = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        with.storage = Some(st);
        let without = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        let mut ca = MpcController::new(MpcConfig::default());
        let mut cb = MpcController::new(MpcConfig::default());
        let plan = ca.plan(&with).unwrap();
        let base = cb.plan(&without).unwrap();
        assert_eq!(plan.next_charge_mw(), &[0.0, 0.0]);
        assert_eq!(plan.next_discharge_mw(), &[0.0, 0.0]);
        for (a, b) in plan.next_input().iter().zip(base.next_input()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn sharded_backend_rejects_storage() {
        let mut controller = MpcController::new(MpcConfig {
            backend: SolverBackend::sharded(2),
            ..MpcConfig::default()
        });
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        problem.storage = Some(test_storage(2));
        assert!(matches!(
            controller.plan(&problem),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn storage_dimension_validation() {
        let mut controller = MpcController::new(MpcConfig::default());
        let good = {
            let mut p = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
            p.storage = Some(test_storage(2));
            p
        };
        assert!(controller.plan(&good).is_ok());
        let mut bad = good.clone();
        bad.storage.as_mut().unwrap().soc_mwh = vec![1.0];
        assert!(controller.plan(&bad).is_err());
        let mut bad = good.clone();
        bad.storage.as_mut().unwrap().charge_efficiency[0] = 1.5;
        assert!(controller.plan(&bad).is_err());
        let mut bad = good.clone();
        bad.storage.as_mut().unwrap().soc_mwh[0] = 99.0; // above capacity
        assert!(controller.plan(&bad).is_err());
        let mut bad = good;
        bad.storage.as_mut().unwrap().dt_hours = 0.0;
        assert!(controller.plan(&bad).is_err());
    }

    #[test]
    fn storage_structure_cache_survives_outage_but_not_detach() {
        // Zeroing the caps (outage) must reuse the cached skeleton;
        // detaching storage entirely must rebuild and still solve.
        let mut controller = MpcController::new(MpcConfig::default());
        let mut problem = two_idc_problem([10_000.0, 0.0], [1.2, 2.28]);
        problem.storage = Some(test_storage(2));
        controller.plan(&problem).unwrap();
        let st = problem.storage.as_mut().unwrap();
        st.max_charge_mw = vec![0.0, 0.0];
        st.max_discharge_mw = vec![0.0, 0.0];
        let plan = controller.plan(&problem).unwrap();
        assert!(plan.warm_started(), "outage must not force a cold solve");
        problem.storage = None;
        let plan = controller.plan(&problem).unwrap();
        assert!(!plan.warm_started(), "layout change must drop the warm state");
        let total: f64 = plan.next_input().iter().sum();
        assert!((total - 10_000.0).abs() < 1e-6);
    }
}
