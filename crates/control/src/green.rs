//! Green-aware reference optimization (paper Sec. II, citing Liu et
//! al. \[6\].).
//!
//! Extends the eq. 46 LP with per-region renewable generation: power drawn
//! up to the renewable profile is free ("green"), the excess ("brown")
//! pays the LMP. The LP then chases *momentarily green* regions in
//! addition to cheap ones — answering \[6\]'s question of whether
//! geographic load balancing can reduce brown-energy use.
//!
//! Formulation (variables `λij`, `m_j`, `brown_j`):
//!
//! ```text
//! min  Σ_j Pr_j·brown_j + ε·Σ_j Pr_j·P_j(λ_j, m_j)
//! s.t. P_j(λ_j, m_j) − brown_j ≤ G_j          (brown covers the excess)
//!      Σ_j λij = L_i,  λ_j ≤ µ_j m_j − 1/D_j,  m_j ≤ M_j,  all ≥ 0
//! ```
//!
//! The `ε` term (ε = 1e-3) breaks the degeneracy of fully-green regions
//! (otherwise any `m` between the required count and `M_j` would be
//! optimal) while leaving the brown-cost ordering untouched.

use idc_datacenter::idc::IdcConfig;
use idc_market::renewable::RenewableProfile;
use idc_opt::linprog::LinearProgram;
use idc_opt::{Error, Result};

/// Tie-break weight on total power (see module docs).
const EPSILON: f64 = 1e-3;

/// The green-aware optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct GreenReferenceSolution {
    allocation: Vec<f64>,
    servers: Vec<f64>,
    power_mw: Vec<f64>,
    green_mw: Vec<f64>,
    brown_mw: Vec<f64>,
    brown_cost_rate: f64,
}

impl GreenReferenceSolution {
    /// Workload split, IDC-major flat `λij`.
    pub fn allocation(&self) -> &[f64] {
        &self.allocation
    }

    /// Continuous-relaxed server counts.
    pub fn servers(&self) -> &[f64] {
        &self.servers
    }

    /// Per-IDC total power (MW).
    pub fn power_mw(&self) -> &[f64] {
        &self.power_mw
    }

    /// Per-IDC renewable-covered power (MW).
    pub fn green_mw(&self) -> &[f64] {
        &self.green_mw
    }

    /// Per-IDC grid (brown) power (MW).
    pub fn brown_mw(&self) -> &[f64] {
        &self.brown_mw
    }

    /// Brown-energy cost rate ($/h).
    pub fn brown_cost_rate(&self) -> f64 {
        self.brown_cost_rate
    }

    /// Fleet-wide fraction of power covered by renewables (0–1).
    pub fn green_fraction(&self) -> f64 {
        let total: f64 = self.power_mw.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.green_mw.iter().sum::<f64>() / total
    }

    /// Per-IDC workload totals.
    pub fn idc_workloads(&self, num_portals: usize) -> Vec<f64> {
        self.allocation
            .chunks(num_portals)
            .map(|b| b.iter().sum())
            .collect()
    }
}

/// Solves the green-aware reference LP at `hour` (profiles are hourly).
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] on inconsistent input lengths.
/// * [`Error::Infeasible`] when the workload exceeds fleet capacity.
pub fn green_aware_reference(
    idcs: &[IdcConfig],
    offered: &[f64],
    prices: &[f64],
    renewables: &[RenewableProfile],
    hour: f64,
) -> Result<GreenReferenceSolution> {
    let n = idcs.len();
    let c = offered.len();
    if n == 0 || c == 0 || prices.len() != n || renewables.len() != n {
        return Err(Error::DimensionMismatch {
            what: format!(
                "{n} IDCs, {c} portals, {} prices, {} renewable profiles",
                prices.len(),
                renewables.len()
            ),
        });
    }

    // Variables: λ (NC, IDC-major), m (N), brown (N).
    let nv = n * c + 2 * n;
    let b1 = |j: usize| idcs[j].pue() * idcs[j].server().b1() / 1e6;
    let b0 = |j: usize| idcs[j].pue() * idcs[j].server().b0() / 1e6;

    let mut cost = vec![0.0; nv];
    for j in 0..n {
        for i in 0..c {
            cost[j * c + i] = EPSILON * prices[j].abs() * b1(j);
        }
        cost[n * c + j] = EPSILON * prices[j].abs() * b0(j);
        cost[n * c + n + j] = prices[j].max(0.0); // brown pays the LMP
    }
    let mut lp = LinearProgram::minimize(cost);

    for i in 0..c {
        let mut row = vec![0.0; nv];
        for j in 0..n {
            row[j * c + i] = 1.0;
        }
        lp = lp.equality(row, offered[i]);
    }
    for (j, idc) in idcs.iter().enumerate() {
        // Capacity: Σ λij − µ m ≤ −1/D.
        let mut row = vec![0.0; nv];
        for i in 0..c {
            row[j * c + i] = 1.0;
        }
        row[n * c + j] = -idc.service_rate();
        lp = lp.inequality(row, -1.0 / idc.latency_bound());
        // Installed bound.
        let mut row = vec![0.0; nv];
        row[n * c + j] = 1.0;
        lp = lp.inequality(row, idc.total_servers() as f64);
        // Brown covers the excess: b1 λ + b0 m − brown ≤ G.
        let mut row = vec![0.0; nv];
        for i in 0..c {
            row[j * c + i] = b1(j);
        }
        row[n * c + j] = b0(j);
        row[n * c + n + j] = -1.0;
        lp = lp.inequality(row, renewables[j].available_at_hour(hour));
    }

    let x = lp.solve()?.into_x();
    let allocation = x[..n * c].to_vec();
    let servers = x[n * c..n * c + n].to_vec();
    let brown_mw = x[n * c + n..].to_vec();
    let power_mw: Vec<f64> = (0..n)
        .map(|j| {
            let lam: f64 = allocation[j * c..(j + 1) * c].iter().sum();
            b1(j) * lam + b0(j) * servers[j]
        })
        .collect();
    let green_mw: Vec<f64> = power_mw
        .iter()
        .zip(&brown_mw)
        .map(|(&p, &b)| (p - b).max(0.0))
        .collect();
    let brown_cost_rate = brown_mw
        .iter()
        .zip(prices)
        .map(|(&b, &pr)| b * pr.max(0.0))
        .sum();
    Ok(GreenReferenceSolution {
        allocation,
        servers,
        power_mw,
        green_mw,
        brown_mw,
        brown_cost_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idc_datacenter::idc::paper_idcs;

    const LOADS: [f64; 5] = [30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0];
    const PRICES_6H: [f64; 3] = [43.26, 30.26, 19.06];

    fn no_renewables() -> Vec<RenewableProfile> {
        vec![RenewableProfile::none(); 3]
    }

    #[test]
    fn without_renewables_it_matches_the_plain_lp() {
        let idcs = paper_idcs();
        let plain = crate::reference::optimal_reference(&idcs, &LOADS, &PRICES_6H).unwrap();
        let green =
            green_aware_reference(&idcs, &LOADS, &PRICES_6H, &no_renewables(), 6.0).unwrap();
        // Same allocation (brown = total power, same objective up to scale).
        for (a, b) in plain.allocation().iter().zip(green.allocation()) {
            assert!((a - b).abs() < 1.0, "{a} vs {b}");
        }
        assert!(green.green_fraction() < 1e-9);
        assert!((green.brown_cost_rate() - plain.cost_rate_per_hour()).abs() < 1.0);
    }

    #[test]
    fn abundant_solar_attracts_load_at_noon() {
        let idcs = paper_idcs();
        // Minnesota is expensive per request, but give it a huge solar farm.
        let renewables = vec![
            RenewableProfile::none(),
            RenewableProfile::solar(15.0).unwrap(),
            RenewableProfile::none(),
        ];
        let sol = green_aware_reference(&idcs, &LOADS, &PRICES_6H, &renewables, 13.0).unwrap();
        // Minnesota absorbs far more than its price rank would give it.
        let lam = sol.idc_workloads(5);
        assert!(lam[1] > 40_000.0, "MN got {}", lam[1]);
        assert!(sol.green_fraction() > 0.5, "{}", sol.green_fraction());
        // And the constraint holds: green ≤ available.
        assert!(sol.green_mw()[1] <= 15.0 + 1e-9);
        // Brown + green = total.
        for j in 0..3 {
            assert!((sol.green_mw()[j] + sol.brown_mw()[j] - sol.power_mw()[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn solar_at_midnight_changes_nothing() {
        let idcs = paper_idcs();
        let renewables = vec![
            RenewableProfile::none(),
            RenewableProfile::solar(15.0).unwrap(),
            RenewableProfile::none(),
        ];
        let at_noon = green_aware_reference(&idcs, &LOADS, &PRICES_6H, &renewables, 13.0).unwrap();
        let at_night = green_aware_reference(&idcs, &LOADS, &PRICES_6H, &renewables, 2.0).unwrap();
        assert!(at_night.green_fraction() < 1e-9);
        assert!(at_noon.green_fraction() > at_night.green_fraction());
    }

    #[test]
    fn brown_cost_never_exceeds_plain_cost() {
        // Adding free green energy can only reduce the paid (brown) cost.
        let idcs = paper_idcs();
        let plain = crate::reference::optimal_reference(&idcs, &LOADS, &PRICES_6H).unwrap();
        let renewables = vec![
            RenewableProfile::wind(2.0).unwrap(),
            RenewableProfile::wind(1.0).unwrap(),
            RenewableProfile::solar(6.0).unwrap(),
        ];
        for hour in [0.0, 6.0, 13.0, 20.0] {
            let green =
                green_aware_reference(&idcs, &LOADS, &PRICES_6H, &renewables, hour).unwrap();
            assert!(
                green.brown_cost_rate() <= plain.cost_rate_per_hour() + 1e-6,
                "hour {hour}: {} > {}",
                green.brown_cost_rate(),
                plain.cost_rate_per_hour()
            );
        }
    }

    #[test]
    fn dimensions_are_validated() {
        let idcs = paper_idcs();
        assert!(matches!(
            green_aware_reference(&idcs, &LOADS, &PRICES_6H, &[RenewableProfile::none()], 6.0),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn overload_is_infeasible() {
        let idcs = paper_idcs();
        assert!(matches!(
            green_aware_reference(&idcs, &[150_000.0], &PRICES_6H, &no_renewables(), 6.0),
            Err(Error::Infeasible)
        ));
    }
}
