//! Feedback-control substrate for the `idc-mpc` workspace.
//!
//! Implements Sec. IV of the ICDCS 2012 paper:
//!
//! * [`statespace`] — the continuous-time electricity-cost model
//!   `Ẋ = AX + BU + FV`, `Y = WX` with state
//!   `X = [C̄, E₁, …, E_N]` (paper eq. 19–20) and the controllability test
//!   of Sec. IV-C,
//! * [`condense`] — the stacked prediction operators `Θ`, `Ξ`, `Ω̄` of
//!   eq. 39–41, built generically from any discretized pair and verified
//!   against step-by-step simulation,
//! * [`discretize`] — zero-order-hold discretization `Φ = e^{A·Ts}`,
//!   `Ḡ = ∫e^{As}B ds`, `Γ = ∫e^{As}F ds` (paper eq. 23–25) via an
//!   augmented matrix exponential,
//! * [`mpc`] — the condensed constrained MPC of eq. 37–45: tracking the
//!   (possibly budget-clamped) per-IDC power reference under workload
//!   conservation, latency/capacity and non-negativity constraints, with
//!   the input-rate penalty that smooths power demand,
//! * [`sharded`] — the regional decomposition of that MPC: per-shard
//!   banded subproblems coordinated by exchange ADMM on workload
//!   conservation and projected dual ascent on the peak-power budget,
//! * [`green`] — the green-aware reference LP (renewables-first load
//!   placement, the Liu et al. \[6\] extension),
//! * [`mod@reference`] — the control-reference optimizer (paper eq. 46, the
//!   Rao et al. INFOCOM'10 LP) and the peak-shaving clamp
//!   `P_r = min(P_ro, P_rb)` of Sec. IV-D,
//! * [`stability`] — empirical closed-loop contraction checks in the
//!   spirit of the constrained-MPC stability argument (Mayne et al. \[21\].).
//!
//! # Example: one MPC step on the paper's fleet
//!
//! ```
//! use idc_control::mpc::{MpcConfig, MpcController, MpcProblem};
//!
//! # fn main() -> Result<(), idc_opt::Error> {
//! let mut controller = MpcController::new(MpcConfig::default());
//! // One portal (10 000 req/s), two IDCs; start fully on IDC 0, reference
//! // wants everything on IDC 1.
//! let problem = MpcProblem {
//!     b1_mw: vec![67.5e-6, 108.0e-6],
//!     b0_mw: vec![150.0e-6, 150.0e-6],
//!     servers_on: vec![8_000, 10_000],
//!     capacities: vec![15_000.0, 11_500.0],
//!     prev_input: vec![10_000.0, 0.0],
//!     workload_forecast: vec![vec![10_000.0]; 3],
//!     power_reference_mw: vec![vec![1.2, 2.28]; 5],
//!     tracking_multiplier: MpcProblem::uniform_tracking(2),
//!     storage: None,
//! };
//! let plan = controller.plan(&problem)?;
//! // Workload stays conserved after the step.
//! let total: f64 = plan.next_input().iter().sum();
//! assert!((total - 10_000.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod condense;
pub mod discretize;
pub mod green;
pub mod mpc;
pub mod reference;
pub mod riccati;
pub mod sharded;
pub mod stability;
pub mod statespace;
