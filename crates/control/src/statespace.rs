//! The continuous-time electricity-cost state-space model (paper Sec. IV-A).
//!
//! State `X = [C̄, E₁, …, E_N]ᵀ` (accumulated total cost and per-IDC
//! accumulated energy), input `U = [λij] ∈ ℝ^{NC}` (IDC-major), exogenous
//! `V = [m₁, …, m_N]ᵀ` (servers ON):
//!
//! ```text
//! Ẋ = A X + B U + F V        Y = W X
//! ```
//!
//! with `A` carrying the regional prices `Pr_j` in its first row (so
//! `C̄̇ = Σ_j Pr_j E_j`), `B` injecting `b₁` into each `Ė_j` for that IDC's
//! portal block, `F` injecting `b₀·m_j`, and `W = [1, 0, …, 0]` reading the
//! cost (paper eq. 19–20). `A` is nilpotent of index 2, which makes the ZOH
//! discretization exact: `Φ = I + A·Ts`.

use idc_linalg::Matrix;

/// The quadruple `(A, B, F, W)` of paper eq. 19–20.
#[derive(Debug, Clone, PartialEq)]
pub struct CostStateSpace {
    num_idcs: usize,
    num_portals: usize,
    a: Matrix,
    b: Matrix,
    f: Matrix,
    w: Matrix,
}

impl CostStateSpace {
    /// Builds the model for `N = prices.len()` IDCs and `num_portals`
    /// portals, with per-IDC marginal power `b1[j]` (MW per req/s) and
    /// idle power `b0[j]` (MW per server).
    ///
    /// Returns `None` when the lengths disagree, any array is empty, or
    /// `num_portals == 0`.
    pub fn new(prices: &[f64], b1: &[f64], b0: &[f64], num_portals: usize) -> Option<Self> {
        let n = prices.len();
        if n == 0 || b1.len() != n || b0.len() != n || num_portals == 0 {
            return None;
        }
        let dim = n + 1;
        let mut a = Matrix::zeros(dim, dim);
        for (j, &p) in prices.iter().enumerate() {
            a[(0, j + 1)] = p;
        }
        // B: row 1+j has b1[j] in the portal block of IDC j (IDC-major U).
        let mut b = Matrix::zeros(dim, n * num_portals);
        for j in 0..n {
            for i in 0..num_portals {
                b[(j + 1, j * num_portals + i)] = b1[j];
            }
        }
        let mut f = Matrix::zeros(dim, n);
        for j in 0..n {
            f[(j + 1, j)] = b0[j];
        }
        let mut w = Matrix::zeros(1, dim);
        w[(0, 0)] = 1.0;
        Some(CostStateSpace {
            num_idcs: n,
            num_portals,
            a,
            b,
            f,
            w,
        })
    }

    /// Number of IDCs `N`.
    pub fn num_idcs(&self) -> usize {
        self.num_idcs
    }

    /// Number of portals `C`.
    pub fn num_portals(&self) -> usize {
        self.num_portals
    }

    /// State dimension `N + 1`.
    pub fn state_dim(&self) -> usize {
        self.num_idcs + 1
    }

    /// The `A` matrix.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The `B` matrix.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The `F` matrix.
    pub fn f(&self) -> &Matrix {
        &self.f
    }

    /// The `W` output matrix.
    pub fn w(&self) -> &Matrix {
        &self.w
    }

    /// The controllability matrix `[B, AB, …, A^N B]` of Sec. IV-C.
    pub fn controllability_matrix(&self) -> Matrix {
        let mut blocks = self.b.clone();
        let mut power = self.b.clone();
        for _ in 0..self.num_idcs {
            power = self.a.mul_mat(&power).expect("shapes fixed at build");
            blocks = Matrix::hstack(&blocks, &power).expect("row counts match");
        }
        blocks
    }

    /// The workload-loop controllability condition of Sec. IV-C:
    /// `rank [B AB … A^N B] = N + 1`, "ensured since Pr_j > 0 and b₁ > 0".
    pub fn is_controllable(&self) -> bool {
        self.controllability_matrix().rank(f64::EPSILON) == self.state_dim()
    }

    /// Continuous-time derivative `Ẋ = AX + BU + FV`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the model dimensions.
    pub fn derivative(&self, x: &[f64], u: &[f64], v: &[f64]) -> Vec<f64> {
        let ax = self.a.mul_vec(x).expect("state dim");
        let bu = self.b.mul_vec(u).expect("input dim");
        let fv = self.f.mul_vec(v).expect("exogenous dim");
        ax.iter()
            .zip(&bu)
            .zip(&fv)
            .map(|((a, b), f)| a + b + f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like() -> CostStateSpace {
        // Prices in $/MWh, b1 in MW per req/s, b0 in MW per server.
        CostStateSpace::new(
            &[43.26, 30.26, 19.06],
            &[67.5e-6, 108.0e-6, 77.142857e-6],
            &[150e-6, 150e-6, 150e-6],
            5,
        )
        .expect("valid dimensions")
    }

    #[test]
    fn constructor_validates() {
        assert!(CostStateSpace::new(&[], &[], &[], 5).is_none());
        assert!(CostStateSpace::new(&[1.0], &[1.0, 2.0], &[1.0], 5).is_none());
        assert!(CostStateSpace::new(&[1.0], &[1.0], &[1.0], 0).is_none());
    }

    #[test]
    fn shapes_match_paper_eq_19() {
        let ss = paper_like();
        assert_eq!(ss.a().shape(), (4, 4));
        assert_eq!(ss.b().shape(), (4, 15));
        assert_eq!(ss.f().shape(), (4, 3));
        assert_eq!(ss.w().shape(), (1, 4));
        assert_eq!(ss.state_dim(), 4);
        assert_eq!(ss.num_idcs(), 3);
        assert_eq!(ss.num_portals(), 5);
    }

    #[test]
    fn a_is_nilpotent_of_index_2() {
        let ss = paper_like();
        let a2 = ss.a().mul_mat(ss.a()).unwrap();
        assert_eq!(a2.norm_max(), 0.0);
        assert!(ss.a().norm_max() > 0.0);
    }

    #[test]
    fn structure_of_b_and_f() {
        let ss = paper_like();
        // B row for E_1 (index 1) carries b1[0] over portal block 0.
        for i in 0..5 {
            assert!((ss.b()[(1, i)] - 67.5e-6).abs() < 1e-18);
            assert_eq!(ss.b()[(1, 5 + i)], 0.0);
        }
        // Cost row of B is zero — inputs do not hit the cost directly.
        for c in 0..15 {
            assert_eq!(ss.b()[(0, c)], 0.0);
        }
        assert_eq!(ss.f()[(2, 1)], 150e-6);
        assert_eq!(ss.f()[(2, 0)], 0.0);
    }

    #[test]
    fn paper_fleet_is_controllable() {
        assert!(paper_like().is_controllable());
    }

    #[test]
    fn zero_price_breaks_controllability() {
        // With Pr_j = 0 for every j the cost state is unreachable.
        let ss = CostStateSpace::new(&[0.0, 0.0], &[1e-5, 1e-5], &[1e-6, 1e-6], 2).unwrap();
        assert!(!ss.is_controllable());
    }

    #[test]
    fn derivative_matches_hand_computation() {
        let ss = CostStateSpace::new(&[10.0], &[2.0], &[0.5], 1).unwrap();
        // X = [C̄, E1] = [0, 3]; U = [λ11] = [4]; V = [m1] = [6].
        let dx = ss.derivative(&[0.0, 3.0], &[4.0], &[6.0]);
        // C̄̇ = 10·E1 = 30; Ė1 = 2·4 + 0.5·6 = 11.
        assert_eq!(dx, vec![30.0, 11.0]);
    }
}
