//! Sharded (multi-region) backend for the condensed MPC.
//!
//! The y-space Hessian of [`crate::riccati`] is block-diagonal across IDCs —
//! tracking and smoothing couple portals *within* one IDC only — so a
//! contiguous IDC range `[jlo, jhi)` owns a contiguous per-stage variable
//! slice whose restricted Hessian is **exact**. The fleet therefore splits
//! into regional shards whose subproblems share no variables; only two
//! structures couple them:
//!
//! * **workload conservation** (paper eq. 45): each `(stage, portal)` row
//!   sums one entry from every IDC, and
//! * **the global peak-power budget** (paper eq. 31): an optional cap on
//!   total fleet power per stage.
//!
//! Conservation is coordinated by exchange ADMM
//! ([`idc_shard::consensus`]): each shard solves its *local* banded QP —
//! capacity and non-negativity rows only, with the stage-diagonal penalty
//! `ρ·aaᵀ` folded into its block-tridiagonal Hessian once at build time —
//! against a per-round gradient target, and the coordinator exchanges only
//! portal sums and multipliers. The peak budget is priced by projected dual
//! ascent on the per-stage total power, which never touches the factored
//! Hessians.
//!
//! The outer loop stops on two residuals in workload units: the primal
//! conservation gap and the max *per-shard* portal-sum movement (the honest
//! dual residual — the average's movement is blind to zero-sum reallocation
//! across shards). The update itself runs over-relaxed (α = 1.6) on
//! shard-local projection state, and when the dual residual lags the primal
//! by an order of magnitude a one-sided balancer halves ρ, which pulls the
//! near-flat transport-fiber directions (portal splits that tracking cannot
//! see) through their otherwise `1 − ε/ρ` proximal crawl. Behind the strict
//! tolerance test sits a windowed diminishing-returns stop: a slowly
//! crawling conservation gap inside the stall band is accepted once the
//! dual is at tolerance, because the gap is repaired exactly after the
//! loop while a still-moving dual hides real suboptimality.
//!
//! Warm starts carry **both** levels across control steps: each shard seeds
//! its active set from the (globally indexed, receding-horizon-shifted)
//! previous working set, and the outer multipliers resume from the previous
//! step's consensus duals. At a steady-state step both barely move, so the
//! outer loop typically certifies convergence in a handful of rounds of
//! near-instant inner solves.
//!
//! Determinism: shard subproblems run on a persistent per-solve worker
//! pool — each worker owns a contiguous ascending shard range and processes
//! one broadcast command per round, so a round costs two channel handoffs
//! per worker instead of a thread spawn/join — and every coordinator
//! reduction is a sequential loop in fixed shard order over the workers'
//! replies, so plans are bitwise identical across thread counts (the
//! `threads ≤ 1` inline path runs the same per-cell code).

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;

use idc_linalg::banded::BlockTridiag;
use idc_obs::SolveStats;
use idc_opt::banded_qp::{BandedQp, BandedQpWorkspace, SparseRow};
use idc_opt::{Error, Result};
use idc_shard::{run_shards, ExchangeConsensus, OuterStats, Partition, PeakDual};

use crate::mpc::{MpcConfig, MpcProblem};

/// Worst per-family constraint violations of a rejected warm-start point.
///
/// Attached to plans (and streamed as a `warm_start_rejected` anomaly by the
/// policy layer) whenever a warm solve silently would have fallen back to a
/// cold one — the breakdown says *which* constraint family the shifted
/// point violated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WarmRejection {
    /// Shard that rejected its warm point (0 for the monolithic backends).
    pub shard: usize,
    /// Worst workload-conservation equality violation (req/s).
    pub conservation: f64,
    /// Worst capacity overshoot (req/s).
    pub capacity: f64,
    /// Worst non-negativity undershoot (req/s).
    pub nonnegativity: f64,
    /// Worst storage-family violation — charge/discharge rate boxes and
    /// SoC bounds, in the controller's req/s-equivalent rate units (0.0
    /// for problems without storage; the sharded backend never carries
    /// storage).
    pub storage: f64,
}

impl WarmRejection {
    /// The largest violation across families.
    pub fn worst(&self) -> f64 {
        self.conservation
            .max(self.capacity)
            .max(self.nonnegativity)
            .max(self.storage)
    }
}

/// One regional subproblem: a restricted banded QP plus its per-round
/// buffers. Everything a round's worker thread touches lives in the cell,
/// so shard solves share no mutable state.
#[derive(Debug, Clone)]
struct ShardCell {
    /// Owned IDC range `[jlo, jhi)`.
    jlo: usize,
    jhi: usize,
    /// Restricted banded QP: exact local Hessian + `ρ·aaᵀ` penalty,
    /// capacity and non-negativity rows only.
    qp: BandedQp,
    ws: BandedQpWorkspace,
    /// Per-step tracking gradient for the local variables.
    base_grad: Vec<f64>,
    /// Per-round full gradient (base − ρ·Aᵀv + μ-priced power).
    grad: Vec<f64>,
    /// Per-round coordinator target `v_s` (one entry per coupling row).
    v: Vec<f64>,
    /// Local relaxed projection `z_s` (the shard-owned over-relaxation
    /// state; `Σ_s z_s = b` after every update). Re-seeded from the warm
    /// sums each step by the round-zero `α = 1` update.
    z: Vec<f64>,
    /// Current local iterate in cumulative y-space.
    x: Vec<f64>,
    /// Local portal sums `w_s = A_s x_s`.
    w: Vec<f64>,
    /// Previous round's portal sums, for the per-shard dual movement.
    w_prev: Vec<f64>,
    /// This round's movement `‖w − w_prev‖∞`. The outer dual residual is
    /// the max over shards: unlike the average's movement it also sees
    /// reallocation that sums to zero across shards (the near-flat
    /// transport-fiber directions tracking is blind to), so termination
    /// cannot fire while shards are still trading workload.
    move_inf: f64,
    /// Local per-stage marginal power `q_s[t] = Σ_j b₁_j·Σ_i y_t[j,i]`.
    q: Vec<f64>,
    /// Local inequality rhs (capacity rows then non-negativity rows).
    in_rhs: Vec<f64>,
    /// Penalty-free values of the diagonal Hessian entries the consensus
    /// penalty touches, one per `(stage, local IDC)` — all portals share
    /// the value. Penalty retunes rewrite the touched entries *absolutely*
    /// as `base + ρ` (off-diagonal entries are `ρ` alone), so the Hessian
    /// bits are a pure function of the current ρ. Incremental `+= Δρ`
    /// patches would accumulate rounding across retunes, and a
    /// checkpoint-restored skeleton (rebuilt fresh at ρ₀) would then
    /// diverge from the in-memory run in the last bits.
    penalty_base: Vec<f64>,
    /// Local active-set seed for the next inner warm start.
    seed: Vec<usize>,
    /// Accumulated inner-solver stats for the current step.
    stats: SolveStats,
    iterations: u64,
    /// Warm starts rejected this step (each forced a local cold solve).
    fallbacks: u64,
    /// Violation breakdown of the first rejection this step.
    rejection: Option<WarmRejection>,
    /// First unrecoverable inner-solver error this step.
    error: Option<Error>,
}

impl ShardCell {
    fn num_local_idcs(&self) -> usize {
        self.jhi - self.jlo
    }
}

/// Per-round broadcast from the coordinator to the round workers.
#[derive(Clone)]
struct RoundCmd {
    /// Relaxed average gap `g = α·(w̄ − b/S)` from the coordinator's last
    /// dual update; each worker folds it into its local projection
    /// (`z_s ← α·w_s + (1−α)·z_s − g`) and target (`v_s = z_s − u`).
    gap: Arc<Vec<f64>>,
    /// Scaled consensus dual `u` after the same update.
    u: Arc<Vec<f64>>,
    /// Over-relaxation factor for this round's `z_s` update (1 on round
    /// zero, which seeds `z_s` from the warm sums).
    alpha: f64,
    /// Peak-budget multipliers, when a budget is configured.
    peak_mu: Option<Arc<Vec<f64>>>,
    /// Absolute penalty this round's gradients use; workers patch their
    /// cells' Hessians lazily when it differs from the previous round's.
    rho_abs: f64,
    /// Fault injection: re-solve against the previous round's stale target.
    stalled: bool,
    /// Round zero: a rejected warm start may fall back to a local cold
    /// solve instead of surfacing as infeasible.
    cold_first: bool,
}

/// One shard's report back to the coordinator after a round.
struct CellRound {
    /// Portal sums `w_s = A_s x_s` at the new iterate.
    w: Vec<f64>,
    /// Per-stage marginal power at the new iterate.
    q: Vec<f64>,
    /// This round's movement `‖w − w_prev‖∞`.
    move_inf: f64,
}

/// One worker's reply for its whole cell range, in ascending shard order.
struct RoundReply {
    cells: Vec<CellRound>,
    any_error: bool,
}

/// A round's gathered results: per-shard reports in fixed shard order
/// regardless of how many workers produced them, so every coordinator
/// reduction is bitwise independent of the thread count.
struct RoundData {
    cells: Vec<CellRound>,
    any_error: bool,
}

/// How a round's shard solves execute. Both variants run the same per-cell
/// code ([`ShardCell::solve_round`]) over cells in ascending shard order.
enum RoundRunner<'a> {
    /// `threads ≤ 1`: the coordinator thread solves every cell itself.
    Inline {
        cells: &'a mut [ShardCell],
        cur_rho: f64,
        c: usize,
        beta2: usize,
        b1_mw: &'a [f64],
    },
    /// Persistent round workers, spawned once per solve: each owns a
    /// contiguous ascending cell range and blocks on its command channel,
    /// so a round costs two channel handoffs per worker instead of the
    /// thread spawn/join that previously dominated small-fleet rounds.
    Pool {
        cmd_txs: Vec<Sender<RoundCmd>>,
        reply_rxs: Vec<Receiver<RoundReply>>,
    },
}

impl RoundRunner<'_> {
    /// Runs one round over every cell and gathers the per-shard reports in
    /// shard order.
    fn round(&mut self, cmd: &RoundCmd) -> RoundData {
        match self {
            RoundRunner::Inline {
                cells,
                cur_rho,
                c,
                beta2,
                b1_mw,
            } => {
                let changed = cmd.rho_abs != *cur_rho;
                *cur_rho = cmd.rho_abs;
                let mut out = Vec::with_capacity(cells.len());
                for cell in cells.iter_mut() {
                    if changed {
                        cell.set_penalty_rho(cmd.rho_abs, *c, *beta2);
                    }
                    cell.solve_round(*c, *beta2, b1_mw, cmd);
                    out.push(cell.round_report());
                }
                RoundData {
                    any_error: cells.iter().any(|cell| cell.error.is_some()),
                    cells: out,
                }
            }
            RoundRunner::Pool { cmd_txs, reply_rxs } => {
                for tx in cmd_txs.iter() {
                    // A send only fails when a worker panicked; the panic
                    // resurfaces at scope join.
                    let _ = tx.send(cmd.clone());
                }
                let mut cells = Vec::new();
                let mut any_error = false;
                for rx in reply_rxs.iter() {
                    match rx.recv() {
                        Ok(reply) => {
                            any_error |= reply.any_error;
                            cells.extend(reply.cells);
                        }
                        Err(_) => any_error = true,
                    }
                }
                RoundData { cells, any_error }
            }
        }
    }
}

// Residual balancing (one-sided variant of Boyd et al. §3.4.1): when the
// dual residual lags the primal by 10×, retune ρ *down* by 2×. The
// near-flat transport-fiber directions contract like `1 − ε/ρ`, so a
// lagging dual (shards still trading workload the conservation rows don't
// see) is rescued by a smaller penalty. The symmetric up-move is
// deliberately absent: measurements show it traps the loop — a raised ρ
// freezes the flat directions at a 1e-4-scale dual plateau the stall band
// then rejects — while the primal needs no help (the exchange projection
// drives conservation directly). Retunes repatch and refactor the shard
// Hessians, so a cooldown and a hard count keep that churn a small
// fraction of the round budget.
const BALANCE_MU: f64 = 10.0;
const BALANCE_TAU: f64 = 2.0;
const BALANCE_COOLDOWN: usize = 16;
const BALANCE_MAX_RETUNES: u64 = 4;
const BALANCE_SPAN: f64 = 1024.0;

/// Exchange-ADMM over-relaxation factor (Boyd et al. §3.4.3). The slow
/// outer directions here are the near-flat transport fibers, whose plain
/// update contracts like `1 − ε/ρ`; over-relaxation multiplies that rate by
/// roughly `α`, and 1.6 is the conservative end of the 1.5–1.8 range the
/// literature recommends.
const RELAX_ALPHA: f64 = 1.6;

/// Diminishing-returns stop: once the combined residual sits within
/// [`STALL_SLACK`]× of the tolerance, the loop watches its decay *rate*
/// over a sliding [`STALL_WINDOW`]-round window and accepts as soon as the
/// window improves by less than [`STALL_RATE`]⁻¹ (i.e. fewer than one
/// octave per window). That covers both true plateaus — the inner solver's
/// relative stationarity tolerance puts a noise floor under the portal
/// sums, each of which aggregates O(N) variables solved to `TOL·(1+‖x‖)` —
/// and the near-flat transport-fiber tail, whose `1 − ε/ρ` contraction can
/// crawl for hundreds of rounds inside the band while the plan itself is
/// long since settled. A plain no-new-best patience counter catches
/// neither: slow geometric descent posts a "new best" every few rounds
/// forever. The residual left behind is repaired exactly by the
/// conservation projection after the loop, so the band costs well under
/// the cross-backend equivalence gate in plan cost.
const STALL_WINDOW: usize = 16;
const STALL_SLACK: f64 = 100.0;
const STALL_RATE: f64 = 0.5;
/// A round "improves" the peak violation only when it beats the previous
/// best by this factor — jitter must not reset the ascent-gain patience.
const STALL_IMPROVEMENT: f64 = 0.9;

// Peak-ascent gain schedule. The budget multipliers climb by
// `κ·(P_t − cap)` per round, so a small κ (tuned not to destabilise the
// consensus rows) needs geometrically many rounds to price a deep
// violation — the dominant round sink on steps where the cap binds hard.
// When the worst violation has not improved for [`PEAK_PATIENCE`] rounds
// the ascent step doubles, up to [`PEAK_GAIN_MAX`]× the base step; the
// gain is loop-local, so every solve restarts from the conservatively
// tuned base.
const PEAK_PATIENCE: usize = 4;
const PEAK_GAIN_MAX: f64 = 256.0;

/// The coordinator side of the exchange-ADMM outer loop, shared by the
/// inline and pooled runners: broadcast the target correction and prices,
/// reduce the replies in shard order, advance the duals, balance ρ.
///
/// Returns the outer stats plus the absolute penalty left baked into the
/// cell Hessians — balancing retunes the dual scaling immediately but
/// reaches the cells lazily at the next dispatch, so the two diverge when
/// the loop exits right after a retune.
#[allow(clippy::too_many_arguments)]
fn run_outer_loop(
    runner: &mut RoundRunner<'_>,
    consensus: &mut ExchangeConsensus,
    peak: &mut Option<PeakDual>,
    rho0_abs: f64,
    peak_step_per_rho: f64,
    max_outer: usize,
    tol: f64,
    step: &ShardedStep<'_>,
    beta2: usize,
) -> (OuterStats, f64) {
    let tol_abs = tol * (1.0 + step.scale.abs());
    let mut outer = OuterStats::default();
    let mut decision_rho = rho0_abs;
    let mut cells_rho = rho0_abs;
    let mut balance_ready = BALANCE_COOLDOWN;
    // Ring buffer of combined residuals, one slot per window round.
    let mut stall_window = [f64::INFINITY; STALL_WINDOW];
    let mut peak_gain = 1.0f64;
    let mut peak_best = f64::INFINITY;
    let mut peak_since = 0usize;
    for round in 0..max_outer {
        // Fault injection: the coordinator "stalls" on round 1 — the shards
        // re-solve against the previous round's stale targets and the dual
        // update plus residual check are skipped, as if the round's
        // exchange was lost in flight.
        let stalled = step.drop_round && round == 1;
        let cmd = RoundCmd {
            gap: Arc::new(consensus.gap().to_vec()),
            u: Arc::new(consensus.multipliers().to_vec()),
            // Round zero's α = 1 update seeds each shard's z from its warm
            // sums (the plain exchange projection).
            alpha: if round == 0 { 1.0 } else { RELAX_ALPHA },
            peak_mu: peak.as_ref().map(|p| Arc::new(p.multipliers().to_vec())),
            rho_abs: decision_rho,
            stalled,
            cold_first: round == 0,
        };
        let data = runner.round(&cmd);
        cells_rho = decision_rho;
        if data.any_error {
            // The caller surfaces the first cell error; the partial stats
            // are discarded with the failed solve.
            return (outer, cells_rho);
        }
        outer.rounds += 1;
        if stalled {
            outer.stalled_rounds += 1;
            continue;
        }
        let res = {
            let wrefs: Vec<&[f64]> = data.cells.iter().map(|cl| cl.w.as_slice()).collect();
            consensus.advance(&wrefs)
        };
        // The honest dual residual: the max *per-shard* movement. The
        // average's movement (`res.dual`) is blind to reallocation that
        // sums to zero across shards, and exactly those directions are
        // the slow near-flat ones — stopping on the average terminates
        // at consensus-feasible but suboptimal splits.
        let shard_move = data.cells.iter().map(|cl| cl.move_inf).fold(0.0, f64::max);
        outer.primal_residual = res.primal / (1.0 + step.scale.abs());
        outer.dual_residual = shard_move / (1.0 + step.scale.abs());
        let peak_ok = match peak.as_mut() {
            Some(p) => {
                let mut totals = vec![step.base_power_mw; beta2];
                for cl in &data.cells {
                    for t in 0..beta2 {
                        totals[t] += cl.q[t];
                    }
                }
                let worst = p.ascend(&totals);
                let peak_tol = tol * (1.0 + step.base_power_mw.abs());
                if worst > peak_tol {
                    if worst < STALL_IMPROVEMENT * peak_best {
                        peak_best = worst;
                        peak_since = 0;
                    } else {
                        peak_since += 1;
                    }
                    if peak_since >= PEAK_PATIENCE && peak_gain < PEAK_GAIN_MAX {
                        peak_gain *= 2.0;
                        peak_since = 0;
                        peak_best = worst;
                        p.set_step(decision_rho * peak_step_per_rho * peak_gain);
                    }
                } else {
                    // Satisfied (or overshot): drop back toward the base
                    // step so a later re-activation starts gently.
                    if peak_gain > 1.0 {
                        peak_gain = 1.0;
                        p.set_step(decision_rho * peak_step_per_rho);
                    }
                    peak_best = f64::INFINITY;
                    peak_since = 0;
                }
                worst <= peak_tol
            }
            None => true,
        };
        if res.primal <= tol_abs && shard_move <= tol_abs && peak_ok {
            outer.converged = true;
            break;
        }
        let combined = res.primal.max(shard_move);
        let window_ago = stall_window[round % STALL_WINDOW];
        stall_window[round % STALL_WINDOW] = combined;
        if res.primal <= STALL_SLACK * tol_abs
            && shard_move <= tol_abs
            && combined > STALL_RATE * window_ago
            && peak_ok
        {
            // Diminishing returns: descending at under an octave per
            // window with the *dual* already at tolerance — the shards
            // have stopped trading workload, so the slowly-contracting
            // movement bounds the distance to the fixed point by a small
            // multiple of tol, and only the conservation gap (repaired
            // exactly after the loop) is still crawling through the
            // band. The primal-side slack is safe precisely because of
            // that repair; the dual side gets none, since a still-moving
            // dual at contraction rate r leaves `move/(1−r)` ≈ tens of
            // moves of genuine suboptimality behind.
            outer.converged = true;
            break;
        }
        balance_ready = balance_ready.saturating_sub(1);
        // Balancing stays armed exactly while the dual residual is
        // unconverged: that is the regime the down-retune rescues (a
        // `1 − ε/ρ` crawl through the flat directions contracts 2× faster
        // per halving of ρ). Once the shards have stopped trading — the
        // noise-floor regime, where the primal/dual ratio is jitter, not
        // conditioning — retunes are frozen so ρ cannot be dragged around
        // by noise.
        let balance_active = shard_move > tol_abs;
        if balance_active && balance_ready == 0 && outer.rho_retunes < BALANCE_MAX_RETUNES {
            let retuned = if shard_move > BALANCE_MU * res.primal {
                (decision_rho / BALANCE_TAU).max(rho0_abs / BALANCE_SPAN)
            } else {
                decision_rho
            };
            if retuned != decision_rho {
                // The dual rescale and ascent step apply now; the cell
                // Hessians patch lazily at the next round's dispatch.
                consensus.rescale_rho(retuned);
                if let Some(p) = peak.as_mut() {
                    p.set_step(retuned * peak_step_per_rho * peak_gain);
                }
                decision_rho = retuned;
                outer.rho_retunes += 1;
                balance_ready = BALANCE_COOLDOWN;
            }
        }
    }
    (outer, cells_rho)
}

/// Per-step inputs to [`ShardedSkeleton::solve`], borrowed from the
/// controller's scratch buffers.
#[derive(Debug)]
pub struct ShardedStep<'a> {
    /// Conservation targets `b` per `(stage, portal)` row (the monolithic
    /// equality rhs).
    pub eq_rhs: &'a [f64],
    /// Monolithic inequality rhs (capacity rows then non-negativity rows,
    /// global indexing).
    pub in_rhs: &'a [f64],
    /// Tracking rhs rows (`rhs[s·N + j] = reference − current power`).
    pub tracking_rhs: &'a [f64],
    /// Feasibility-repaired warm point in cumulative y-space.
    pub warm_y: &'a [f64],
    /// Previous active set, global (monolithic) indexing, already
    /// receding-horizon-shifted.
    pub seed: &'a [usize],
    /// Persisted outer multipliers (consensus duals then peak duals),
    /// already receding-horizon-shifted; `None` or a stale length solves
    /// with zero multipliers.
    pub multipliers: Option<&'a [f64]>,
    /// Fleet power at the current allocation (MW) — the constant part of
    /// each stage's total power, needed to price the peak budget.
    pub base_power_mw: f64,
    /// Workload scale (req/s) the relative stopping rule is anchored to.
    pub scale: f64,
    /// Fault injection: drop one coordinator round (the shards re-solve but
    /// the dual update and residual check are lost for that round).
    pub drop_round: bool,
    /// Worker threads for the shard runner.
    pub threads: usize,
}

/// The outcome of one sharded solve.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Global cumulative-space solution (conservation repaired exactly).
    pub y: Vec<f64>,
    /// Converged active set, global (monolithic) indexing, sorted.
    pub active_set: Vec<usize>,
    /// Inner active-set iterations summed over shards and rounds.
    pub iterations: usize,
    /// Aggregated solver counters (including the outer-loop counters).
    pub stats: SolveStats,
    /// Outer-loop outcome.
    pub outer: OuterStats,
    /// Multiplier state to persist (consensus duals then peak duals).
    pub multipliers: Vec<f64>,
    /// Inner warm starts rejected this step (local cold re-solves).
    pub fallbacks: u64,
    /// Violation breakdown per rejecting shard.
    pub rejections: Vec<WarmRejection>,
}

/// The sharded solver skeleton for one problem structure, cached by the
/// controller exactly like the dense and banded skeletons.
#[derive(Debug, Clone)]
pub struct ShardedSkeleton {
    n: usize,
    c: usize,
    beta1: usize,
    beta2: usize,
    partition: Partition,
    cells: Vec<ShardCell>,
    consensus: ExchangeConsensus,
    /// Active absolute ADMM penalty currently baked into the cell Hessians.
    /// Starts at [`Self::rho0_abs`] every step; residual balancing may
    /// retune it between rounds (see [`Self::set_rho`]).
    rho_abs: f64,
    /// Configured absolute penalty `ρ₀ = rho · mean base Hessian diagonal`.
    /// Everything persisted across steps (cell Hessians between solves, the
    /// scaled consensus dual in snapshots) is anchored to ρ₀, so restores
    /// rebuild bit-identical state from the config alone.
    rho0_abs: f64,
    /// Peak-budget ascent step per unit of absolute penalty, so retunes
    /// keep the two coupling families conditioned alike.
    peak_step_per_rho: f64,
    max_outer: usize,
    /// Relative residual tolerance of the outer stopping rule.
    tol: f64,
    /// Per-IDC gradient coefficient `−2·b₁_j·Q·multiplier_j`.
    grad_coeff: Vec<f64>,
    /// Per-IDC marginal power, for the peak-budget price.
    b1_mw: Vec<f64>,
    /// Optional peak-budget dual state (per-stage cap + multipliers).
    peak: Option<PeakDual>,
}

impl ShardedSkeleton {
    /// Assembles the per-shard restricted QPs (exact local Hessian plus the
    /// stage-diagonal consensus penalty) for the given structure.
    ///
    /// `shards` is clamped to `[1, N]`; `rho` is the *relative* penalty
    /// (scaled by the mean base Hessian diagonal so tuning is
    /// problem-size-independent).
    pub fn build(
        config: &MpcConfig,
        problem: &MpcProblem,
        shards: usize,
        rho: f64,
        max_outer: usize,
        tol: f64,
    ) -> Result<Self> {
        assert!(rho > 0.0, "consensus penalty must be positive");
        assert!(max_outer > 0, "at least one outer round");
        assert!(tol > 0.0, "outer tolerance must be positive");
        let n = problem.num_idcs();
        let c = problem.num_portals();
        let beta1 = config.prediction_horizon;
        let beta2 = config.control_horizon;
        let tw = config.tracking_weight;
        let sw = config.smoothing_weight;
        let ridge = config.input_ridge;
        let partition = Partition::contiguous(n, shards);
        let num_shards = partition.num_shards();

        // Diagonal entry of the *base* (unsharded) Hessian for (τ, j); its
        // mean anchors the relative penalty so `rho = 1` means "as stiff as
        // the objective's own curvature" at every fleet size. Computed from
        // global problem data only, so every shard layout derives the same
        // ρ_abs.
        let mut diag_sum = 0.0;
        for tau in 0..beta2 {
            let track_count = if tau + 1 < beta2 {
                1.0
            } else {
                (beta1 - beta2 + 1) as f64
            };
            let smooth_count = if tau + 1 < beta2 { 2.0 } else { 1.0 };
            for j in 0..n {
                let b1 = problem.b1_mw[j];
                diag_sum += 2.0
                    * b1
                    * b1
                    * (tw * problem.tracking_multiplier[j] * track_count + sw * smooth_count)
                    + 2.0 * ridge * smooth_count;
            }
        }
        let rho_abs = rho * diag_sum / (beta2 * n) as f64;

        let mut cells = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let (jlo, jhi) = partition.range(s);
            cells.push(Self::build_cell(
                config, problem, jlo, jhi, rho_abs, beta1, beta2,
            )?);
        }

        let rows = beta2 * c;
        let mut consensus = ExchangeConsensus::new(rows, num_shards, rho_abs);
        consensus.set_relaxation(RELAX_ALPHA);
        // Projected dual ascent step per unit of ρ_abs, conditioned like
        // the consensus penalty: a conservation row has squared norm N (one
        // unit entry per IDC) and effective dual step ρ_abs/S, so the power
        // row (squared norm C·Σ_j b₁²) gets the step that equalizes
        // `step × ‖row‖²` across the two coupling families.
        let b1_sq: f64 = problem.b1_mw.iter().map(|&b| b * b).sum();
        let peak_step_per_rho = n as f64 / (num_shards as f64 * (c as f64 * b1_sq).max(1e-300));
        let peak = config
            .sharded_peak_budget_mw
            .map(|cap| PeakDual::new(vec![cap; beta2], rho_abs * peak_step_per_rho));

        let grad_coeff = (0..n)
            .map(|j| -2.0 * problem.b1_mw[j] * tw * problem.tracking_multiplier[j])
            .collect();
        Ok(ShardedSkeleton {
            n,
            c,
            beta1,
            beta2,
            partition,
            cells,
            consensus,
            rho_abs,
            rho0_abs: rho_abs,
            peak_step_per_rho,
            max_outer,
            tol,
            grad_coeff,
            b1_mw: problem.b1_mw.clone(),
            peak,
        })
    }

    /// Builds one shard's restricted QP over IDCs `[jlo, jhi)`.
    fn build_cell(
        config: &MpcConfig,
        problem: &MpcProblem,
        jlo: usize,
        jhi: usize,
        rho_abs: f64,
        beta1: usize,
        beta2: usize,
    ) -> Result<ShardCell> {
        let c = problem.num_portals();
        let ns = jhi - jlo;
        let ncs = ns * c;
        let tw = config.tracking_weight;
        let sw = config.smoothing_weight;
        let ridge = config.input_ridge;

        // Restricted Hessian: identical per-IDC blocks to the monolithic
        // riccati assembly (the restriction is exact), plus the consensus
        // penalty ρ·aaᵀ — each conservation row couples the same portal
        // entry across the shard's IDCs within one stage, so the penalty is
        // stage-diagonal and the block-tridiagonal shape survives.
        let mut h = BlockTridiag::new(ncs, beta2);
        let mut penalty_base = Vec::with_capacity(beta2 * ns);
        for tau in 0..beta2 {
            let track_count = if tau + 1 < beta2 {
                1.0
            } else {
                (beta1 - beta2 + 1) as f64
            };
            let smooth_count = if tau + 1 < beta2 { 2.0 } else { 1.0 };
            let block = h.diag_mut(tau);
            for lj in 0..ns {
                let b1 = problem.b1_mw[jlo + lj];
                let couple = 2.0
                    * b1
                    * b1
                    * (tw * problem.tracking_multiplier[jlo + lj] * track_count
                        + sw * smooth_count);
                for a in 0..c {
                    for b in 0..c {
                        block[(lj * c + a) * ncs + (lj * c + b)] = couple;
                    }
                }
            }
            for d in 0..ncs {
                block[d * ncs + d] += 2.0 * ridge * smooth_count;
            }
            for lj in 0..ns {
                penalty_base.push(block[(lj * c) * ncs + (lj * c)]);
            }
            for i in 0..c {
                for lj1 in 0..ns {
                    for lj2 in 0..ns {
                        block[(lj1 * c + i) * ncs + (lj2 * c + i)] += rho_abs;
                    }
                }
            }
        }
        for tau in 0..beta2.saturating_sub(1) {
            let block = h.sub_mut(tau);
            for lj in 0..ns {
                let b1 = problem.b1_mw[jlo + lj];
                let couple = -2.0 * sw * b1 * b1;
                for a in 0..c {
                    for b in 0..c {
                        block[(lj * c + a) * ncs + (lj * c + b)] = couple;
                    }
                }
            }
            for d in 0..ncs {
                block[d * ncs + d] -= 2.0 * ridge;
            }
        }

        // Local inequality rows in the monolithic family order: capacity
        // t-major × IDC, then non-negativity t-major × entry.
        let mut qp = BandedQp::new(h, vec![0.0; beta2 * ncs])?;
        for t in 0..beta2 {
            for lj in 0..ns {
                let mut row = SparseRow::new();
                for i in 0..c {
                    row.push(t * ncs + lj * c + i, 1.0);
                }
                qp = qp.inequality(row, 0.0);
            }
        }
        for t in 0..beta2 {
            for k in 0..ncs {
                qp = qp.inequality(SparseRow::from_entries(vec![(t * ncs + k, -1.0)]), 0.0);
            }
        }
        let rows = beta2 * c;
        Ok(ShardCell {
            jlo,
            jhi,
            qp,
            ws: BandedQpWorkspace::new(),
            base_grad: vec![0.0; beta2 * ncs],
            grad: vec![0.0; beta2 * ncs],
            v: vec![0.0; rows],
            z: vec![0.0; rows],
            x: vec![0.0; beta2 * ncs],
            w: vec![0.0; rows],
            w_prev: vec![0.0; rows],
            move_inf: 0.0,
            q: vec![0.0; beta2],
            in_rhs: vec![0.0; beta2 * ns + beta2 * ncs],
            penalty_base,
            seed: Vec::new(),
            stats: SolveStats::default(),
            iterations: 0,
            fallbacks: 0,
            rejection: None,
            error: None,
        })
    }

    /// Factors every shard's (penalty-augmented) Hessian and precomputes
    /// its all-rows Schur complement, concurrently on the deterministic
    /// runner. Call once per structure build.
    pub fn prepare(&mut self, threads: usize) -> Result<()> {
        run_shards(&mut self.cells, threads, |_, cell| {
            if let Err(e) = cell.qp.prepare() {
                cell.error = Some(e);
            }
        });
        self.take_first_error()
    }

    /// Retunes the absolute consensus penalty to `new_rho`: patches each
    /// shard's `ρ·aaᵀ` Hessian term in place and refactors (concurrently,
    /// on the deterministic runner), rescales the scaled consensus dual so
    /// the physical prices `λ = ρ·u` are continuous, and rescales the
    /// peak-budget ascent step. The per-solve workspace factors rebuild
    /// from the fresh Schur complement on the next inner solve, so nothing
    /// stale survives a retune.
    fn set_rho(&mut self, new_rho: f64, threads: usize) -> Result<()> {
        if new_rho != self.rho_abs {
            let (c, beta2) = (self.c, self.beta2);
            run_shards(&mut self.cells, threads, |_, cell| {
                cell.set_penalty_rho(new_rho, c, beta2);
            });
            self.take_first_error()?;
            self.rho_abs = new_rho;
        }
        // During a solve, balancing rescales the consensus dual immediately
        // but patches the cell Hessians lazily at the next dispatch, so the
        // two scalings can disagree here; each syncs independently.
        if self.consensus.rho() != new_rho {
            self.consensus.rescale_rho(new_rho);
        }
        if let Some(peak) = &mut self.peak {
            peak.set_step(new_rho * self.peak_step_per_rho);
        }
        Ok(())
    }

    /// Number of shards in the partition.
    pub fn num_shards(&self) -> usize {
        self.partition.num_shards()
    }

    /// Length of the persisted multiplier vector (consensus duals plus peak
    /// duals when a budget is configured).
    pub fn multiplier_len(&self) -> usize {
        self.beta2 * self.c + if self.peak.is_some() { self.beta2 } else { 0 }
    }

    /// Rows per stage of the persisted multiplier vector's two families,
    /// for the receding-horizon shift: `(consensus rows, peak rows)`.
    pub fn multiplier_stage_lens(&self) -> (usize, usize) {
        (self.c, if self.peak.is_some() { 1 } else { 0 })
    }

    fn take_first_error(&mut self) -> Result<()> {
        for cell in &mut self.cells {
            if let Some(e) = cell.error.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Solves one control step: exchange-ADMM outer loop over warm-started
    /// local active-set solves, then an exact conservation repair of the
    /// reassembled plan.
    ///
    /// # Errors
    ///
    /// * [`Error::Infeasible`] when the stage demand exceeds the fleet
    ///   capacity (matching the monolithic backends' phase-1 verdict), or
    ///   when the outer loop stalls far from primal feasibility.
    /// * Inner solver errors ([`Error::IterationLimit`],
    ///   [`Error::Numerical`]) surface from the first failing shard.
    pub fn solve(&mut self, step: &ShardedStep<'_>) -> Result<ShardedOutcome> {
        let (n, c, beta2) = (self.n, self.c, self.beta2);
        let nc = n * c;
        let rows = beta2 * c;
        assert_eq!(step.eq_rhs.len(), rows, "conservation rhs length");
        assert_eq!(
            step.in_rhs.len(),
            beta2 * n + beta2 * nc,
            "inequality rhs length"
        );
        assert_eq!(step.warm_y.len(), beta2 * nc, "warm point length");

        // Aggregate feasibility: with every portal routable to every IDC,
        // the stage-t transportation problem is feasible exactly when the
        // total demand fits the total capacity (the prev-input terms cancel
        // between the y-space rhs families). This is the same verdict the
        // monolithic phase-1 LP reaches, caught before any rounds run.
        for t in 0..beta2 {
            let demand: f64 = step.eq_rhs[t * c..(t + 1) * c].iter().sum();
            let capacity: f64 = step.in_rhs[t * n..(t + 1) * n].iter().sum();
            if demand > capacity + 1e-7 * step.scale.max(1.0) {
                return Err(Error::Infeasible);
            }
        }

        // A previous solve that errored out mid-adaptation may have left
        // the cell Hessians at a retuned penalty; every step starts from
        // the configured ρ₀ so persisted multipliers and restored runs see
        // one consistent scaling.
        if self.rho_abs != self.rho0_abs || self.consensus.rho() != self.rho0_abs {
            self.set_rho(self.rho0_abs, step.threads)?;
        }

        // Split the persisted multipliers into the two families; a missing
        // or stale-length vector resumes from zero duals.
        let mlen = self.multiplier_len();
        let mut u = vec![0.0; rows];
        let mut mu = vec![0.0; if self.peak.is_some() { beta2 } else { 0 }];
        if let Some(m) = step.multipliers {
            if m.len() == mlen {
                u.copy_from_slice(&m[..rows]);
                mu.copy_from_slice(&m[rows..]);
            }
        }
        self.consensus.begin_step(step.eq_rhs, &u);
        if let Some(peak) = &mut self.peak {
            peak.set_multipliers(&mu);
        }

        // ---- Scatter the step into the cells: local rhs, tracking
        // gradient, warm iterate, seed, and initial portal sums. ----
        {
            let cells = &mut self.cells;
            let grad_coeff = &self.grad_coeff;
            let b1_mw = &self.b1_mw;
            let (beta1, tracking) = (self.beta1, step.tracking_rhs);
            run_shards(cells, step.threads, |_, cell| {
                let (jlo, jhi) = (cell.jlo, cell.jhi);
                let ns = cell.num_local_idcs();
                let ncs = ns * c;
                cell.stats = SolveStats::default();
                cell.iterations = 0;
                cell.move_inf = 0.0;
                cell.fallbacks = 0;
                cell.rejection = None;
                cell.error = None;
                // Local inequality rhs in family order.
                for t in 0..beta2 {
                    for lj in 0..ns {
                        cell.in_rhs[t * ns + lj] = step.in_rhs[t * n + jlo + lj];
                    }
                }
                for t in 0..beta2 {
                    let src = beta2 * n + t * nc + jlo * c;
                    cell.in_rhs[beta2 * ns + t * ncs..beta2 * ns + (t + 1) * ncs]
                        .copy_from_slice(&step.in_rhs[src..src + ncs]);
                }
                if let Err(e) = cell.qp.set_inequality_rhs(&cell.in_rhs.clone()) {
                    cell.error = Some(e);
                    return;
                }
                // Tracking gradient restricted to the local IDCs (same
                // lowering as RiccatiSkeleton::gradient_into).
                for tau in 0..beta2 {
                    for lj in 0..ns {
                        let j = jlo + lj;
                        let sum: f64 = if tau + 1 < beta2 {
                            tracking[tau * n + j]
                        } else {
                            (beta2 - 1..beta1).map(|s| tracking[s * n + j]).sum()
                        };
                        let g = grad_coeff[j] * sum;
                        for i in 0..c {
                            cell.base_grad[tau * ncs + lj * c + i] = g;
                        }
                    }
                }
                // Warm iterate and the previous step's active set, mapped
                // from global (monolithic) to local indices.
                for t in 0..beta2 {
                    cell.x[t * ncs..(t + 1) * ncs]
                        .copy_from_slice(&step.warm_y[t * nc + jlo * c..t * nc + jhi * c]);
                }
                cell.seed.clear();
                let ncap = beta2 * n;
                for &ci in step.seed {
                    if ci < ncap {
                        let (t, j) = (ci / n, ci % n);
                        if (jlo..jhi).contains(&j) {
                            cell.seed.push(t * ns + (j - jlo));
                        }
                    } else {
                        let r = ci - ncap;
                        let (t, idx) = (r / nc, r % nc);
                        if (jlo * c..jhi * c).contains(&idx) {
                            cell.seed.push(beta2 * ns + t * ncs + (idx - jlo * c));
                        }
                    }
                }
                cell.refresh_sums(c, b1_mw);
            });
        }
        self.take_first_error()?;

        // Round-zero average, so the first targets see the warm sums.
        {
            let wrefs: Vec<&[f64]> = self.cells.iter().map(|cell| cell.w.as_slice()).collect();
            self.consensus.prime(&wrefs);
        }

        // ---- Outer loop: local solves against broadcast coordinator
        // targets, then a fixed-order reduction and dual update. Shard
        // solves run on a persistent worker pool spawned once per solve
        // (one command/reply exchange per round), or inline on the
        // coordinator thread when `threads ≤ 1` — the same per-cell code
        // either way, so plans are bitwise identical across thread
        // counts. ----
        let (outer, cells_rho) = {
            let rho0_abs = self.rho0_abs;
            let peak_step_per_rho = self.peak_step_per_rho;
            let max_outer = self.max_outer;
            let tol = self.tol;
            let cells = &mut self.cells;
            let consensus = &mut self.consensus;
            let peak = &mut self.peak;
            let b1_mw = self.b1_mw.as_slice();
            let num_workers = step.threads.clamp(1, cells.len().max(1));
            if num_workers > 1 {
                std::thread::scope(|scope| {
                    let ncells = cells.len();
                    let mut cmd_txs = Vec::with_capacity(num_workers);
                    let mut reply_rxs = Vec::with_capacity(num_workers);
                    let mut rest: &mut [ShardCell] = cells;
                    for wid in 0..num_workers {
                        let lo = wid * ncells / num_workers;
                        let hi = (wid + 1) * ncells / num_workers;
                        let (mine, tail) = rest.split_at_mut(hi - lo);
                        rest = tail;
                        let (cmd_tx, cmd_rx) = mpsc::channel::<RoundCmd>();
                        let (reply_tx, reply_rx) = mpsc::channel::<RoundReply>();
                        scope.spawn(move || {
                            let mut cur_rho = rho0_abs;
                            while let Ok(cmd) = cmd_rx.recv() {
                                let changed = cmd.rho_abs != cur_rho;
                                cur_rho = cmd.rho_abs;
                                let mut out = Vec::with_capacity(mine.len());
                                for cell in mine.iter_mut() {
                                    if changed {
                                        cell.set_penalty_rho(cmd.rho_abs, c, beta2);
                                    }
                                    cell.solve_round(c, beta2, b1_mw, &cmd);
                                    out.push(cell.round_report());
                                }
                                let reply = RoundReply {
                                    any_error: mine.iter().any(|cell| cell.error.is_some()),
                                    cells: out,
                                };
                                if reply_tx.send(reply).is_err() {
                                    break;
                                }
                            }
                        });
                        cmd_txs.push(cmd_tx);
                        reply_rxs.push(reply_rx);
                    }
                    let mut runner = RoundRunner::Pool { cmd_txs, reply_rxs };
                    // Dropping the runner closes the command channels; the
                    // workers drain out and the scope joins them.
                    run_outer_loop(
                        &mut runner,
                        consensus,
                        peak,
                        rho0_abs,
                        peak_step_per_rho,
                        max_outer,
                        tol,
                        step,
                        beta2,
                    )
                })
            } else {
                let mut runner = RoundRunner::Inline {
                    cells,
                    cur_rho: rho0_abs,
                    c,
                    beta2,
                    b1_mw,
                };
                run_outer_loop(
                    &mut runner,
                    consensus,
                    peak,
                    rho0_abs,
                    peak_step_per_rho,
                    max_outer,
                    tol,
                    step,
                    beta2,
                )
            }
        };
        // Balancing retunes reach the cells lazily, so after the loop the
        // Hessians may lag the coordinator's last decision; resync the
        // tracked penalty before anything (the ρ₀ park below, a later
        // error recovery) derives a patch delta from it.
        self.rho_abs = cells_rho;
        self.take_first_error()?;
        if !outer.converged && outer.primal_residual > 1e-4 {
            // The coordinator stalled far from primal feasibility: the
            // coupled problem is (numerically) infeasible in a way the
            // aggregate pre-check cannot see.
            return Err(Error::Infeasible);
        }
        // Park the penalty back at ρ₀: the persisted scaled dual and the
        // cell Hessians the next step starts from are then anchored to the
        // configuration alone, so checkpoint/restore rebuilds identical
        // state. A no-op (and free) when no retune fired.
        self.set_rho(self.rho0_abs, step.threads)?;

        // ---- Reassemble, repair conservation exactly, and aggregate. ----
        let mut y = vec![0.0; beta2 * nc];
        for cell in &self.cells {
            let ns = cell.num_local_idcs();
            let ncs = ns * c;
            for t in 0..beta2 {
                y[t * nc + cell.jlo * c..t * nc + cell.jhi * c]
                    .copy_from_slice(&cell.x[t * ncs..(t + 1) * ncs]);
            }
        }
        repair_conservation(&mut y, step.eq_rhs, step.in_rhs, n, c, beta2);

        let mut active_set = Vec::new();
        let mut stats = SolveStats::default();
        let mut iterations = 0u64;
        let mut fallbacks = 0u64;
        let mut rejections = Vec::new();
        for (s, cell) in self.cells.iter().enumerate() {
            let ns = cell.num_local_idcs();
            let ncs = ns * c;
            let ncap_local = beta2 * ns;
            for &li in &cell.seed {
                if li < ncap_local {
                    let (t, lj) = (li / ns, li % ns);
                    active_set.push(t * n + cell.jlo + lj);
                } else {
                    let r = li - ncap_local;
                    let (t, lidx) = (r / ncs, r % ncs);
                    active_set.push(beta2 * n + t * nc + cell.jlo * c + lidx);
                }
            }
            stats.merge(&cell.stats);
            iterations += cell.iterations;
            fallbacks += cell.fallbacks;
            if let Some(mut rej) = cell.rejection {
                rej.shard = s;
                rejections.push(rej);
            }
        }
        active_set.sort_unstable();
        stats.outer_iterations = outer.rounds;
        stats.consensus_residual_nano =
            (outer.primal_residual * 1e9).round().clamp(0.0, 1e18) as u64;
        stats.cold_fallbacks = fallbacks;

        let mut multipliers = Vec::with_capacity(mlen);
        multipliers.extend_from_slice(self.consensus.multipliers());
        if let Some(peak) = &self.peak {
            multipliers.extend_from_slice(peak.multipliers());
        }

        Ok(ShardedOutcome {
            y,
            active_set,
            iterations: iterations as usize,
            stats,
            outer,
            multipliers,
            fallbacks,
            rejections,
        })
    }
}

impl ShardCell {
    /// Adds `delta` to the consensus-penalty term of the local Hessian
    /// (`ρ·aaᵀ` is stage-diagonal: every portal-matched IDC pair carries
    /// the penalty) and refactors. A factorization error parks in
    /// `self.error`.
    /// Rewrites the consensus-penalty entries of the Hessian for a new
    /// absolute ρ. The writes are absolute (`base + ρ` on the diagonal, ρ
    /// alone off it, single rounding each — exactly how [`build_cell`]
    /// assembles them) so the Hessian bits depend only on the current ρ,
    /// never on the retune history; see [`ShardCell::penalty_base`].
    fn set_penalty_rho(&mut self, rho_abs: f64, c: usize, beta2: usize) {
        let ns = self.num_local_idcs();
        let ncs = ns * c;
        let base = &self.penalty_base;
        self.qp.update_hessian(|h| {
            for tau in 0..beta2 {
                let block = h.diag_mut(tau);
                for i in 0..c {
                    for lj1 in 0..ns {
                        for lj2 in 0..ns {
                            block[(lj1 * c + i) * ncs + (lj2 * c + i)] = if lj1 == lj2 {
                                base[tau * ns + lj1] + rho_abs
                            } else {
                                rho_abs
                            };
                        }
                    }
                }
            }
        });
        if let Err(e) = self.qp.prepare() {
            self.error = Some(e);
        }
    }

    /// One outer round for this cell: derive the exchange target from the
    /// broadcast correction, rebuild the priced gradient, warm-start the
    /// local QP, and refresh the portal sums. Errors park in `self.error`.
    fn solve_round(&mut self, c: usize, beta2: usize, b1_mw: &[f64], cmd: &RoundCmd) {
        if self.error.is_some() {
            return;
        }
        let ns = self.num_local_idcs();
        let ncs = ns * c;
        if !cmd.stalled {
            for r in 0..self.v.len() {
                self.z[r] = cmd.alpha * self.w[r] + (1.0 - cmd.alpha) * self.z[r] - cmd.gap[r];
                self.v[r] = self.z[r] - cmd.u[r];
            }
        }
        let peak_mu = cmd.peak_mu.as_deref();
        for t in 0..beta2 {
            for lj in 0..ns {
                let price = peak_mu.map_or(0.0, |mu| mu[t] * b1_mw[self.jlo + lj]);
                for i in 0..c {
                    let k = t * ncs + lj * c + i;
                    self.grad[k] = self.base_grad[k] - cmd.rho_abs * self.v[t * c + i] + price;
                }
            }
        }
        if let Err(e) = self.qp.set_gradient(&self.grad) {
            self.error = Some(e);
            return;
        }
        let solved = match self.qp.warm_start(&self.x, &self.seed, &mut self.ws) {
            Ok(sol) => Ok(sol),
            Err(Error::Infeasible) if cmd.cold_first => {
                // The repaired warm point violated a local constraint:
                // diagnose, then pay a cold solve.
                self.fallbacks += 1;
                self.rejection = Some(self.diagnose_rejection(c, beta2));
                self.qp.solve_with(&mut self.ws)
            }
            Err(e) => Err(e),
        };
        match solved {
            Ok(sol) => {
                self.stats.merge(sol.stats());
                self.iterations += sol.iterations() as u64;
                self.seed.clear();
                self.seed.extend_from_slice(sol.active_set());
                self.x.copy_from_slice(&sol.into_x());
                self.w_prev.copy_from_slice(&self.w);
                self.refresh_sums(c, b1_mw);
                self.move_inf = self
                    .w
                    .iter()
                    .zip(&self.w_prev)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Clones the coordinator-facing results of the last round.
    fn round_report(&self) -> CellRound {
        CellRound {
            w: self.w.clone(),
            q: self.q.clone(),
            move_inf: self.move_inf,
        }
    }

    /// Recomputes the portal sums `w = A_s x` and the per-stage marginal
    /// power `q` from the current iterate.
    fn refresh_sums(&mut self, c: usize, b1_mw: &[f64]) {
        let ns = self.num_local_idcs();
        let ncs = ns * c;
        let beta2 = self.w.len() / c;
        self.w.fill(0.0);
        self.q.fill(0.0);
        for t in 0..beta2 {
            for lj in 0..ns {
                let b1 = b1_mw[self.jlo + lj];
                for i in 0..c {
                    let v = self.x[t * ncs + lj * c + i];
                    self.w[t * c + i] += v;
                    self.q[t] += b1 * v;
                }
            }
        }
    }

    /// Computes the per-family violation breakdown of the current (rejected)
    /// warm iterate against the local rows. Shards carry no conservation
    /// rows, so that family is always zero here.
    fn diagnose_rejection(&self, c: usize, beta2: usize) -> WarmRejection {
        let ns = self.num_local_idcs();
        let ncs = ns * c;
        let mut rej = WarmRejection::default();
        for t in 0..beta2 {
            for lj in 0..ns {
                let total: f64 = self.x[t * ncs + lj * c..t * ncs + (lj + 1) * c]
                    .iter()
                    .sum();
                rej.capacity = rej.capacity.max(total - self.in_rhs[t * ns + lj]);
            }
            for k in 0..ncs {
                let floor = -self.in_rhs[beta2 * ns + t * ncs + k];
                rej.nonnegativity = rej.nonnegativity.max(floor - self.x[t * ncs + k]);
            }
        }
        rej
    }
}

/// Distributes each `(stage, portal)` conservation residual of the
/// reassembled plan across IDCs — capacity headroom absorbs additions,
/// distance to the non-negativity floor absorbs removals — so eq. 45 holds
/// *exactly* after the outer loop stops at its (tiny) residual tolerance.
fn repair_conservation(
    y: &mut [f64],
    eq_rhs: &[f64],
    in_rhs: &[f64],
    n: usize,
    c: usize,
    beta2: usize,
) {
    let nc = n * c;
    let mut idc_sum = vec![0.0; n];
    let mut weights = vec![0.0; n];
    for t in 0..beta2 {
        for j in 0..n {
            idc_sum[j] = y[t * nc + j * c..t * nc + (j + 1) * c].iter().sum();
        }
        for i in 0..c {
            let sum_i: f64 = (0..n).map(|j| y[t * nc + j * c + i]).sum();
            let d = eq_rhs[t * c + i] - sum_i;
            if d == 0.0 {
                continue;
            }
            let mut total = 0.0;
            for j in 0..n {
                weights[j] = if d > 0.0 {
                    (in_rhs[t * n + j] - idc_sum[j]).max(0.0)
                } else {
                    // Distance to the non-negativity floor −in_rhs.
                    (y[t * nc + j * c + i] + in_rhs[beta2 * n + t * nc + j * c + i]).max(0.0)
                };
                total += weights[j];
            }
            if total <= 0.0 {
                weights.iter_mut().for_each(|w| *w = 1.0);
                total = n as f64;
            }
            for j in 0..n {
                let add = d * weights[j] / total;
                y[t * nc + j * c + i] += add;
                idc_sum[j] += add;
            }
        }
    }
}
