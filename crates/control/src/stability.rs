//! Closed-loop stability checks.
//!
//! The paper (Sec. IV-E) notes that constrained-MPC stability does not
//! follow from closed-loop pole locations and appeals to the contraction-
//! mapping argument of Mayne et al. \[21\]. We provide the empirical
//! counterpart used by the test suite and the stability example:
//!
//! * [`is_contraction`] — samples pairs of initial conditions, rolls the
//!   closed loop forward, and checks that trajectory distances shrink;
//! * [`converges_to_fixed_point`] — rolls one trajectory and checks that
//!   successive steps approach a fixed point (the tracking equilibrium);
//! * [`linearized_jacobian`] / [`is_locally_schur_stable`] — numerically
//!   linearize the closed loop around an equilibrium and test `ρ(J) < 1`
//!   via [`idc_linalg::eigen::spectral_radius`].

use idc_linalg::{eigen, Matrix};

/// Empirically tests whether the map `step` is a contraction on the given
/// sample points: for every pair, the distance after `iters` applications
/// must have shrunk by at least `factor` (< 1).
///
/// Returns `false` as soon as one pair fails; `true` when all pairs
/// contract. Pairs closer than `1e-12` initially are skipped.
pub fn is_contraction(
    step: impl Fn(&[f64]) -> Vec<f64>,
    samples: &[Vec<f64>],
    iters: usize,
    factor: f64,
) -> bool {
    let dist = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    for (ai, a0) in samples.iter().enumerate() {
        for b0 in samples.iter().skip(ai + 1) {
            let d0 = dist(a0, b0);
            if d0 < 1e-12 {
                continue;
            }
            let mut a = a0.clone();
            let mut b = b0.clone();
            for _ in 0..iters {
                a = step(&a);
                b = step(&b);
            }
            if dist(&a, &b) > factor * d0 {
                return false;
            }
        }
    }
    true
}

/// Rolls `step` forward from `x0` for at most `max_iters` and reports
/// whether the per-step movement falls below `tol` (i.e. the trajectory
/// reaches a fixed point). Returns the number of steps taken on success.
pub fn converges_to_fixed_point(
    step: impl Fn(&[f64]) -> Vec<f64>,
    x0: &[f64],
    max_iters: usize,
    tol: f64,
) -> Option<usize> {
    let mut x = x0.to_vec();
    for k in 0..max_iters {
        let next = step(&x);
        let movement = next
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        x = next;
        if movement < tol {
            return Some(k + 1);
        }
    }
    None
}

/// Numerically linearizes the closed-loop map `step` around `x_eq` by
/// central differences with stencil width `eps`, returning the Jacobian
/// `J[i][j] = ∂step_i/∂x_j`.
pub fn linearized_jacobian(step: impl Fn(&[f64]) -> Vec<f64>, x_eq: &[f64], eps: f64) -> Matrix {
    let n = x_eq.len();
    let mut jac = Matrix::zeros(n, n);
    for j in 0..n {
        let mut plus = x_eq.to_vec();
        let mut minus = x_eq.to_vec();
        plus[j] += eps;
        minus[j] -= eps;
        let fp = step(&plus);
        let fm = step(&minus);
        for i in 0..n {
            jac[(i, j)] = (fp[i] - fm[i]) / (2.0 * eps);
        }
    }
    jac
}

/// Local Schur-stability test of the closed loop around `x_eq`:
/// `ρ(J) < 1 − margin` for the numerically linearized Jacobian.
///
/// This is the computable counterpart of the paper's Sec. IV-E appeal to
/// the contraction-mapping stability argument of Mayne et al. \[21\]. — for a
/// constrained MPC the *active-set-conditional* closed loop is piecewise
/// affine, and this test certifies the piece containing the equilibrium.
///
/// # Errors
///
/// Propagates [`idc_linalg::eigen::spectral_radius`] failures (non-finite
/// Jacobian entries).
pub fn is_locally_schur_stable(
    step: impl Fn(&[f64]) -> Vec<f64>,
    x_eq: &[f64],
    eps: f64,
    margin: f64,
) -> idc_linalg::Result<bool> {
    let jac = linearized_jacobian(step, x_eq, eps);
    eigen::is_schur_stable(&jac, margin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_contraction_is_detected() {
        let step = |x: &[f64]| x.iter().map(|v| 0.5 * v).collect::<Vec<_>>();
        let samples = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-2.0, 3.0]];
        assert!(is_contraction(step, &samples, 3, 0.2));
    }

    #[test]
    fn expansion_is_rejected() {
        let step = |x: &[f64]| x.iter().map(|v| 1.5 * v).collect::<Vec<_>>();
        let samples = vec![vec![1.0], vec![-1.0]];
        assert!(!is_contraction(step, &samples, 2, 0.99));
    }

    #[test]
    fn isometry_is_not_a_contraction() {
        // Rotation preserves distances → must fail for factor < 1.
        let step = |x: &[f64]| vec![-x[1], x[0]];
        let samples = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        assert!(!is_contraction(step, &samples, 5, 0.9));
        // ...but passes with factor ≥ 1 (non-expansive).
        assert!(is_contraction(step, &samples, 5, 1.0 + 1e-12));
    }

    #[test]
    fn identical_samples_are_skipped() {
        let step = |x: &[f64]| x.to_vec();
        let samples = vec![vec![1.0], vec![1.0]];
        assert!(is_contraction(step, &samples, 3, 0.5));
    }

    #[test]
    fn jacobian_of_linear_map_is_its_matrix() {
        let a = [[0.5, 0.2], [-0.1, 0.3]];
        let step = |x: &[f64]| {
            vec![
                a[0][0] * x[0] + a[0][1] * x[1],
                a[1][0] * x[0] + a[1][1] * x[1],
            ]
        };
        let jac = linearized_jacobian(step, &[1.0, -2.0], 1e-5);
        for i in 0..2 {
            for j in 0..2 {
                assert!((jac[(i, j)] - a[i][j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn local_schur_stability_matches_spectral_radius() {
        let stable = |x: &[f64]| vec![0.5 * x[0] + 0.1 * x[1], -0.2 * x[1]];
        assert!(is_locally_schur_stable(stable, &[0.0, 0.0], 1e-6, 0.01).unwrap());
        let unstable = |x: &[f64]| vec![1.2 * x[0], 0.5 * x[1]];
        assert!(!is_locally_schur_stable(unstable, &[0.0, 0.0], 1e-6, 0.01).unwrap());
    }

    #[test]
    fn fixed_point_convergence() {
        // x ← (x + 2)/2 converges to 2.
        let step = |x: &[f64]| vec![(x[0] + 2.0) / 2.0];
        let steps = converges_to_fixed_point(step, &[10.0], 100, 1e-9);
        assert!(steps.is_some());
        // Divergent map never converges.
        let diverge = |x: &[f64]| vec![2.0 * x[0] + 1.0];
        assert!(converges_to_fixed_point(diverge, &[1.0], 50, 1e-9).is_none());
    }
}
