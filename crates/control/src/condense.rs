//! Condensed prediction matrices for the discretized cost model
//! (paper eq. 39–41).
//!
//! The paper stacks the output predictions over the horizon as
//!
//! ```text
//! Y(k) = W′ X̄(k) + W′ Ξ U(k−1) + W′ Θ ΔU(k) + W′ Ω̄
//! ```
//!
//! with `Θ` the block-lower-triangular map from stacked input *changes* to
//! stacked states and `Ξ` the map from the held previous input. This module
//! builds those matrices for an arbitrary discretized pair `(Φ, G)` — the
//! MPC in [`crate::mpc`] exploits the paper model's special structure
//! (`Φ` acting trivially on the power outputs) and never forms them, so
//! this generic construction serves as an independent cross-check (see the
//! `condensation_matches_*` tests) and as the starting point for users who
//! want MPC on a different output map.

use idc_linalg::Matrix;

use crate::{discretize::DiscreteCostModel, statespace::CostStateSpace};

/// The stacked prediction operators over horizons `(β₁, β₂)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionMatrices {
    /// Maps the current state: `[Φ; Φ²; …; Φ^{β₁}]`, shape `(β₁·n) × n`.
    pub phi_stack: Matrix,
    /// Maps the held previous input `U(k−1)`: row-block `s` equals
    /// `Σ_{t=0}^{s−1} Φ^t G`, shape `(β₁·n) × m` (the paper's `Ξ`).
    pub xi: Matrix,
    /// Maps stacked input changes `ΔU`: block `(s, τ)` equals
    /// `Σ_{t=0}^{s−1−τ} Φ^t G` for `τ ≤ min(s−1, β₂−1)`, shape
    /// `(β₁·n) × (β₂·m)` (the paper's `Θ`).
    pub theta: Matrix,
    /// Maps the held exogenous input `V` (servers ON): same structure as
    /// `Ξ` built from `Γ` (the paper's `Ω̄` contribution).
    pub omega: Matrix,
}

impl PredictionMatrices {
    /// Builds the operators for `model` over horizons `β₁ ≥ β₂ ≥ 1`.
    ///
    /// Returns `None` for invalid horizons.
    pub fn build(model: &DiscreteCostModel, beta1: usize, beta2: usize) -> Option<Self> {
        if beta2 == 0 || beta2 > beta1 {
            return None;
        }
        let n = model.phi.rows();
        let m = model.g.cols();
        let mv = model.gamma.cols();

        let mut phi_stack = Matrix::zeros(beta1 * n, n);
        let mut xi = Matrix::zeros(beta1 * n, m);
        let mut omega = Matrix::zeros(beta1 * n, mv);
        let mut theta = Matrix::zeros(beta1 * n, beta2 * m);

        // Stream the powers of Φ and the prefix sums Σ_{t=0}^{q} Φ^t G
        // (resp. Γ), writing each into its destination blocks as soon as it
        // is complete — no per-step clones, just four running accumulators
        // and two ping-pong scratch matrices.
        let mut phi_pow = Matrix::identity(n);
        let mut phi_next = Matrix::zeros(n, n);
        let mut acc_g = model.g.clone();
        let mut acc_gamma = model.gamma.clone();
        let mut term = Matrix::zeros(0, 0);
        for q in 0..beta1 {
            // `acc_g` now holds cumsum_g[q]: the Ξ/Ω̄ blocks for prediction
            // step s = q + 1, and every Θ block (s, τ) with s − 1 − τ = q.
            xi.set_block(q * n, 0, &acc_g);
            omega.set_block(q * n, 0, &acc_gamma);
            for tau in 0..beta2 {
                let s = q + 1 + tau;
                if s > beta1 {
                    break;
                }
                theta.set_block((s - 1) * n, tau * m, &acc_g);
            }

            // Advance Φ^q → Φ^{q+1} and fold the next terms into the sums.
            model
                .phi
                .mul_mat_into(&phi_pow, &mut phi_next)
                .expect("square");
            std::mem::swap(&mut phi_pow, &mut phi_next);
            phi_stack.set_block(q * n, 0, &phi_pow);
            if q + 1 < beta1 {
                phi_pow.mul_mat_into(&model.g, &mut term).expect("shapes");
                acc_g.scaled_add_assign(1.0, &term).expect("shapes");
                phi_pow
                    .mul_mat_into(&model.gamma, &mut term)
                    .expect("shapes");
                acc_gamma.scaled_add_assign(1.0, &term).expect("shapes");
            }
        }
        Some(PredictionMatrices {
            phi_stack,
            xi,
            theta,
            omega,
        })
    }

    /// Builds the *output-space* operators `W′·(…)` for the cost model of
    /// [`CostStateSpace`] (the paper applies `W = [1, 0, …, 0]` to read the
    /// accumulated cost).
    ///
    /// Returns `None` for invalid horizons.
    pub fn build_for_output(
        ss: &CostStateSpace,
        model: &DiscreteCostModel,
        beta1: usize,
        beta2: usize,
    ) -> Option<OutputPrediction> {
        let p = Self::build(model, beta1, beta2)?;
        let n = model.phi.rows();
        // Block-diagonal W′ applied row-block-wise = multiply each block.
        let apply = |m_in: &Matrix| -> Matrix {
            let cols = m_in.cols();
            let mut out = Matrix::zeros(beta1, cols);
            for s in 0..beta1 {
                let block = m_in.block(s * n, 0, n, cols);
                let row = ss.w().mul_mat(&block).expect("1 x n times n x cols");
                out.set_block(s, 0, &row);
            }
            out
        };
        Some(OutputPrediction {
            from_state: apply(&p.phi_stack),
            from_prev_input: apply(&p.xi),
            from_delta_u: apply(&p.theta),
            from_exogenous: apply(&p.omega),
        })
    }

    /// Predicts the stacked states `[X(k+1); …; X(k+β₁)]` for the given
    /// current state, held previous input, stacked `ΔU` and held `V`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the built dimensions.
    pub fn predict(&self, x: &[f64], u_prev: &[f64], delta_u: &[f64], v: &[f64]) -> Vec<f64> {
        let mut out = self.phi_stack.mul_vec(x).expect("state dim");
        let xiu = self.xi.mul_vec(u_prev).expect("input dim");
        let th = self.theta.mul_vec(delta_u).expect("delta dim");
        let om = self.omega.mul_vec(v).expect("exogenous dim");
        for i in 0..out.len() {
            out[i] += xiu[i] + th[i] + om[i];
        }
        out
    }
}

/// Output-space (`Y = W X`) prediction operators (paper eq. 39).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputPrediction {
    /// `W′ · [Φ; …]` — effect of the current state.
    pub from_state: Matrix,
    /// `W′ Ξ` — effect of the held previous input.
    pub from_prev_input: Matrix,
    /// `W′ Θ` — effect of the stacked input changes.
    pub from_delta_u: Matrix,
    /// `W′ Ω̄` — effect of the held exogenous input.
    pub from_exogenous: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::discretize;

    fn paper_model() -> (CostStateSpace, DiscreteCostModel) {
        let ss = CostStateSpace::new(
            &[43.26, 30.26, 19.06],
            &[67.5e-6, 108.0e-6, 77.14e-6],
            &[150e-6, 150e-6, 150e-6],
            2,
        )
        .expect("valid");
        let model = discretize(&ss, 30.0 / 3600.0).expect("discretizes");
        (ss, model)
    }

    #[test]
    fn horizons_are_validated() {
        let (_, model) = paper_model();
        assert!(PredictionMatrices::build(&model, 3, 0).is_none());
        assert!(PredictionMatrices::build(&model, 2, 3).is_none());
        assert!(PredictionMatrices::build(&model, 3, 3).is_some());
    }

    #[test]
    fn condensation_matches_step_iteration_with_held_input() {
        let (_, model) = paper_model();
        let beta1 = 5;
        let beta2 = 3;
        let p = PredictionMatrices::build(&model, beta1, beta2).unwrap();

        let n = model.phi.rows();
        let x0: Vec<f64> = (0..n).map(|i| 0.1 * i as f64).collect();
        let u_prev: Vec<f64> = (0..model.g.cols()).map(|i| 100.0 + i as f64).collect();
        let v: Vec<f64> = (0..model.gamma.cols())
            .map(|i| 1000.0 * (i + 1) as f64)
            .collect();
        let delta_u = vec![0.0; beta2 * model.g.cols()];

        let stacked = p.predict(&x0, &u_prev, &delta_u, &v);
        // Iterate the model directly with the held input.
        let mut x = x0.clone();
        for s in 0..beta1 {
            x = model.step(&x, &u_prev, &v);
            for i in 0..n {
                let rel_scale = x[i].abs().max(1e-9);
                assert!(
                    (stacked[s * n + i] - x[i]).abs() < 1e-9 * rel_scale.max(1.0),
                    "step {s}, state {i}: {} vs {}",
                    stacked[s * n + i],
                    x[i]
                );
            }
        }
    }

    #[test]
    fn condensation_matches_step_iteration_with_input_changes() {
        let (_, model) = paper_model();
        let beta1 = 4;
        let beta2 = 2;
        let p = PredictionMatrices::build(&model, beta1, beta2).unwrap();

        let nu = model.g.cols();
        let x0 = vec![0.0; model.phi.rows()];
        let u_prev = vec![50.0; nu];
        let v = vec![500.0; model.gamma.cols()];
        // Two distinct change blocks.
        let mut delta_u = vec![0.0; beta2 * nu];
        for i in 0..nu {
            delta_u[i] = 10.0 + i as f64;
            delta_u[nu + i] = -4.0;
        }

        let stacked = p.predict(&x0, &u_prev, &delta_u, &v);
        // Direct iteration with the piecewise-constant input sequence.
        let mut x = x0.clone();
        let mut u = u_prev.clone();
        for s in 0..beta1 {
            if s < beta2 {
                for i in 0..nu {
                    u[i] += delta_u[s * nu + i];
                }
            }
            x = model.step(&x, &u, &v);
            for (i, &xi) in x.iter().enumerate() {
                let got = stacked[s * model.phi.rows() + i];
                assert!(
                    (got - xi).abs() < 1e-9 * xi.abs().max(1.0),
                    "step {s}, state {i}: {got} vs {xi}"
                );
            }
        }
    }

    #[test]
    fn output_prediction_reads_the_cost_row() {
        let (ss, model) = paper_model();
        let out = PredictionMatrices::build_for_output(&ss, &model, 3, 2).unwrap();
        assert_eq!(out.from_state.shape(), (3, ss.state_dim()));
        assert_eq!(out.from_delta_u.shape(), (3, 2 * model.g.cols()));
        // With W = e₁ᵀ the output prediction equals the first state row of
        // the full prediction.
        let full = PredictionMatrices::build(&model, 3, 2).unwrap();
        for s in 0..3 {
            for c in 0..ss.state_dim() {
                assert_eq!(
                    out.from_state[(s, c)],
                    full.phi_stack[(s * ss.state_dim(), c)]
                );
            }
        }
    }

    #[test]
    fn theta_is_block_lower_triangular() {
        let (_, model) = paper_model();
        let beta1 = 4;
        let beta2 = 3;
        let p = PredictionMatrices::build(&model, beta1, beta2).unwrap();
        let n = model.phi.rows();
        let m = model.g.cols();
        // Block (s, τ) with τ > s must be zero: ΔU applied in the future
        // cannot affect earlier predictions.
        for s in 0..beta1 {
            for tau in (s + 1)..beta2 {
                let block = p.theta.block(s * n, tau * m, n, m);
                assert_eq!(block.norm_max(), 0.0, "block ({s}, {tau}) nonzero");
            }
        }
    }
}
