//! Property-based tests for the control substrate.

use idc_control::condense::PredictionMatrices;
use idc_control::discretize::{discretize, zoh};
use idc_control::mpc::{MpcConfig, MpcController, MpcProblem};
use idc_control::reference::optimal_reference;
use idc_control::statespace::CostStateSpace;
use idc_datacenter::idc::paper_idcs;
use idc_linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cost model is controllable for any strictly positive prices and
    /// marginal powers (the paper's Sec. IV-C claim).
    #[test]
    fn positive_prices_imply_controllability(
        prices in prop::collection::vec(0.1f64..200.0, 1..5),
        b1_scale in 1.0f64..200.0,
        portals in 1usize..4,
    ) {
        let n = prices.len();
        let b1: Vec<f64> = (0..n).map(|j| b1_scale * 1e-6 * (j + 1) as f64).collect();
        let b0 = vec![150e-6; n];
        let ss = CostStateSpace::new(&prices, &b1, &b0, portals).unwrap();
        prop_assert!(ss.is_controllable());
    }

    /// ZOH of a stable diagonal system matches the scalar closed form on
    /// every channel.
    #[test]
    fn zoh_diagonal_matches_closed_form(
        rates in prop::collection::vec(0.05f64..4.0, 1..5),
        ts in 0.01f64..2.0,
    ) {
        let n = rates.len();
        let a = Matrix::diag(&rates.iter().map(|r| -r).collect::<Vec<_>>());
        let b = Matrix::identity(n);
        let (phi, g) = zoh(&a, &b, ts).unwrap();
        for (i, &r) in rates.iter().enumerate() {
            prop_assert!((phi[(i, i)] - (-r * ts).exp()).abs() < 1e-9);
            prop_assert!((g[(i, i)] - (1.0 - (-r * ts).exp()) / r).abs() < 1e-9);
        }
    }

    /// Condensed prediction equals step-by-step simulation for random
    /// inputs (eq. 39 fidelity).
    #[test]
    fn condensation_equals_iteration(
        du in prop::collection::vec(-50.0f64..50.0, 4),
        u0 in 0.0f64..500.0,
        v0 in 0.0f64..5_000.0,
    ) {
        let ss = CostStateSpace::new(&[40.0, 25.0], &[70e-6, 100e-6], &[150e-6, 150e-6], 1)
            .unwrap();
        let model = discretize(&ss, 0.01).unwrap();
        let beta1 = 4;
        let beta2 = 2;
        let p = PredictionMatrices::build(&model, beta1, beta2).unwrap();
        let x0 = vec![0.0; ss.state_dim()];
        let u_prev = vec![u0; 2];
        let v = vec![v0; 2];
        let stacked = p.predict(&x0, &u_prev, &du, &v);

        let mut x = x0.clone();
        let mut u = u_prev.clone();
        for s in 0..beta1 {
            if s < beta2 {
                u[0] += du[s * 2];
                u[1] += du[s * 2 + 1];
            }
            x = model.step(&x, &u, &v);
            for (i, &xi) in x.iter().enumerate() {
                let got = stacked[s * ss.state_dim() + i];
                prop_assert!((got - xi).abs() <= 1e-9 * xi.abs().max(1.0));
            }
        }
    }

    /// The reference LP's cost never decreases when any single price rises
    /// (economic sanity: dearer electricity cannot make the optimum
    /// cheaper).
    #[test]
    fn reference_cost_is_monotone_in_prices(
        base in prop::collection::vec(10.0f64..80.0, 3),
        bump in 0.5f64..30.0,
        which in 0usize..3,
    ) {
        let idcs = paper_idcs();
        let offered = [60_000.0];
        let before = optimal_reference(&idcs, &offered, &base).unwrap();
        let mut higher = base.clone();
        higher[which] += bump;
        let after = optimal_reference(&idcs, &offered, &higher).unwrap();
        prop_assert!(
            after.cost_rate_per_hour() >= before.cost_rate_per_hour() - 1e-6,
            "{} < {}",
            after.cost_rate_per_hour(),
            before.cost_rate_per_hour()
        );
    }

    /// MPC plans are insensitive to uniform scaling of both tracking and
    /// smoothing weights (only the ratio matters).
    #[test]
    fn mpc_is_scale_invariant_in_weights(scale in 0.1f64..10.0) {
        let mk = |q: f64, r: f64| {
            let problem = MpcProblem {
                b1_mw: vec![67.5e-6, 108.0e-6],
                b0_mw: vec![150e-6, 150e-6],
                servers_on: vec![10_000, 10_000],
                capacities: vec![19_000.0, 11_500.0],
                prev_input: vec![10_000.0, 0.0],
                workload_forecast: vec![vec![10_000.0]; 3],
                power_reference_mw: vec![vec![1.5, 2.4]; 5],
                tracking_multiplier: MpcProblem::uniform_tracking(2),
            };
            let mut controller = MpcController::new(MpcConfig {
                tracking_weight: q,
                smoothing_weight: r,
                // The ridge must scale with the weights too, or it changes
                // the effective Q/R ratio.
                input_ridge: 1e-9 * q,
                ..MpcConfig::default()
            });
            controller.plan(&problem).unwrap().next_input().to_vec()
        };
        let base = mk(1.0, 4.0);
        let scaled = mk(scale, 4.0 * scale);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
