//! Property-based tests for the control substrate.

use idc_control::condense::PredictionMatrices;
use idc_control::discretize::{discretize, zoh};
use idc_control::mpc::{MpcConfig, MpcController, MpcProblem, SolverBackend, StorageProblem};
use idc_control::reference::optimal_reference;
use idc_control::statespace::CostStateSpace;
use idc_datacenter::idc::paper_idcs;
use idc_linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cost model is controllable for any strictly positive prices and
    /// marginal powers (the paper's Sec. IV-C claim).
    #[test]
    fn positive_prices_imply_controllability(
        prices in prop::collection::vec(0.1f64..200.0, 1..5),
        b1_scale in 1.0f64..200.0,
        portals in 1usize..4,
    ) {
        let n = prices.len();
        let b1: Vec<f64> = (0..n).map(|j| b1_scale * 1e-6 * (j + 1) as f64).collect();
        let b0 = vec![150e-6; n];
        let ss = CostStateSpace::new(&prices, &b1, &b0, portals).unwrap();
        prop_assert!(ss.is_controllable());
    }

    /// ZOH of a stable diagonal system matches the scalar closed form on
    /// every channel.
    #[test]
    fn zoh_diagonal_matches_closed_form(
        rates in prop::collection::vec(0.05f64..4.0, 1..5),
        ts in 0.01f64..2.0,
    ) {
        let n = rates.len();
        let a = Matrix::diag(&rates.iter().map(|r| -r).collect::<Vec<_>>());
        let b = Matrix::identity(n);
        let (phi, g) = zoh(&a, &b, ts).unwrap();
        for (i, &r) in rates.iter().enumerate() {
            prop_assert!((phi[(i, i)] - (-r * ts).exp()).abs() < 1e-9);
            prop_assert!((g[(i, i)] - (1.0 - (-r * ts).exp()) / r).abs() < 1e-9);
        }
    }

    /// Condensed prediction equals step-by-step simulation for random
    /// inputs (eq. 39 fidelity).
    #[test]
    fn condensation_equals_iteration(
        du in prop::collection::vec(-50.0f64..50.0, 4),
        u0 in 0.0f64..500.0,
        v0 in 0.0f64..5_000.0,
    ) {
        let ss = CostStateSpace::new(&[40.0, 25.0], &[70e-6, 100e-6], &[150e-6, 150e-6], 1)
            .unwrap();
        let model = discretize(&ss, 0.01).unwrap();
        let beta1 = 4;
        let beta2 = 2;
        let p = PredictionMatrices::build(&model, beta1, beta2).unwrap();
        let x0 = vec![0.0; ss.state_dim()];
        let u_prev = vec![u0; 2];
        let v = vec![v0; 2];
        let stacked = p.predict(&x0, &u_prev, &du, &v);

        let mut x = x0.clone();
        let mut u = u_prev.clone();
        for s in 0..beta1 {
            if s < beta2 {
                u[0] += du[s * 2];
                u[1] += du[s * 2 + 1];
            }
            x = model.step(&x, &u, &v);
            for (i, &xi) in x.iter().enumerate() {
                let got = stacked[s * ss.state_dim() + i];
                prop_assert!((got - xi).abs() <= 1e-9 * xi.abs().max(1.0));
            }
        }
    }

    /// The reference LP's cost never decreases when any single price rises
    /// (economic sanity: dearer electricity cannot make the optimum
    /// cheaper).
    #[test]
    fn reference_cost_is_monotone_in_prices(
        base in prop::collection::vec(10.0f64..80.0, 3),
        bump in 0.5f64..30.0,
        which in 0usize..3,
    ) {
        let idcs = paper_idcs();
        let offered = [60_000.0];
        let before = optimal_reference(&idcs, &offered, &base).unwrap();
        let mut higher = base.clone();
        higher[which] += bump;
        let after = optimal_reference(&idcs, &offered, &higher).unwrap();
        prop_assert!(
            after.cost_rate_per_hour() >= before.cost_rate_per_hour() - 1e-6,
            "{} < {}",
            after.cost_rate_per_hour(),
            before.cost_rate_per_hour()
        );
    }

    /// The two solver backends are interchangeable: on randomized fleets,
    /// horizons and budget-style references they produce the same
    /// closed-loop trajectory, with the fleet power cost agreeing to
    /// ≤ 1e-8 relative. The condensed-dense path and the banded Riccati
    /// path solve the same strictly convex QP through entirely different
    /// factorizations, so this pins the y-space reformulation against the
    /// x-space lowering.
    #[test]
    fn banded_backend_matches_dense_on_random_instances(
        dims in prop::collection::vec(0usize..3, 4),
        load_scale in 2_000.0f64..15_000.0,
        ref_seed in prop::collection::vec(0.5f64..5.0, 4),
        clamp_mask in prop::collection::vec(0usize..2, 4),
        drift in 0.85f64..1.15,
    ) {
        // Fleet size, portal count and horizons from one draw (the shim
        // proptest only supports small tuples).
        let (n, c, beta2, extra) = (1 + dims[0], 1 + dims[1], 1 + dims[2], dims[3]);
        let beta1 = beta2 + extra;
        let b1_mw: Vec<f64> = (0..n).map(|j| 60e-6 + 15e-6 * j as f64).collect();
        let total_load = load_scale * c as f64;
        let mut prev = vec![0.0; n * c];
        for i in 0..c {
            // All load starts on the last IDC — the price-flip shape that
            // forces a multi-step transfer.
            prev[(n - 1) * c + i] = load_scale;
        }
        let mk_problem = |scale: f64, prev_input: Vec<f64>| MpcProblem {
            b1_mw: b1_mw.clone(),
            b0_mw: vec![150e-6; n],
            servers_on: vec![20_000; n],
            capacities: vec![total_load * 1.6 / n as f64; n],
            prev_input,
            workload_forecast: vec![vec![load_scale * scale; c]; beta2],
            power_reference_mw: vec![
                (0..n).map(|j| ref_seed[j % ref_seed.len()]).collect();
                beta1
            ],
            // Budget-clamped IDCs carry the heavy peak-shaving weight.
            tracking_multiplier: (0..n)
                .map(|j| if clamp_mask[j % clamp_mask.len()] == 1 { 25.0 } else { 1.0 })
                .collect(),
            storage: None,
        };
        let config = |backend| MpcConfig {
            prediction_horizon: beta1,
            control_horizon: beta2,
            backend,
            ..MpcConfig::default()
        };
        let mut dense = MpcController::new(config(SolverBackend::CondensedDense));
        let mut banded = MpcController::new(config(SolverBackend::BandedRiccati));
        let mut prev_dense = prev.clone();
        let mut prev_banded = prev;
        for step in 0..3 {
            // Drift the workload so warm starts see a moving problem, but
            // keep it inside the 1.6× capacity margin.
            let scale = drift.powi(step).min(1.5);
            let pd = dense
                .plan(&mk_problem(scale, prev_dense.clone()))
                .unwrap();
            let pb = banded
                .plan(&mk_problem(scale, prev_banded.clone()))
                .unwrap();
            let cost = |p: &idc_control::mpc::MpcPlan| -> f64 {
                p.predicted_power_mw()
                    .iter()
                    .map(|row| row.iter().sum::<f64>())
                    .sum()
            };
            let (cd, cb) = (cost(&pd), cost(&pb));
            prop_assert!(
                (cd - cb).abs() <= 1e-8 * cd.abs().max(1e-12),
                "step {step}: power cost {cd} vs {cb}"
            );
            for (i, (a, b)) in pd.next_input().iter().zip(pb.next_input()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                    "step {step}, input {i}: {a} vs {b}"
                );
            }
            prev_dense = pd.next_input().to_vec();
            prev_banded = pb.next_input().to_vec();
        }
    }

    /// Storage-enabled problems keep the backends interchangeable: with a
    /// battery per IDC the stage blocks grow from `N·C` to `N·C + 2N`
    /// (charge and discharge rate changes), yet on randomized capacities,
    /// rates, efficiencies and initial charge the dense and banded paths
    /// still agree on the fleet power cost to ≤ 1e-8 relative over a
    /// lockstep closed loop — including the battery rate plans.
    #[test]
    fn storage_banded_matches_dense_on_random_instances(
        dims in prop::collection::vec(0usize..3, 3),
        load_scale in 2_000.0f64..12_000.0,
        cap_mwh in 0.5f64..8.0,
        rate_mw in 0.2f64..3.0,
        eff in prop::collection::vec(0.85f64..1.0, 2),
        // Two draws in one vector (the shim proptest caps tuple arity):
        // initial SoC fraction and the reference scale offset.
        fracs in prop::collection::vec(0.05f64..0.95, 2),
    ) {
        let soc_frac = fracs[0];
        let ref_scale = 0.5 + fracs[1];
        let (n, c, extra) = (1 + dims[0], 1 + dims[1], dims[2]);
        let beta2 = 2;
        let beta1 = beta2 + extra;
        let dt = 1.0 / 12.0;
        let b1_mw: Vec<f64> = (0..n).map(|j| 60e-6 + 15e-6 * j as f64).collect();
        let total_load = load_scale * c as f64;
        let mut prev = vec![0.0; n * c];
        for i in 0..c {
            prev[(n - 1) * c + i] = load_scale;
        }
        // The reference sits below the IT draw, so the optimizer has an
        // incentive to dispatch the battery toward it.
        let nominal_mw = |j: usize| 150e-6 * 20_000.0 + b1_mw[j] * total_load / n as f64;
        let mk_problem = |prev_input: Vec<f64>, soc: Vec<f64>, pc: Vec<f64>, pd: Vec<f64>| {
            MpcProblem {
                b1_mw: b1_mw.clone(),
                b0_mw: vec![150e-6; n],
                servers_on: vec![20_000; n],
                capacities: vec![total_load * 1.6 / n as f64; n],
                prev_input,
                workload_forecast: vec![vec![load_scale; c]; beta2],
                power_reference_mw: vec![
                    (0..n).map(|j| ref_scale * nominal_mw(j)).collect();
                    beta1
                ],
                tracking_multiplier: MpcProblem::uniform_tracking(n),
                storage: Some(StorageProblem {
                    capacity_mwh: vec![cap_mwh; n],
                    max_charge_mw: vec![rate_mw; n],
                    max_discharge_mw: vec![rate_mw; n],
                    charge_efficiency: vec![eff[0]; n],
                    discharge_efficiency: vec![eff[1]; n],
                    soc_mwh: soc,
                    prev_charge_mw: pc,
                    prev_discharge_mw: pd,
                    dt_hours: dt,
                }),
            }
        };
        let config = |backend| MpcConfig {
            prediction_horizon: beta1,
            control_horizon: beta2,
            backend,
            ..MpcConfig::default()
        };
        let mut dense = MpcController::new(config(SolverBackend::CondensedDense));
        let mut banded = MpcController::new(config(SolverBackend::BandedRiccati));
        let mut prev_input = prev;
        let mut soc = vec![cap_mwh * soc_frac; n];
        let mut prev_c = vec![0.0; n];
        let mut prev_d = vec![0.0; n];
        for step in 0..3 {
            let problem = mk_problem(
                prev_input.clone(), soc.clone(), prev_c.clone(), prev_d.clone(),
            );
            let pd = dense.plan(&problem).unwrap();
            let pb = banded.plan(&problem).unwrap();
            let cost = |p: &idc_control::mpc::MpcPlan| -> f64 {
                p.predicted_power_mw()
                    .iter()
                    .map(|row| row.iter().sum::<f64>())
                    .sum()
            };
            let (cd, cb) = (cost(&pd), cost(&pb));
            prop_assert!(
                (cd - cb).abs() <= 1e-8 * cd.abs().max(1e-12),
                "step {step}: power cost {cd} vs {cb}"
            );
            for (i, (a, b)) in pd
                .next_charge_mw()
                .iter()
                .chain(pd.next_discharge_mw())
                .zip(pb.next_charge_mw().iter().chain(pb.next_discharge_mw()))
                .enumerate()
            {
                prop_assert!(
                    (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                    "step {step}, rate {i}: {a} vs {b}"
                );
            }
            // Advance the loop with the banded plan through the physical
            // battery dynamics.
            prev_input = pb.next_input().to_vec();
            prev_c = pb.next_charge_mw().to_vec();
            prev_d = pb.next_discharge_mw().to_vec();
            for j in 0..n {
                let delta = eff[0] * prev_c[j] * dt - prev_d[j] * dt / eff[1];
                soc[j] = (soc[j] + delta).clamp(0.0, cap_mwh);
            }
        }
    }

    /// MPC plans are insensitive to uniform scaling of both tracking and
    /// smoothing weights (only the ratio matters).
    #[test]
    fn mpc_is_scale_invariant_in_weights(scale in 0.1f64..10.0) {
        let mk = |q: f64, r: f64| {
            let problem = MpcProblem {
                b1_mw: vec![67.5e-6, 108.0e-6],
                b0_mw: vec![150e-6, 150e-6],
                servers_on: vec![10_000, 10_000],
                capacities: vec![19_000.0, 11_500.0],
                prev_input: vec![10_000.0, 0.0],
                workload_forecast: vec![vec![10_000.0]; 3],
                power_reference_mw: vec![vec![1.5, 2.4]; 5],
                tracking_multiplier: MpcProblem::uniform_tracking(2),
                storage: None,
            };
            let mut controller = MpcController::new(MpcConfig {
                tracking_weight: q,
                smoothing_weight: r,
                // The ridge must scale with the weights too, or it changes
                // the effective Q/R ratio.
                input_ridge: 1e-9 * q,
                ..MpcConfig::default()
            });
            controller.plan(&problem).unwrap().next_input().to_vec()
        };
        let base = mk(1.0, 4.0);
        let scaled = mk(scale, 4.0 * scale);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
