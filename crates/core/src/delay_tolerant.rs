//! Extension — delay-tolerant workload deferral (paper Sec. II, citing
//! Yao et al. \[9\].).
//!
//! The paper's related work exploits a second temporal lever: *batch*
//! workload (MapReduce-style analytics) tolerates hours of delay and can
//! be shifted to cheap-price hours, trading service delay for electricity
//! cost. This module implements a compact hourly model of that trade-off
//! on top of the geographic reference optimizer:
//!
//! * each hour, portals offer `interactive + batch` workload; interactive
//!   must be served immediately, batch may be queued up to a deadline;
//! * a [`DeferralStrategy`] decides how much backlog to release each hour
//!   (deadline-forced work is always released);
//! * the geographic split of whatever is served comes from the eq. 46 LP,
//!   so the deferral layer composes with — rather than replaces — the
//!   paper's spatial optimization.

use std::collections::VecDeque;

use idc_control::reference::optimal_reference;
use idc_datacenter::fleet::IdcFleet;
use idc_market::trace::{prices_at_hour, PriceTrace};

use crate::{Error, Result};

/// How deferred (batch) workload is scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeferralStrategy {
    /// Serve everything on arrival (the no-deferral baseline).
    ServeImmediately,
    /// Release backlog only in hours whose fleet-weighted price is at or
    /// below the given percentile of the day (0–100); deadline-forced work
    /// is always released.
    ThresholdDefer {
        /// Price percentile (0–100) under which backlog is released.
        percentile: f64,
    },
}

/// One cohort of deferred batch work.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cohort {
    arrival_hour: usize,
    deadline_hour: usize,
    volume: f64,
}

/// Per-hour record of the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct HourRecord {
    /// Hour of day (0–23).
    pub hour: usize,
    /// Interactive workload served (req/s).
    pub interactive: f64,
    /// Batch workload served this hour (req/s).
    pub batch_served: f64,
    /// Backlog remaining after the hour (req/s·h equivalents).
    pub backlog: f64,
    /// Electricity cost for the hour ($).
    pub cost: f64,
}

/// Result of a one-day delay-tolerant run.
#[derive(Debug, Clone, PartialEq)]
pub struct DayResult {
    records: Vec<HourRecord>,
    total_cost: f64,
    mean_delay_hours: f64,
    max_backlog: f64,
    deadline_violations: usize,
}

impl DayResult {
    /// Per-hour records.
    pub fn records(&self) -> &[HourRecord] {
        &self.records
    }

    /// Total electricity cost for the day ($).
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Volume-weighted mean batch delay (hours).
    pub fn mean_delay_hours(&self) -> f64 {
        self.mean_delay_hours
    }

    /// Largest backlog reached (req/s·h).
    pub fn max_backlog(&self) -> f64 {
        self.max_backlog
    }

    /// Number of cohorts that missed their deadline (0 for a correct
    /// strategy).
    pub fn deadline_violations(&self) -> usize {
        self.deadline_violations
    }
}

/// Configuration of the delay-tolerant day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayTolerantConfig {
    /// Fraction of the offered workload that is deferrable batch (0–1).
    pub batch_fraction: f64,
    /// Maximum tolerated delay in hours (≥ 1).
    pub max_delay_hours: usize,
}

impl DelayTolerantConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for an out-of-range fraction or zero
    /// delay bound.
    pub fn validated(self) -> Result<Self> {
        if !(0.0..=1.0).contains(&self.batch_fraction) {
            return Err(Error::Config(format!(
                "batch_fraction {} outside [0, 1]",
                self.batch_fraction
            )));
        }
        if self.max_delay_hours == 0 {
            return Err(Error::Config("max_delay_hours must be ≥ 1".into()));
        }
        Ok(self)
    }
}

/// Simulates one 24-hour day of delay-tolerant operation.
///
/// Each hour: interactive load plus the strategy's batch release is split
/// geographically by the eq. 46 LP and charged at that hour's prices.
/// Backlog release is capped by the fleet's remaining capacity.
///
/// # Errors
///
/// * [`Error::Config`] for invalid configuration.
/// * Optimizer errors if even the interactive load is infeasible.
pub fn simulate_day(
    fleet: &IdcFleet,
    traces: &[PriceTrace],
    config: DelayTolerantConfig,
    strategy: DeferralStrategy,
) -> Result<DayResult> {
    let config = config.validated()?;
    let offered = fleet.offered_workloads();
    let total_offered: f64 = offered.iter().sum();
    let interactive_rate = total_offered * (1.0 - config.batch_fraction);
    let batch_rate = total_offered * config.batch_fraction;
    let capacity = fleet.total_capacity();

    // Fleet-weighted hourly price index used by the threshold strategy:
    // the cost rate of serving the interactive load optimally.
    let hourly_index: Vec<f64> = (0..24)
        .map(|h| {
            let prices = prices_at_hour(traces, h as f64);
            optimal_reference(fleet.idcs(), &[interactive_rate.max(1.0)], &prices)
                .map(|r| r.cost_rate_per_hour())
                .unwrap_or(f64::INFINITY)
        })
        .collect();
    let threshold = match strategy {
        DeferralStrategy::ServeImmediately => f64::INFINITY,
        DeferralStrategy::ThresholdDefer { percentile } => {
            let mut sorted = hourly_index.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite index"));
            let idx = ((percentile.clamp(0.0, 100.0) / 100.0) * 23.0).round() as usize;
            sorted[idx]
        }
    };

    let mut queue: VecDeque<Cohort> = VecDeque::new();
    let mut records = Vec::with_capacity(24);
    let mut total_cost = 0.0;
    let mut delay_volume = 0.0;
    let mut served_volume = 0.0;
    let mut max_backlog = 0.0f64;
    let mut deadline_violations = 0;

    for hour in 0..24 {
        // New batch arrives.
        if batch_rate > 0.0 {
            queue.push_back(Cohort {
                arrival_hour: hour,
                deadline_hour: hour + config.max_delay_hours,
                volume: batch_rate,
            });
        }

        // Deadline-forced release (EDF order).
        let mut release = 0.0;
        for c in &queue {
            if c.deadline_hour <= hour + 1 {
                release += c.volume;
            }
        }
        // Opportunistic release when the hour is cheap.
        let headroom = (capacity * 0.999 - interactive_rate - release).max(0.0);
        if hourly_index[hour] <= threshold {
            let backlog: f64 = queue.iter().map(|c| c.volume).sum();
            release += (backlog - release).min(headroom).max(0.0);
        }

        // Drain the queue EDF-first and account delays.
        let mut to_serve = release;
        while to_serve > 1e-9 {
            let Some(front) = queue.front_mut() else {
                break;
            };
            let take = front.volume.min(to_serve);
            front.volume -= take;
            to_serve -= take;
            delay_volume += take * (hour - front.arrival_hour) as f64;
            served_volume += take;
            if front.deadline_hour <= hour {
                deadline_violations += 1;
            }
            if front.volume <= 1e-9 {
                queue.pop_front();
            }
        }
        let batch_served = release - to_serve;

        // Geographic split + cost for everything served this hour.
        let prices = prices_at_hour(traces, hour as f64);
        let served = interactive_rate + batch_served;
        let reference = optimal_reference(fleet.idcs(), &[served.max(1.0)], &prices)?;
        let cost = reference.cost_rate_per_hour();
        total_cost += cost;

        let backlog: f64 = queue.iter().map(|c| c.volume).sum();
        max_backlog = max_backlog.max(backlog);
        records.push(HourRecord {
            hour,
            interactive: interactive_rate,
            batch_served,
            backlog,
            cost,
        });
    }
    // Flush whatever remains at day end (charged at hour 23 prices) so
    // strategies are compared on equal served volume.
    let leftover: f64 = queue.iter().map(|c| c.volume).sum();
    if leftover > 1e-9 {
        let prices = prices_at_hour(traces, 23.0);
        let reference =
            optimal_reference(fleet.idcs(), &[leftover.min(capacity * 0.999)], &prices)?;
        total_cost += reference.cost_rate_per_hour();
        for c in &queue {
            delay_volume += c.volume * (23usize.saturating_sub(c.arrival_hour)) as f64;
            served_volume += c.volume;
            if c.deadline_hour <= 23 {
                deadline_violations += 1;
            }
        }
    }

    Ok(DayResult {
        records,
        total_cost,
        mean_delay_hours: if served_volume > 0.0 {
            delay_volume / served_volume
        } else {
            0.0
        },
        max_backlog,
        deadline_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn setup() -> (IdcFleet, Vec<PriceTrace>) {
        (
            config::paper_fleet_calibrated(),
            config::paper_price_traces(),
        )
    }

    #[test]
    fn config_is_validated() {
        assert!(DelayTolerantConfig {
            batch_fraction: 1.5,
            max_delay_hours: 4
        }
        .validated()
        .is_err());
        assert!(DelayTolerantConfig {
            batch_fraction: 0.3,
            max_delay_hours: 0
        }
        .validated()
        .is_err());
        assert!(DelayTolerantConfig {
            batch_fraction: 0.3,
            max_delay_hours: 4
        }
        .validated()
        .is_ok());
    }

    #[test]
    fn serve_immediately_has_zero_delay() {
        let (fleet, traces) = setup();
        let cfg = DelayTolerantConfig {
            batch_fraction: 0.3,
            max_delay_hours: 6,
        };
        let r = simulate_day(&fleet, &traces, cfg, DeferralStrategy::ServeImmediately).unwrap();
        assert_eq!(r.mean_delay_hours(), 0.0);
        assert_eq!(r.max_backlog(), 0.0);
        assert_eq!(r.deadline_violations(), 0);
        assert!(r.total_cost() > 0.0);
        assert_eq!(r.records().len(), 24);
    }

    #[test]
    fn deferral_saves_money_at_the_cost_of_delay() {
        let (fleet, traces) = setup();
        let cfg = DelayTolerantConfig {
            batch_fraction: 0.3,
            max_delay_hours: 8,
        };
        let now = simulate_day(&fleet, &traces, cfg, DeferralStrategy::ServeImmediately).unwrap();
        let defer = simulate_day(
            &fleet,
            &traces,
            cfg,
            DeferralStrategy::ThresholdDefer { percentile: 30.0 },
        )
        .unwrap();
        assert!(
            defer.total_cost() < now.total_cost(),
            "defer {} !< now {}",
            defer.total_cost(),
            now.total_cost()
        );
        assert!(defer.mean_delay_hours() > 0.1);
        assert_eq!(defer.deadline_violations(), 0);
    }

    #[test]
    fn zero_batch_fraction_makes_strategies_identical() {
        let (fleet, traces) = setup();
        let cfg = DelayTolerantConfig {
            batch_fraction: 0.0,
            max_delay_hours: 4,
        };
        let a = simulate_day(&fleet, &traces, cfg, DeferralStrategy::ServeImmediately).unwrap();
        let b = simulate_day(
            &fleet,
            &traces,
            cfg,
            DeferralStrategy::ThresholdDefer { percentile: 20.0 },
        )
        .unwrap();
        assert!((a.total_cost() - b.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn tighter_deadlines_reduce_the_savings() {
        let (fleet, traces) = setup();
        let loose = simulate_day(
            &fleet,
            &traces,
            DelayTolerantConfig {
                batch_fraction: 0.3,
                max_delay_hours: 12,
            },
            DeferralStrategy::ThresholdDefer { percentile: 25.0 },
        )
        .unwrap();
        let tight = simulate_day(
            &fleet,
            &traces,
            DelayTolerantConfig {
                batch_fraction: 0.3,
                max_delay_hours: 2,
            },
            DeferralStrategy::ThresholdDefer { percentile: 25.0 },
        )
        .unwrap();
        assert!(loose.total_cost() <= tight.total_cost() + 1e-6);
        assert_eq!(tight.deadline_violations(), 0);
    }
}
