//! Streaming feed abstractions for online control.
//!
//! The batch simulator conjures each step's workload and prices inline; an
//! online runtime consumes them from *feeds* that may deliver late,
//! duplicated, out-of-order — or never. A feed is polled once per fast
//! tick and returns whatever [`Observation`]s *arrive* at that tick, each
//! stamped with the tick it describes. The consumer keeps the
//! newest-by-stamp value it has seen (hold-last-value) and applies its own
//! staleness policy on top; the trait deliberately says nothing about
//! transport or fault model.

/// One timestamped feed sample: `value` describes tick `tick`, however
/// late it arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation<T> {
    /// The fast-loop tick this sample describes (not the arrival tick).
    pub tick: u64,
    /// The sample payload.
    pub value: T,
}

/// A stream of per-portal offered-workload vectors (req/s).
pub trait WorkloadFeed {
    /// Returns the observations arriving at fast tick `tick` — possibly
    /// none, possibly a backlog of late ones, in arbitrary stamp order.
    fn poll(&mut self, tick: u64) -> Vec<Observation<Vec<f64>>>;
}

/// A stream of per-region price vectors ($/MWh).
///
/// Demand-responsive tariffs price the *consumer's own demand*, so the
/// poll carries the hour and the previous step's per-IDC power draw — the
/// same feedback the batch simulator gives
/// [`crate::scenario::PricingSpec::prices`].
pub trait PriceFeed {
    /// Returns the observations arriving at fast tick `tick`.
    fn poll(&mut self, tick: u64, hour: f64, last_power_mw: &[f64]) -> Vec<Observation<Vec<f64>>>;
}
