//! Streaming feed abstractions for online control.
//!
//! The batch simulator conjures each step's workload and prices inline; an
//! online runtime consumes them from *feeds* that may deliver late,
//! duplicated, out-of-order — or never. A feed is polled once per fast
//! tick and returns whatever [`Observation`]s *arrive* at that tick, each
//! stamped with the tick it describes. The consumer keeps the
//! newest-by-stamp value it has seen (hold-last-value) and applies its own
//! staleness policy on top; the trait deliberately says nothing about
//! transport or fault model.

/// One timestamped feed sample: `value` describes tick `tick`, however
/// late it arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation<T> {
    /// The fast-loop tick this sample describes (not the arrival tick).
    pub tick: u64,
    /// The sample payload.
    pub value: T,
}

/// A stream of per-portal offered-workload vectors (req/s).
pub trait WorkloadFeed {
    /// Returns the observations arriving at fast tick `tick` — possibly
    /// none, possibly a backlog of late ones, in arbitrary stamp order.
    fn poll(&mut self, tick: u64) -> Vec<Observation<Vec<f64>>>;
}

/// Per-tick admission control for one feed: at most `bound` observations
/// are admitted per poll, the rest are *shed* (dropped, counted, never
/// retried). A multi-tenant host applies this at the feed boundary so one
/// bursting tenant cannot grow its ingest work without limit; shedding the
/// *tail* of a batch keeps the policy deterministic — arrival order within
/// a tick is itself deterministic for every feed in this workspace, so the
/// admitted prefix (and therefore the downstream trajectory) is a pure
/// function of the feed and the bound.
///
/// A bound of `0` means unbounded: everything is admitted, nothing is
/// counted. The shed counter is part of a tenant's checkpointed state
/// ([`restore`](BoundedIngest::restore) rebuilds it) so a resumed run
/// reports the same totals as an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedIngest {
    bound: usize,
    shed: u64,
}

impl BoundedIngest {
    /// Admission control admitting at most `bound` observations per tick
    /// (`0` = unbounded).
    pub fn new(bound: usize) -> Self {
        BoundedIngest { bound, shed: 0 }
    }

    /// Rebuilds admission state from a checkpoint.
    pub fn restore(bound: usize, shed: u64) -> Self {
        BoundedIngest { bound, shed }
    }

    /// Admits the head of `batch` up to the bound, sheds (drops and
    /// counts) the rest.
    pub fn admit<T>(&mut self, mut batch: Vec<Observation<T>>) -> Vec<Observation<T>> {
        if self.bound > 0 && batch.len() > self.bound {
            self.shed += (batch.len() - self.bound) as u64;
            batch.truncate(self.bound);
        }
        batch
    }

    /// The per-tick admission bound (`0` = unbounded).
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Total observations shed since construction (or since the state the
    /// ingest was [`restore`](BoundedIngest::restore)d from).
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// A stream of per-region price vectors ($/MWh).
///
/// Demand-responsive tariffs price the *consumer's own demand*, so the
/// poll carries the hour and the previous step's per-IDC power draw — the
/// same feedback the batch simulator gives
/// [`crate::scenario::PricingSpec::prices`].
pub trait PriceFeed {
    /// Returns the observations arriving at fast tick `tick`.
    fn poll(&mut self, tick: u64, hour: f64, last_power_mw: &[f64]) -> Vec<Observation<Vec<f64>>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> Vec<Observation<u64>> {
        (0..n as u64)
            .map(|tick| Observation { tick, value: tick })
            .collect()
    }

    #[test]
    fn unbounded_ingest_admits_everything() {
        let mut ingest = BoundedIngest::new(0);
        assert_eq!(ingest.admit(batch(17)).len(), 17);
        assert_eq!(ingest.shed(), 0);
    }

    #[test]
    fn bounded_ingest_sheds_the_tail_and_counts() {
        let mut ingest = BoundedIngest::new(3);
        let admitted = ingest.admit(batch(8));
        // The *prefix* survives: shedding must not reorder.
        assert_eq!(
            admitted.iter().map(|o| o.tick).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(ingest.shed(), 5);
        // Under-bound batches pass untouched and count nothing.
        assert_eq!(ingest.admit(batch(2)).len(), 2);
        assert_eq!(ingest.shed(), 5);
    }

    #[test]
    fn restore_round_trips_the_counter() {
        let mut ingest = BoundedIngest::new(1);
        ingest.admit(batch(4));
        let resumed = BoundedIngest::restore(ingest.bound(), ingest.shed());
        assert_eq!(resumed, ingest);
    }
}
