//! The paper's evaluation configurations (Tables I–III) and calibration
//! notes.
//!
//! Two fleet variants are provided:
//!
//! * [`paper_fleet_table_ii`] — Table II exactly as printed: Michigan has
//!   `M₁ = 30 000` servers and every latency bound is 1 ms;
//! * [`paper_fleet_calibrated`] — the variant the paper's *plotted
//!   trajectories* are only consistent with: `M₁ = 20 000` (the Fig. 6/7
//!   "optimal" series jumps Michigan to exactly 20 000 servers = 5.7 MW,
//!   impossible to produce as a capacity-saturation point with
//!   `M₁ = 30 000`), and a relaxed 1 s latency bound so the `1/(µD)`
//!   head-room (500–800 servers at 1 ms) does not shift the plotted server
//!   counts, which are exact multiples of `λ/µ`.
//!
//! The reproduction harness reports both; EXPERIMENTS.md documents the
//! discrepancy.

pub use idc_control::mpc::{MpcConfig, SolverBackend};

use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::portal::{paper_portals, FrontEndPortal};
use idc_datacenter::server::ServerSpec;
use idc_market::tariff::PowerBudget;
use idc_market::trace::{miso_oct3_2011, PriceTrace};

/// Portal workloads of Table I (30 k, 15 k, 15 k, 20 k, 20 k req/s).
pub fn paper_portals_table_i() -> Vec<FrontEndPortal> {
    paper_portals()
}

/// The fleet exactly as printed in Table II.
pub fn paper_fleet_table_ii() -> IdcFleet {
    IdcFleet::paper_fleet()
}

/// The fleet the plotted figures correspond to: `M₁ = 20 000`, 1 s latency
/// bound (see the [module docs](self)).
pub fn paper_fleet_calibrated() -> IdcFleet {
    let mk = |name: &str, m: u64, mu: f64| {
        IdcConfig::new(
            name,
            m,
            ServerSpec::paper_server(mu).expect("paper spec is valid"),
            1.0,
        )
        .expect("calibrated config is valid")
    };
    IdcFleet::new(
        paper_portals(),
        vec![
            mk("Michigan", 20_000, 2.0),
            mk("Minnesota", 40_000, 1.25),
            mk("Wisconsin", 20_000, 1.75),
        ],
    )
    .expect("non-empty fleet")
}

/// The Table III / Fig. 2 price traces (pinned at hours 6 and 7).
pub fn paper_price_traces() -> Vec<PriceTrace> {
    miso_oct3_2011()
}

/// The Sec. V-C power budgets (5.13 / 10.26 / 4.275 MW).
pub fn paper_power_budgets() -> PowerBudget {
    PowerBudget::paper_section_v_c()
}

/// Default sampling period of the fast (MPC) loop: 30 s, expressed in
/// hours. Ten minutes of simulation = 20 steps, matching the paper's
/// Fig. 4–7 time axis.
pub const DEFAULT_TS_HOURS: f64 = 30.0 / 3600.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_fleet_is_as_printed() {
        let f = paper_fleet_table_ii();
        assert_eq!(f.idcs()[0].total_servers(), 30_000);
        assert_eq!(f.idcs()[0].latency_bound(), 0.001);
    }

    #[test]
    fn calibrated_fleet_matches_plotted_capacities() {
        let f = paper_fleet_calibrated();
        assert_eq!(f.idcs()[0].total_servers(), 20_000);
        // Capacities ≈ Mµ (head-room ≤ 1 req/s at a 1 s bound).
        assert!((f.idcs()[0].max_workload() - 40_000.0).abs() <= 1.0);
        assert!((f.idcs()[1].max_workload() - 50_000.0).abs() <= 1.0);
        assert!((f.idcs()[2].max_workload() - 35_000.0).abs() <= 1.0);
        // Still able to serve the Table I load.
        assert!(f.is_sleep_controllable());
    }

    #[test]
    fn budgets_and_prices_are_the_paper_values() {
        assert_eq!(paper_power_budgets().as_slice(), &[5.13, 10.26, 4.275]);
        let traces = paper_price_traces();
        assert_eq!(traces[2].price_at_hour(7.0), 77.97);
    }

    #[test]
    fn default_sampling_gives_20_steps_per_10_minutes() {
        let steps = (10.0 / 60.0 / DEFAULT_TS_HOURS).round() as usize;
        assert_eq!(steps, 20);
    }
}
