//! # idc-core — dynamic control of electricity cost for distributed IDCs
//!
//! Reproduction of *"Dynamic Control of Electricity Cost with Power Demand
//! Smoothing and Peak Shaving for Distributed Internet Data Centers"*
//! (Yao, Liu, He, Rahman — ICDCS 2012).
//!
//! Geo-distributed Internet data centers can chase cheap electricity by
//! shifting workload between regions, but naive price-chasing produces
//! violently jumping power demand and grid-hostile peaks. The paper wraps
//! the cost minimization in a constrained **model-predictive controller**
//! that (a) penalizes input changes, smoothing power demand, and (b)
//! tracks a budget-clamped power reference, shaving peaks.
//!
//! This crate ties the substrates together into the paper's full system:
//!
//! * [`config`] — the evaluation setups of Tables I–III, both as printed
//!   and in the calibrated variant that matches the plotted figures,
//! * [`policy`] — the [`policy::MpcPolicy`] (the paper's contribution) and
//!   the [`policy::OptimalPolicy`] baselines (the true eq. 46 LP and the
//!   price-greedy variant the paper's plots follow),
//! * [`simulation`] — a deterministic discrete-time simulator producing
//!   per-IDC power / server / cost trajectories,
//! * [`metrics`] — cost, demand-volatility, peak and budget-violation
//!   summaries plus policy comparisons,
//! * [`scenario`] — the canned experiments behind every figure of the
//!   paper (plus the vicious-cycle and weight-ablation extensions),
//! * [`delay_tolerant`] — the batch-deferral extension (cost↔delay
//!   trade-off of the paper's related work \[9\]),
//! * [`report`] — plain-text rendering used by the reproduction harness.
//!
//! # Quickstart
//!
//! ```
//! use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
//! use idc_core::scenario::smoothing_scenario;
//! use idc_core::simulation::Simulator;
//!
//! # fn main() -> Result<(), idc_core::Error> {
//! let scenario = smoothing_scenario();
//! let sim = Simulator::new();
//! let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;
//! let opt = sim.run(&scenario, &mut OptimalPolicy::new(ReferenceKind::PriceGreedy))?;
//! // The MPC's worst power jump is far smaller than the baseline's.
//! let mpc_jump = mpc.power_stats(0).expect("nonempty run").max_abs_step_mw;
//! let opt_jump = opt.power_stats(0).expect("nonempty run").max_abs_step_mw;
//! assert!(mpc_jump < opt_jump);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod delay_tolerant;
mod error;
pub mod feed;
pub mod metrics;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod simulation;
pub mod snapshot;

pub use error::Error;
pub use idc_control::mpc::SolverBackend;
pub use idc_datacenter::idc::LatencyStatus;
pub use idc_datacenter::queueing::fractional_servers_for_latency;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
