//! Canned experiment scenarios behind the paper's figures.

use idc_datacenter::fleet::IdcFleet;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::portal::FrontEndPortal;
use idc_datacenter::server::ServerSpec;
use idc_market::fault::FaultyTracePricing;
use idc_market::region::Region;
use idc_market::rtp::{DemandResponsivePricing, PricingModel, TracePricing};
use idc_market::tariff::{DemandCharge, PowerBudget};
use idc_market::trace::PriceTrace;
use idc_storage::{paper_test_battery, StorageFleet};
use idc_timeseries::traces::DiurnalTrace;

use crate::config;

/// The price source of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingSpec {
    /// Demand-independent hourly traces (the paper's Sec. V setting).
    Trace(TracePricing),
    /// Traces plus a linear own-demand response (the vicious-cycle
    /// extension).
    DemandResponsive(DemandResponsivePricing),
    /// Traces perturbed by a deterministic fault schedule (spikes and
    /// hold-last-value dropouts) — the testkit's degraded-feed setting.
    FaultyTrace(FaultyTracePricing),
}

impl PricingSpec {
    /// Price vector at `hour` given the consumer's per-region power draw.
    pub fn prices(&self, hour: f64, own_loads_mw: &[f64]) -> Vec<f64> {
        match self {
            PricingSpec::Trace(p) => p.prices(hour, own_loads_mw),
            PricingSpec::DemandResponsive(p) => p.prices(hour, own_loads_mw),
            PricingSpec::FaultyTrace(p) => p.prices(hour, own_loads_mw),
        }
    }

    /// Number of priced regions.
    pub fn num_regions(&self) -> usize {
        match self {
            PricingSpec::Trace(p) => p.num_regions(),
            PricingSpec::DemandResponsive(p) => p.num_regions(),
            PricingSpec::FaultyTrace(p) => p.num_regions(),
        }
    }

    /// The underlying demand-independent trace source, when there is one
    /// (faulty and vicious-cycle pricing are built on top of traces).
    pub fn base_trace(&self) -> Option<&TracePricing> {
        match self {
            PricingSpec::Trace(p) => Some(p),
            PricingSpec::FaultyTrace(p) => Some(p.base()),
            PricingSpec::DemandResponsive(_) => None,
        }
    }
}

/// How the offered portal workloads evolve over the simulated window.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadProfile {
    /// Table I loads held constant (the paper's Sec. V setting).
    Constant,
    /// Each portal's Table I load is modulated by the normalized diurnal
    /// factor of the given trace: `L_i(h) = L_i · mean_at_hour(h)/base`.
    Diurnal(DiurnalTrace),
    /// Replay a pre-generated multiplicative factor series (e.g. from an
    /// MMPP): step `k` uses `factors[k % len]`.
    Replay(Vec<f64>),
}

impl WorkloadProfile {
    /// Multiplicative factor applied to the base loads at hour-of-day `h`.
    /// Replay profiles have no hour semantics and return 1 here — use
    /// [`WorkloadProfile::factor_at_step`].
    pub fn factor_at_hour(&self, hour: f64) -> f64 {
        match self {
            WorkloadProfile::Constant | WorkloadProfile::Replay(_) => 1.0,
            WorkloadProfile::Diurnal(trace) => {
                // Normalize by the trace's daily mean so the Table I loads
                // remain the daily averages.
                let daily_mean: f64 =
                    (0..24).map(|h| trace.mean_at_hour(h as f64)).sum::<f64>() / 24.0;
                if daily_mean <= 0.0 {
                    1.0
                } else {
                    trace.mean_at_hour(hour) / daily_mean
                }
            }
        }
    }
}

impl WorkloadProfile {
    /// Factor for simulation step `k` (replay profiles are indexed by
    /// step, periodic ones by hour-of-day).
    pub fn factor_at_step(&self, step: usize, hour: f64) -> f64 {
        match self {
            WorkloadProfile::Replay(factors) => {
                if factors.is_empty() {
                    1.0
                } else {
                    factors[step % factors.len()].max(0.0)
                }
            }
            other => other.factor_at_hour(hour.rem_euclid(24.0)),
        }
    }
}

/// A complete simulation scenario: fleet, prices, time window and optional
/// power budgets / workload noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    fleet: IdcFleet,
    pricing: PricingSpec,
    start_hour: f64,
    duration_hours: f64,
    ts_hours: f64,
    init_hour: f64,
    budgets: Option<PowerBudget>,
    workload_noise_std: f64,
    workload_profile: WorkloadProfile,
    seed: u64,
    storage: Option<StorageFleet>,
    demand_charge: Option<DemandCharge>,
}

impl Scenario {
    /// Creates a scenario with no budgets and deterministic workload.
    ///
    /// Returns `None` when the pricing region count differs from the
    /// fleet's IDC count, or the time parameters are not positive.
    pub fn new(
        name: impl Into<String>,
        fleet: IdcFleet,
        pricing: PricingSpec,
        start_hour: f64,
        duration_hours: f64,
        ts_hours: f64,
    ) -> Option<Self> {
        if pricing.num_regions() != fleet.num_idcs() || !(duration_hours > 0.0) || !(ts_hours > 0.0)
        {
            return None;
        }
        Some(Scenario {
            name: name.into(),
            fleet,
            pricing,
            start_hour,
            duration_hours,
            ts_hours,
            init_hour: start_hour,
            budgets: None,
            workload_noise_std: 0.0,
            workload_profile: WorkloadProfile::Constant,
            seed: 2012,
            storage: None,
            demand_charge: None,
        })
    }

    /// Sets the hour whose prices are used to *initialize* policies before
    /// the window starts (e.g. settle at the 6H optimum, then start at 7H).
    pub fn with_init_hour(mut self, hour: f64) -> Self {
        self.init_hour = hour;
        self
    }

    /// Attaches per-IDC power budgets (enables peak shaving).
    pub fn with_budgets(mut self, budgets: PowerBudget) -> Self {
        self.budgets = Some(budgets);
        self
    }

    /// Adds multiplicative Gaussian workload noise with the given relative
    /// standard deviation (e.g. 0.05 = 5 %).
    pub fn with_workload_noise(mut self, relative_std: f64, seed: u64) -> Self {
        self.workload_noise_std = relative_std.max(0.0);
        self.seed = seed;
        self
    }

    /// Replaces the price source (e.g. with a fault-injected one).
    /// Returns `None` when the new source's region count differs from the
    /// fleet's IDC count.
    pub fn with_pricing(mut self, pricing: PricingSpec) -> Option<Self> {
        if pricing.num_regions() != self.fleet.num_idcs() {
            return None;
        }
        self.pricing = pricing;
        Some(self)
    }

    /// Renames the scenario (fault plans tag perturbed variants this way).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fleet under control.
    pub fn fleet(&self) -> &IdcFleet {
        &self.fleet
    }

    /// The price source.
    pub fn pricing(&self) -> &PricingSpec {
        &self.pricing
    }

    /// First simulated hour of day.
    pub fn start_hour(&self) -> f64 {
        self.start_hour
    }

    /// Window length in hours.
    pub fn duration_hours(&self) -> f64 {
        self.duration_hours
    }

    /// Sampling period in hours.
    pub fn ts_hours(&self) -> f64 {
        self.ts_hours
    }

    /// Hour used for policy initialization.
    pub fn init_hour(&self) -> f64 {
        self.init_hour
    }

    /// Power budgets, if peak shaving is enabled.
    pub fn budgets(&self) -> Option<&PowerBudget> {
        self.budgets.as_ref()
    }

    /// Attaches per-IDC battery/UPS storage. Returns `None` when the
    /// fleet sizes differ. An *inert* storage fleet (no unit can move
    /// energy) is normalized to "no storage", so zero-capacity
    /// configurations stay byte-identical to storage-free runs.
    pub fn with_storage(mut self, storage: StorageFleet) -> Option<Self> {
        if storage.num_idcs() != self.fleet.num_idcs() {
            return None;
        }
        self.storage = (!storage.is_inert()).then_some(storage);
        Some(self)
    }

    /// Attaches a billed-peak demand charge to the electricity tariff.
    pub fn with_demand_charge(mut self, tariff: DemandCharge) -> Self {
        self.demand_charge = Some(tariff);
        self
    }

    /// Per-IDC battery/UPS storage, when configured (never an inert
    /// fleet — those normalize to `None`).
    pub fn storage(&self) -> Option<&StorageFleet> {
        self.storage.as_ref()
    }

    /// The billed-peak demand charge, when the tariff has one.
    pub fn demand_charge(&self) -> Option<&DemandCharge> {
        self.demand_charge.as_ref()
    }

    /// Sets a time-varying workload profile (diurnal modulation of the
    /// base loads).
    pub fn with_workload_profile(mut self, profile: WorkloadProfile) -> Self {
        self.workload_profile = profile;
        self
    }

    /// Relative workload noise standard deviation.
    pub fn workload_noise_std(&self) -> f64 {
        self.workload_noise_std
    }

    /// The workload evolution profile.
    pub fn workload_profile(&self) -> &WorkloadProfile {
        &self.workload_profile
    }

    /// RNG seed for the workload noise.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of simulation steps.
    pub fn num_steps(&self) -> usize {
        (self.duration_hours / self.ts_hours).round().max(1.0) as usize
    }

    /// Truncates or extends the scenario to exactly `steps` sampling
    /// periods (sets the duration to `steps · Ts`). Handy for smoke runs
    /// of long scenarios and for the online runtime's bounded soaks.
    pub fn with_num_steps(mut self, steps: usize) -> Self {
        self.duration_hours = steps.max(1) as f64 * self.ts_hours;
        self
    }
}

/// Figs. 4/5 — power-demand smoothing across the 6H→7H price flip:
/// calibrated fleet, policies initialized at the 6H optimum, a 12.5-minute
/// window (2.5 min at 6H prices, then the flip, then 10 min at 7H) sampled
/// every 30 s — so the recorded series contains both the baseline's step
/// jump and the MPC's ramp, as in the paper's plots.
pub fn smoothing_scenario() -> Scenario {
    let ts = config::DEFAULT_TS_HOURS;
    Scenario::new(
        "power-demand-smoothing (Figs. 4-5)",
        config::paper_fleet_calibrated(),
        PricingSpec::Trace(TracePricing::new(config::paper_price_traces())),
        7.0 - 5.0 * ts,
        25.0 * ts,
        ts,
    )
    .expect("paper scenario is consistent")
    .with_init_hour(6.5)
}

/// Figs. 6/7 — peak shaving: the smoothing scenario plus the Sec. V-C
/// power budgets (5.13 / 10.26 / 4.275 MW).
pub fn peak_shaving_scenario() -> Scenario {
    let s = smoothing_scenario().with_budgets(config::paper_power_budgets());
    Scenario {
        name: "peak-shaving (Figs. 6-7)".into(),
        ..s
    }
}

/// The smoothing experiment on the fleet exactly as printed in Table II
/// (`M₁ = 30 000`, 1 ms latency bound) — used to quantify the calibration
/// gap in EXPERIMENTS.md.
pub fn smoothing_scenario_table_ii() -> Scenario {
    Scenario::new(
        "power-demand-smoothing (Table II as printed)",
        config::paper_fleet_table_ii(),
        PricingSpec::Trace(TracePricing::new(config::paper_price_traces())),
        7.0,
        10.0 / 60.0,
        config::DEFAULT_TS_HOURS,
    )
    .expect("paper scenario is consistent")
    .with_init_hour(6.5)
}

/// Extension — the demand↔price "vicious cycle" of Sec. I: prices respond
/// linearly to the fleet's own power draw with impact coefficient `gamma`
/// ($/MWh per MW). One hour around the 6H→7H flip.
pub fn vicious_cycle_scenario(gamma: f64) -> Scenario {
    let pricing = DemandResponsivePricing::new(
        TracePricing::new(config::paper_price_traces()),
        gamma.max(0.0),
    )
    .expect("non-negative gamma");
    Scenario::new(
        format!("vicious-cycle (gamma = {gamma})"),
        config::paper_fleet_calibrated(),
        PricingSpec::DemandResponsive(pricing),
        6.5,
        1.0,
        config::DEFAULT_TS_HOURS,
    )
    .expect("paper scenario is consistent")
    .with_init_hour(6.0)
}

/// Extension — a noisy full-day run exercising the workload predictor in
/// the loop (diurnal noise on the Table I loads).
pub fn noisy_day_scenario(seed: u64) -> Scenario {
    Scenario::new(
        "noisy-day",
        config::paper_fleet_calibrated(),
        PricingSpec::Trace(TracePricing::new(config::paper_price_traces())),
        0.0,
        24.0,
        5.0 / 60.0, // 5-minute sampling keeps the day tractable
    )
    .expect("paper scenario is consistent")
    .with_workload_noise(0.05, seed)
}

/// Extension — a full day with *diurnal* workload: the Table I loads swing
/// ±18 % around their daily means (office-hours peak at 14:00) with 3 %
/// noise, exercising the AR+RLS predictor and both control loops across
/// workload ramps as well as price changes.
pub fn diurnal_day_scenario(seed: u64) -> Scenario {
    // Peak factor ≈ 1.18 keeps the peak-hour fleet inside its 125 000 req/s
    // capacity; rarer noise excursions are handled by the simulator's
    // admission control.
    let shape = DiurnalTrace::new(1000.0)
        .amplitude(150.0)
        .second_harmonic(30.0)
        .peak_hour(14.0);
    Scenario::new(
        "diurnal-day",
        config::paper_fleet_calibrated(),
        PricingSpec::Trace(TracePricing::new(config::paper_price_traces())),
        0.0,
        24.0,
        5.0 / 60.0,
    )
    .expect("paper scenario is consistent")
    .with_workload_profile(WorkloadProfile::Diurnal(shape))
    .with_workload_noise(0.03, seed)
}

/// Extension — a parametric fleet of `n` IDCs × `c` portals over a noisy
/// full day (5-minute sampling, 3 % workload noise), for hosting many
/// *heterogeneous* control loops: per-IDC efficiency, base price and
/// post-7H price offsets are deterministic functions of the IDC index, so
/// `scaled_fleet_scenario(4, 8, seed)` is the same experiment everywhere
/// while differing from `scaled_fleet_scenario(6, 8, seed)` in shape, not
/// just in seed. Mirrors the synthetic fleet of the `bench_summary`
/// scaling study. `n` and `c` are clamped to at least 1.
pub fn scaled_fleet_scenario(n: usize, c: usize, seed: u64) -> Scenario {
    let n = n.max(1);
    let c = c.max(1);
    let idcs: Vec<IdcConfig> = (0..n)
        .map(|j| {
            IdcConfig::new(
                format!("idc-{j}"),
                30_000,
                ServerSpec::new(150.0, 285.0, 1.25 + 0.25 * (j % 4) as f64).expect("valid spec"),
                1.0,
            )
            .expect("valid IDC")
        })
        .collect();
    // 60 % aggregate utilization at the daily mean leaves headroom for the
    // diurnal-free noise excursions.
    let per_portal = idcs.iter().map(|i| i.max_workload()).sum::<f64>() * 0.6 / c as f64;
    let portals: Vec<FrontEndPortal> = (0..c)
        .map(|i| FrontEndPortal::new(format!("portal-{i}"), per_portal).expect("valid portal"))
        .collect();
    let traces: Vec<PriceTrace> = (0..n)
        .map(|j| {
            let base = 25.0 + (j as f64 * 13.7) % 30.0;
            let hourly: Vec<f64> = (0..24)
                .map(|h| {
                    if h >= 7 {
                        base + ((j as f64 * 31.1) % 45.0) - 20.0
                    } else {
                        base
                    }
                })
                .collect();
            PriceTrace::new(Region::new(j, format!("region-{j}")), hourly).expect("24 values")
        })
        .collect();
    Scenario::new(
        format!("scaled-fleet-{n}x{c}"),
        IdcFleet::new(portals, idcs).expect("non-empty fleet"),
        PricingSpec::Trace(TracePricing::new(traces)),
        0.0,
        24.0,
        5.0 / 60.0,
    )
    .expect("scaled fleet scenario is consistent")
    .with_workload_noise(0.03, seed)
}

/// Extension — peak shaving with a battery actuator: the Figs. 6/7
/// peak-shaving experiment (Sec. V-C budgets) with a
/// [`paper_test_battery`] at every IDC. Where the paper's controller can
/// only *move* load away from a budget-capped IDC, this one can also
/// serve it locally from storage — the budget-violating transients of the
/// storage-free run shrink or disappear.
pub fn storage_peak_shaving_scenario() -> Scenario {
    let s = peak_shaving_scenario()
        .with_storage(StorageFleet::uniform(3, paper_test_battery()).expect("non-empty fleet"))
        .expect("one unit per IDC");
    s.with_name("storage-peak-shaving")
}

/// Extension — a billed-peak demand charge on the diurnal day: the
/// workload-shifting controller alone against a tariff that bills the
/// period-maximum demand (Wang et al., arXiv:1308.0585) on top of energy.
/// The baseline the storage actuator is judged against.
pub fn demand_charge_scenario(seed: u64) -> Scenario {
    diurnal_day_scenario(seed)
        .with_demand_charge(DemandCharge::typical_commercial())
        .with_name("demand-charge")
}

/// Extension — storage *plus* shifting on the demand-charge day: the same
/// tariff and diurnal trace as [`demand_charge_scenario`], with a
/// [`paper_test_battery`] at every IDC. The acceptance experiment: total
/// cost (energy + demand charges) must come in below shifting alone.
pub fn storage_plus_shifting_scenario(seed: u64) -> Scenario {
    demand_charge_scenario(seed)
        .with_storage(StorageFleet::uniform(3, paper_test_battery()).expect("non-empty fleet"))
        .expect("one unit per IDC")
        .with_name("storage-plus-shifting")
}

/// Extension — an MMPP-driven hour: flash-crowd arrivals from a two-state
/// Markov-modulated Poisson process replayed as the workload factor series.
pub fn mmpp_hour_scenario(seed: u64) -> Scenario {
    use idc_timeseries::mmpp::MarkovModulatedPoisson;
    use rand::{rngs::StdRng, SeedableRng};

    let mmpp = MarkovModulatedPoisson::new(
        vec![0.85, 1.15], // normalized activity levels: quiet / flash crowd
        vec![vec![0.92, 0.08], vec![0.25, 0.75]],
    )
    .expect("valid chain");
    let mut rng = StdRng::seed_from_u64(seed);
    // One factor per 30 s step over an hour; Poisson sampling at high rate
    // approximates the level, so use the state level path directly.
    let mut state = 0;
    let factors: Vec<f64> = (0..120)
        .map(|_| {
            state = mmpp.step_state(&mut rng, state);
            mmpp.rate(state)
        })
        .collect();
    Scenario::new(
        format!("mmpp-hour (seed {seed})"),
        config::paper_fleet_calibrated(),
        PricingSpec::Trace(TracePricing::new(config::paper_price_traces())),
        6.5,
        1.0,
        config::DEFAULT_TS_HOURS,
    )
    .expect("paper scenario is consistent")
    .with_init_hour(6.0)
    .with_workload_profile(WorkloadProfile::Replay(factors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_scenario_shape() {
        let s = smoothing_scenario();
        assert_eq!(s.num_steps(), 25);
        assert!((s.start_hour() - (7.0 - 5.0 / 120.0)).abs() < 1e-12);
        assert_eq!(s.init_hour(), 6.5);
        assert!(s.budgets().is_none());
        assert_eq!(s.fleet().num_idcs(), 3);
        assert_eq!(s.workload_noise_std(), 0.0);
    }

    #[test]
    fn peak_shaving_scenario_has_budgets() {
        let s = peak_shaving_scenario();
        assert_eq!(
            s.budgets().expect("budgets set").as_slice(),
            &[5.13, 10.26, 4.275]
        );
        assert!(s.name().contains("peak"));
    }

    #[test]
    fn pricing_spec_delegates() {
        let s = smoothing_scenario();
        let p = s.pricing().prices(7.0, &[0.0, 0.0, 0.0]);
        assert_eq!(p, vec![49.90, 29.47, 77.97]);
        assert_eq!(s.pricing().num_regions(), 3);
    }

    #[test]
    fn vicious_cycle_prices_respond_to_demand() {
        let s = vicious_cycle_scenario(2.0);
        let calm = s.pricing().prices(6.0, &[0.0, 0.0, 0.0]);
        let loaded = s.pricing().prices(6.0, &[3.0, 0.0, 0.0]);
        assert!((loaded[0] - calm[0] - 6.0).abs() < 1e-12);
        assert_eq!(loaded[1], calm[1]);
    }

    #[test]
    fn scenario_validation() {
        let fleet = config::paper_fleet_calibrated();
        // Wrong region count.
        let one_region = TracePricing::new(vec![config::paper_price_traces().remove(0)]);
        assert!(Scenario::new(
            "x",
            fleet.clone(),
            PricingSpec::Trace(one_region),
            0.0,
            1.0,
            0.1
        )
        .is_none());
        // Bad durations.
        let pricing = PricingSpec::Trace(TracePricing::new(config::paper_price_traces()));
        assert!(Scenario::new("x", fleet.clone(), pricing.clone(), 0.0, 0.0, 0.1).is_none());
        assert!(Scenario::new("x", fleet, pricing, 0.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn replay_profile_indexes_by_step() {
        let p = WorkloadProfile::Replay(vec![1.0, 2.0, 0.5]);
        assert_eq!(p.factor_at_step(0, 99.0), 1.0);
        assert_eq!(p.factor_at_step(1, 0.0), 2.0);
        assert_eq!(p.factor_at_step(4, 0.0), 2.0); // wraps
        assert_eq!(p.factor_at_hour(13.0), 1.0); // no hour semantics
        let empty = WorkloadProfile::Replay(vec![]);
        assert_eq!(empty.factor_at_step(7, 0.0), 1.0);
        // Negative factors are clamped.
        let neg = WorkloadProfile::Replay(vec![-3.0]);
        assert_eq!(neg.factor_at_step(0, 0.0), 0.0);
    }

    #[test]
    fn mmpp_hour_scenario_is_runnable() {
        use crate::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
        use crate::simulation::Simulator;
        let scenario = mmpp_hour_scenario(5);
        let sim = Simulator::new();
        let mpc = sim
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        let opt = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        // Flash-crowd jumps of ±15 % per step must be absorbed by *both*
        // policies (conservation is hard), so smoothness is comparable
        // here — what the MPC must still deliver is feasibility:
        assert!(mpc.latency_ok_fraction() > 0.999);
        assert!(opt.latency_ok_fraction() > 0.999);
        assert_eq!(mpc.shed_fraction(), 0.0);
        // and a cost within a small premium of the instantaneous optimum.
        let overhead = (mpc.total_cost() - opt.total_cost()) / opt.total_cost();
        assert!(overhead < 0.10, "overhead {overhead}");
    }

    #[test]
    fn noisy_day_has_noise_and_full_span() {
        let s = noisy_day_scenario(7);
        assert_eq!(s.workload_noise_std(), 0.05);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.num_steps(), 288);
    }
}
