//! The deterministic discrete-time simulator behind Figs. 4–7.
//!
//! Each sampling period the simulator (1) draws the offered portal
//! workloads (optionally noisy), (2) evaluates the pricing model — feeding
//! back the previous step's per-IDC power draw, so demand-responsive
//! pricing closes the demand↔price loop of the paper's introduction,
//! (3) asks the policy for a decision and (4) records power, servers,
//! latency and accumulated cost.

use rand::{rngs::StdRng, SeedableRng};

use idc_timeseries::standard_normal;

use idc_datacenter::idc::LatencyStatus;
use idc_datacenter::power::{power_stats, PowerStats};
use idc_storage::StorageState;

use crate::policy::{Policy, StepContext};
use crate::scenario::Scenario;
use crate::{Error, Result};

/// The recorded trajectory of one policy on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    policy_name: String,
    scenario_name: String,
    ts_hours: f64,
    /// Minutes since the window start, one per step.
    times_min: Vec<f64>,
    /// `[idc][step]` power in MW.
    power_mw: Vec<Vec<f64>>,
    /// `[idc][step]` servers ON.
    servers: Vec<Vec<u64>>,
    /// `[idc][step]` allocated workload (req/s).
    workload: Vec<Vec<f64>>,
    /// `[step]` prices seen, flattened per IDC.
    prices: Vec<Vec<f64>>,
    /// Cumulative electricity cost ($) after each step.
    cost_cumulative: Vec<f64>,
    /// Fraction of (idc, step) pairs meeting the latency bound.
    latency_ok_fraction: f64,
    /// Fraction of offered request-volume shed by admission control.
    shed_fraction: f64,
    /// `[step][portal]` offered workloads after admission control
    /// (recorded only by a validating simulator).
    offered: Option<Vec<Vec<f64>>>,
    /// `[step]` IDC-major flattened allocation vectors `λ_{ij}`
    /// (recorded only by a validating simulator).
    allocations: Option<Vec<Vec<f64>>>,
    /// `[idc][step]` battery state of charge after each step (MWh);
    /// `None` when the scenario has no storage.
    soc_mwh: Option<Vec<Vec<f64>>>,
    /// `[idc][step]` applied (post-clamp) battery charge rates (MW).
    charge_mw: Option<Vec<Vec<f64>>>,
    /// `[idc][step]` applied battery discharge rates (MW).
    discharge_mw: Option<Vec<Vec<f64>>>,
    /// Total conversion losses over the run (MWh); `None` without storage.
    storage_loss_mwh: Option<f64>,
    /// Cumulative amortized demand charge ($) after each step; `None`
    /// when the scenario has no demand-charge tariff.
    demand_charge_cumulative: Option<Vec<f64>>,
    /// Final per-IDC billed peaks of grid draw (MW); `None` without a
    /// demand-charge tariff.
    billed_peak_mw: Option<Vec<f64>>,
}

impl SimulationResult {
    /// Name of the policy that produced this run.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Name of the scenario simulated.
    pub fn scenario_name(&self) -> &str {
        &self.scenario_name
    }

    /// Minutes since window start, one per step.
    pub fn times_min(&self) -> &[f64] {
        &self.times_min
    }

    /// Power trajectory of IDC `j` in MW.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn power_mw(&self, j: usize) -> &[f64] {
        &self.power_mw[j]
    }

    /// Server-count trajectory of IDC `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn servers(&self, j: usize) -> &[u64] {
        &self.servers[j]
    }

    /// Workload trajectory of IDC `j` (req/s).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn workload(&self, j: usize) -> &[f64] {
        &self.workload[j]
    }

    /// Prices seen at each step (one vector per step).
    pub fn prices(&self) -> &[Vec<f64>] {
        &self.prices
    }

    /// Number of IDCs recorded.
    pub fn num_idcs(&self) -> usize {
        self.power_mw.len()
    }

    /// Cumulative cost ($) after each step.
    pub fn cost_cumulative(&self) -> &[f64] {
        &self.cost_cumulative
    }

    /// Total electricity cost ($) over the window.
    pub fn total_cost(&self) -> f64 {
        self.cost_cumulative.last().copied().unwrap_or(0.0)
    }

    /// Fraction of (IDC, step) pairs meeting their latency bound.
    pub fn latency_ok_fraction(&self) -> f64 {
        self.latency_ok_fraction
    }

    /// Fraction of the offered request volume shed by admission control
    /// (0 unless the workload exceeded the fleet's latency-bounded
    /// capacity at some step).
    pub fn shed_fraction(&self) -> f64 {
        self.shed_fraction
    }

    /// Demand statistics (mean/peak/volatility/energy) of IDC `j`.
    pub fn power_stats(&self, j: usize) -> Option<PowerStats> {
        power_stats(&self.power_mw[j], self.ts_hours)
    }

    /// Total fleet power per step (MW).
    pub fn total_power_mw(&self) -> Vec<f64> {
        let steps = self.times_min.len();
        (0..steps)
            .map(|k| self.power_mw.iter().map(|series| series[k]).sum())
            .collect()
    }

    /// Sampling period in hours.
    pub fn ts_hours(&self) -> f64 {
        self.ts_hours
    }

    /// Per-step post-admission offered portal workloads (req/s), recorded
    /// only when the run used [`Simulator::with_validation`].
    pub fn offered_workloads(&self) -> Option<&[Vec<f64>]> {
        self.offered.as_deref()
    }

    /// Per-step IDC-major flattened allocation vectors `λ_{ij}` (entry
    /// `j·c + i` is IDC `j`'s share of portal `i`), recorded only when the
    /// run used [`Simulator::with_validation`].
    pub fn allocations(&self) -> Option<&[Vec<f64>]> {
        self.allocations.as_deref()
    }

    /// Battery state-of-charge trajectory of IDC `j` (MWh, sampled after
    /// each step); `None` when the scenario ran without storage.
    pub fn soc_mwh(&self, j: usize) -> Option<&[f64]> {
        self.soc_mwh.as_ref().map(|s| s[j].as_slice())
    }

    /// Applied battery charge-rate trajectory of IDC `j` (MW); `None`
    /// when the scenario ran without storage.
    pub fn battery_charge_mw(&self, j: usize) -> Option<&[f64]> {
        self.charge_mw.as_ref().map(|s| s[j].as_slice())
    }

    /// Applied battery discharge-rate trajectory of IDC `j` (MW); `None`
    /// when the scenario ran without storage.
    pub fn battery_discharge_mw(&self, j: usize) -> Option<&[f64]> {
        self.discharge_mw.as_ref().map(|s| s[j].as_slice())
    }

    /// Total battery conversion losses over the run (MWh); `None` when
    /// the scenario ran without storage.
    pub fn storage_loss_mwh(&self) -> Option<f64> {
        self.storage_loss_mwh
    }

    /// Cumulative amortized demand charge ($) after each step — the
    /// tariff's hourly weight times the running billed peaks, integrated
    /// over the window. `None` when the scenario has no demand-charge
    /// tariff.
    pub fn demand_charge_cumulative(&self) -> Option<&[f64]> {
        self.demand_charge_cumulative.as_deref()
    }

    /// Final per-IDC billed peaks of *grid* draw (MW); `None` when the
    /// scenario has no demand-charge tariff.
    pub fn billed_peak_mw(&self) -> Option<&[f64]> {
        self.billed_peak_mw.as_deref()
    }

    /// Total amortized demand charge over the window ($); zero when the
    /// scenario has no demand-charge tariff.
    pub fn total_demand_charge(&self) -> f64 {
        self.demand_charge_cumulative
            .as_ref()
            .and_then(|s| s.last().copied())
            .unwrap_or(0.0)
    }

    /// Total electricity cost including the amortized demand-charge
    /// component ($). Equals [`total_cost`](Self::total_cost) when no
    /// tariff is configured.
    pub fn total_cost_with_demand_charges(&self) -> f64 {
        self.total_cost() + self.total_demand_charge()
    }

    /// Per-IDC fraction of steps strictly above `budget_mw[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `budgets_mw.len() != self.num_idcs()`.
    pub fn budget_violation_fractions(&self, budgets_mw: &[f64]) -> Vec<f64> {
        assert_eq!(budgets_mw.len(), self.num_idcs(), "one budget per IDC");
        self.power_mw
            .iter()
            .zip(budgets_mw)
            .map(|(series, &b)| idc_datacenter::power::budget_violation_fraction(series, b))
            .collect()
    }
}

/// The simulator. Stateless; a single instance can run many
/// (scenario, policy) pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Simulator {
    validate: bool,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new() -> Self {
        Simulator { validate: false }
    }

    /// Creates a *validating* simulator: identical dynamics, but the
    /// result additionally records the per-step offered workloads and full
    /// allocation vectors so `idc-testkit`'s invariant checkers can audit
    /// the trajectory post-hoc.
    pub fn with_validation() -> Self {
        Simulator { validate: true }
    }

    /// Whether this simulator records validation extras.
    pub fn validates(&self) -> bool {
        self.validate
    }

    /// Runs `policy` through `scenario` and records the trajectory.
    ///
    /// # Errors
    ///
    /// * [`Error::Config`] when a decision violates basic invariants
    ///   (wrong dimensions, lost workload beyond tolerance).
    /// * Policy errors are propagated.
    pub fn run(&self, scenario: &Scenario, policy: &mut dyn Policy) -> Result<SimulationResult> {
        let fleet = scenario.fleet();
        let n = fleet.num_idcs();
        let steps = scenario.num_steps();
        let ts = scenario.ts_hours();
        let mut rng = StdRng::seed_from_u64(scenario.seed());
        let base_offered = fleet.offered_workloads();

        // Initialize the policy at the init-hour prices with zero own-load
        // feedback.
        let init_prices = scenario
            .pricing()
            .prices(scenario.init_hour(), &vec![0.0; n]);
        let init_ctx = StepContext {
            step: 0,
            hour: scenario.init_hour(),
            dt_hours: ts,
            prices: init_prices,
            offered: base_offered.clone(),
            idcs: fleet.idcs(),
        };
        policy.initialize(&init_ctx)?;

        let mut power_mw = vec![Vec::with_capacity(steps); n];
        let mut servers = vec![Vec::with_capacity(steps); n];
        let mut workload = vec![Vec::with_capacity(steps); n];
        let mut prices_seen = Vec::with_capacity(steps);
        let mut times_min = Vec::with_capacity(steps);
        let mut cost_cumulative = Vec::with_capacity(steps);
        let mut cost = 0.0;
        let mut offered_log = self.validate.then(|| Vec::with_capacity(steps));
        let mut allocation_log = self.validate.then(|| Vec::with_capacity(steps));
        let mut latency_ok = 0usize;
        let mut last_power = vec![0.0; n];
        let mut offered_volume = 0.0;
        let mut shed_volume = 0.0;
        // Battery plant: the simulator owns the authoritative SoC and
        // applies commanded rates through the same clamped dynamics the
        // policy's belief uses, so the two agree on deterministic runs.
        let mut storage_state = scenario.storage().map(StorageState::of);
        let mut soc_log = storage_state
            .as_ref()
            .map(|_| vec![Vec::with_capacity(steps); n]);
        let mut charge_log = storage_state
            .as_ref()
            .map(|_| vec![Vec::with_capacity(steps); n]);
        let mut discharge_log = storage_state
            .as_ref()
            .map(|_| vec![Vec::with_capacity(steps); n]);
        // Demand-charge meter: running per-IDC billed peaks of grid draw,
        // accrued at the tariff's hourly weight.
        let tariff = scenario.demand_charge().copied();
        let mut dc_cumulative = tariff.map(|_| Vec::with_capacity(steps));
        let mut dc_peaks = vec![0.0f64; n];
        let mut dc_total = 0.0;
        // Admission-control ceiling: slightly inside the fleet's capacity
        // so the controllability condition of Sec. IV-B keeps holding.
        let admission_cap = fleet.total_capacity() * 0.999;

        for k in 0..steps {
            let hour = scenario.start_hour() + k as f64 * ts;
            // Offered workload: profile-modulated, optionally noisy,
            // clamped non-negative.
            let profile_factor = scenario.workload_profile().factor_at_step(k, hour);
            let mut offered: Vec<f64> = base_offered
                .iter()
                .map(|&l| {
                    let mut v = l * profile_factor;
                    if scenario.workload_noise_std() > 0.0 {
                        v *= 1.0 + scenario.workload_noise_std() * standard_normal(&mut rng);
                    }
                    v.max(0.0)
                })
                .collect();
            // Admission control: proportional shedding when the offered
            // volume exceeds what the fleet can serve within its latency
            // bounds (the paper assumes Σ L ≤ Σ λ̄; real front ends shed).
            let total_offered: f64 = offered.iter().sum();
            offered_volume += total_offered;
            if total_offered > admission_cap {
                let scale = admission_cap / total_offered;
                for v in &mut offered {
                    *v *= scale;
                }
                shed_volume += total_offered - admission_cap;
            }
            let prices = scenario.pricing().prices(hour, &last_power);
            let ctx = StepContext {
                step: k,
                hour,
                dt_hours: ts,
                prices: prices.clone(),
                offered: offered.clone(),
                idcs: fleet.idcs(),
            };
            let decision = policy.decide(&ctx)?;

            // ---- Validate the decision. ----
            if decision.servers_on.len() != n
                || decision.allocation.idcs() != n
                || decision.allocation.portals() != offered.len()
            {
                return Err(Error::Config(format!(
                    "policy '{}' returned a decision with wrong dimensions",
                    policy.name()
                )));
            }
            if !decision.allocation.conserves_workload(&offered, 1e-3) {
                return Err(Error::Config(format!(
                    "policy '{}' lost workload at step {k}",
                    policy.name()
                )));
            }
            for rates in [&decision.charge_mw, &decision.discharge_mw] {
                let len_ok = rates.is_empty() || (storage_state.is_some() && rates.len() == n);
                if !len_ok || rates.iter().any(|r| !r.is_finite()) {
                    return Err(Error::Config(format!(
                        "policy '{}' returned battery rates the scenario's plant cannot apply",
                        policy.name()
                    )));
                }
            }

            // ---- Record. ----
            if let Some(log) = offered_log.as_mut() {
                log.push(offered.clone());
            }
            if let Some(log) = allocation_log.as_mut() {
                log.push(decision.allocation.to_control_vector());
            }
            let mut per_idc = fleet.per_idc_power_mw(&decision.servers_on, &decision.allocation);
            if let Some(state) = storage_state.as_mut() {
                // Apply the commanded rates through the clamped battery
                // dynamics, then meter *grid* draw = IT power + charge −
                // discharge. Only this branch touches the power series, so
                // storage-free runs stay byte-identical.
                let battery_fleet = scenario.storage().expect("state implies fleet");
                for j in 0..n {
                    let c_cmd = decision.charge_mw.get(j).copied().unwrap_or(0.0);
                    let d_cmd = decision.discharge_mw.get(j).copied().unwrap_or(0.0);
                    let applied = state.apply(battery_fleet, j, c_cmd, d_cmd, ts);
                    per_idc[j] = (per_idc[j] + applied.charge_mw - applied.discharge_mw).max(0.0);
                    soc_log.as_mut().expect("storage logs")[j].push(state.soc_mwh()[j]);
                    charge_log.as_mut().expect("storage logs")[j].push(applied.charge_mw);
                    discharge_log.as_mut().expect("storage logs")[j].push(applied.discharge_mw);
                }
            }
            for j in 0..n {
                power_mw[j].push(per_idc[j]);
                servers[j].push(decision.servers_on[j]);
                workload[j].push(decision.allocation.idc_total(j));
                if fleet.idcs()[j]
                    .latency_status(decision.servers_on[j], decision.allocation.idc_total(j))
                    == LatencyStatus::WithinBound
                {
                    latency_ok += 1;
                }
            }
            cost += per_idc
                .iter()
                .zip(&prices)
                .map(|(&p, &pr)| p * pr * ts)
                .sum::<f64>();
            cost_cumulative.push(cost);
            if let (Some(tariff), Some(series)) = (&tariff, dc_cumulative.as_mut()) {
                for (peak, &p) in dc_peaks.iter_mut().zip(&per_idc) {
                    if p > *peak {
                        *peak = p;
                    }
                }
                dc_total += tariff.hourly_weight() * dc_peaks.iter().sum::<f64>() * ts;
                series.push(dc_total);
            }
            prices_seen.push(prices);
            times_min.push(k as f64 * ts * 60.0);
            last_power = per_idc;
        }

        Ok(SimulationResult {
            policy_name: policy.name().to_string(),
            scenario_name: scenario.name().to_string(),
            ts_hours: ts,
            times_min,
            power_mw,
            servers,
            workload,
            prices: prices_seen,
            cost_cumulative,
            latency_ok_fraction: latency_ok as f64 / (steps * n) as f64,
            shed_fraction: if offered_volume > 0.0 {
                shed_volume / offered_volume
            } else {
                0.0
            },
            offered: offered_log,
            allocations: allocation_log,
            storage_loss_mwh: storage_state.as_ref().map(StorageState::total_loss_mwh),
            soc_mwh: soc_log,
            charge_mw: charge_log,
            discharge_mw: discharge_log,
            billed_peak_mw: dc_cumulative.as_ref().map(|_| dc_peaks),
            demand_charge_cumulative: dc_cumulative,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
    use crate::scenario::{peak_shaving_scenario, smoothing_scenario};

    #[test]
    fn optimal_policy_jumps_once_at_the_price_flip() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let result = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        assert_eq!(result.times_min().len(), 25);
        // Before the flip: the paper's 6H operating point
        // (2.1375 / 11.4 / 5.7 MW); afterwards the 7H one
        // (5.7 / 11.4 / ~1.63 MW).
        assert!((result.power_mw(0)[0] - 2.1375).abs() < 0.01);
        assert!((result.power_mw(2)[0] - 5.7).abs() < 0.01);
        let last = result.times_min().len() - 1;
        assert!((result.power_mw(0)[last] - 5.7).abs() < 0.01);
        assert!((result.power_mw(1)[last] - 11.4).abs() < 0.01);
        assert!((result.power_mw(2)[last] - 1.6288).abs() < 0.01);
        // The whole change lands in a single step: worst jump equals the
        // full 6H→7H swing.
        let mi = result.power_stats(0).unwrap();
        assert!((mi.max_abs_step_mw - (5.7 - 2.1375)).abs() < 0.02, "{mi:?}");
        let wi = result.power_stats(2).unwrap();
        assert!((wi.max_abs_step_mw - (5.7 - 1.6288)).abs() < 0.02, "{wi:?}");
    }

    #[test]
    fn mpc_smooths_and_converges_toward_reference() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let result = sim.run(&scenario, &mut policy).unwrap();

        // Starts near the 6H operating point (Michigan ≈ 2.14 MW)...
        assert!(
            (result.power_mw(0)[0] - 2.1375).abs() < 0.8,
            "MI start {}",
            result.power_mw(0)[0]
        );
        // ...and moves toward the 7H point (5.7 MW) by the end.
        let mi_end = *result.power_mw(0).last().unwrap();
        assert!(mi_end > 4.0, "MI end {mi_end}");
        // Every per-step change is bounded (smoothing).
        let stats = result.power_stats(0).unwrap();
        assert!(
            stats.max_abs_step_mw < 1.0,
            "worst MI jump {} MW",
            stats.max_abs_step_mw
        );
        // Workload is served throughout.
        assert!(result.latency_ok_fraction() > 0.999);
    }

    #[test]
    fn peak_shaving_keeps_mpc_under_budget() {
        let scenario = peak_shaving_scenario();
        let sim = Simulator::new();
        let mpc = sim
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        let opt = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let budgets = [5.13, 10.26, 4.275];
        let mpc_viol = mpc.budget_violation_fractions(&budgets);
        let opt_viol = opt.budget_violation_fractions(&budgets);
        // The optimal policy violates Minnesota's budget the whole window
        // (11.4 > 10.26 at both hours), Michigan's at every post-flip step
        // (5.7 > 5.13, i.e. 20 of 25 samples) and Wisconsin's only before
        // the flip.
        assert!(opt_viol[1] > 0.99, "{opt_viol:?}");
        assert!((opt_viol[0] - 0.8).abs() < 0.05, "{opt_viol:?}");
        assert!(opt_viol[2] < 0.3, "{opt_viol:?}");
        // The MPC tracks the clamped reference: Michigan and Minnesota
        // end under budget; transients may briefly exceed.
        assert!(*mpc.power_mw(0).last().unwrap() <= 5.13 + 0.05);
        assert!(*mpc.power_mw(1).last().unwrap() <= 10.26 + 0.05);
        let _ = mpc_viol;
    }

    #[test]
    fn accumulated_cost_is_positive_and_increasing() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let result = sim
            .run(&scenario, &mut OptimalPolicy::new(ReferenceKind::LpOptimal))
            .unwrap();
        let costs = result.cost_cumulative();
        assert!(costs.windows(2).all(|w| w[1] >= w[0]));
        assert!(result.total_cost() > 0.0);
        // ~18.7 MW fleet × ~45 $/MWh × 1/6 h ≈ hundreds of dollars.
        assert!(result.total_cost() < 10_000.0);
    }

    #[test]
    fn total_power_sums_per_idc_series() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let result = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let total = result.total_power_mw();
        let manual: f64 = (0..3).map(|j| result.power_mw(j)[5]).sum();
        assert!((total[5] - manual).abs() < 1e-12);
    }

    #[test]
    fn lp_optimal_is_cheaper_than_greedy() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let lp = sim
            .run(&scenario, &mut OptimalPolicy::new(ReferenceKind::LpOptimal))
            .unwrap();
        let greedy = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        // At 7H on the calibrated fleet the two allocations coincide, so
        // only integer-deployment rounding (⌈m⌉) separates the realized
        // costs — allow that sliver.
        assert!(
            lp.total_cost() <= greedy.total_cost() + 0.01,
            "LP {} vs greedy {}",
            lp.total_cost(),
            greedy.total_cost()
        );
    }
}
