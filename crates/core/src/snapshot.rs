//! Serializable snapshots of the evolving controller state, for
//! checkpoint/restore of online runs (the `idc-runtime` daemon).
//!
//! The structs here are *plain data*: no solver scratch, no wall-clock
//! timings, nothing derivable deterministically from the problem. They
//! capture exactly what [`crate::policy::MpcPolicy::decide`] reads or
//! writes across steps, so `restore` + `decide` reproduces an
//! uninterrupted run bit-for-bit.
//!
//! Kept in a module of its own (rather than next to the policy) because
//! the serde derives expand unqualified `Result`/`Error` paths and must
//! not collide with this crate's aliases.

use idc_timeseries::predictor::PredictorState;
use serde::{Deserialize, Serialize};

/// `serde(default)` helper: the vendored derive supports only
/// `default = "path"`, so absent optional fields route through this.
fn none_f64s() -> Option<Vec<f64>> {
    None
}

/// Serializable form of the inner controller's warm-start carry-over
/// (`ΔU` guess plus active constraint set). The QP structure cache itself
/// is *not* captured — it rebuilds deterministically from the problem — but
/// the warm start must be, because warm and cold solves agree only to
/// solver tolerance, not bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartSnapshot {
    /// Stacked `ΔU` solution of the previous solve.
    pub delta_u: Vec<f64>,
    /// Indices of the constraints active at the previous solution.
    pub active_set: Vec<u64>,
    /// The sharded backend's outer coordination multipliers (consensus
    /// conservation duals followed by peak-budget duals); empty for the
    /// monolithic backends. Defaults to empty when absent so snapshots
    /// written before the sharded backend existed keep restoring.
    #[serde(default = "Vec::new")]
    pub multipliers: Vec<f64>,
}

/// The complete evolving state of a [`crate::policy::MpcPolicy`] as plain
/// serializable data: everything `decide` reads or writes across steps, so
/// [`crate::policy::MpcPolicy::restore`] resumes a run bit-for-bit.
///
/// Wall-clock timings and the diagnostic problem log are deliberately
/// excluded — they never influence decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcPolicySnapshot {
    /// `U(k−1)`, IDC-major flat — `None` before initialization.
    pub prev_input: Option<Vec<f64>>,
    /// `m(k−1)` — `None` before initialization.
    pub prev_servers: Option<Vec<u64>>,
    /// Per-portal AR/RLS predictor states.
    pub predictors: Vec<PredictorState>,
    /// The inner controller's warm-start state, if a solve has happened.
    pub warm_start: Option<WarmStartSnapshot>,
    /// Warm-solve counter of the inner controller.
    pub warm_solves: u64,
    /// Cold-solve counter of the inner controller.
    pub cold_solves: u64,
    /// Steps at which the policy degraded to its fallback so far.
    pub fallback_steps: Vec<u64>,
    /// Belief per-IDC battery state of charge (MWh) — `None` when the
    /// policy controls no storage. All storage/demand-charge fields
    /// default when absent so pre-storage snapshots keep restoring.
    #[serde(default = "none_f64s")]
    pub storage_soc_mwh: Option<Vec<f64>>,
    /// Battery charge rates applied at the previous step (MW).
    #[serde(default = "none_f64s")]
    pub prev_charge_mw: Option<Vec<f64>>,
    /// Battery discharge rates applied at the previous step (MW).
    #[serde(default = "none_f64s")]
    pub prev_discharge_mw: Option<Vec<f64>>,
    /// Per-IDC price EWMA driving the arbitrage reference shaping.
    #[serde(default = "none_f64s")]
    pub price_ewma: Option<Vec<f64>>,
    /// Per-IDC running billed peak of grid draw this billing period (MW).
    /// Empty when neither storage nor a demand-charge tariff is
    /// configured.
    #[serde(default = "Vec::new")]
    pub peak_so_far_mw: Vec<f64>,
}
