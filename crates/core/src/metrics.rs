//! Cross-policy comparison metrics (the numbers EXPERIMENTS.md reports)
//! and per-phase timing breakdowns (the numbers BENCH_mpc.json reports).

use crate::simulation::SimulationResult;

// `PhaseBreakdown`'s sibling: where the breakdown says *where* the time
// went, `SolveStats` (defined in `idc-obs`, collected by `idc-opt`'s
// active-set loop) says *why* — iterations, working-set churn, warm-seed
// survival, pivot-rule switches, refinement passes, cold fallbacks.
pub use idc_obs::SolveStats;

/// Wall-clock nanoseconds per pipeline phase for one simulation run.
///
/// The controller phases (`refresh`/`factor`/`condense`/`solve`) come from
/// [`idc_control::mpc::PlanTimings`]; `reference_ns` is the rest of the
/// policy's per-step work (reference solves, workload prediction, problem
/// assembly), and `simulate_ns` is everything outside the policy (fleet
/// bookkeeping, cost integration, recording) — filled in by harnesses that
/// time the full run, zero otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Solver structure-cache rebuilds.
    pub refresh_ns: u64,
    /// Hessian factorization / Schur precompute.
    pub factor_ns: u64,
    /// Per-step gradient + rhs refresh and warm-start bookkeeping.
    pub condense_ns: u64,
    /// Active-set QP iterations.
    pub solve_ns: u64,
    /// Policy-side work outside the controller: reference optimization,
    /// prediction, budget clamping, plan assembly.
    pub reference_ns: u64,
    /// Simulation work outside the policy.
    pub simulate_ns: u64,
}

impl PhaseBreakdown {
    /// Sum over all phases.
    pub fn total_ns(&self) -> u64 {
        self.refresh_ns
            + self.factor_ns
            + self.condense_ns
            + self.solve_ns
            + self.reference_ns
            + self.simulate_ns
    }

    /// Returns a copy with `simulate_ns` set to the difference between a
    /// measured total run time and the already-accounted phases (saturating
    /// at zero if the accounting overshoots the measurement).
    pub fn with_total(mut self, total_ns: u64) -> Self {
        self.simulate_ns = total_ns.saturating_sub(
            self.refresh_ns + self.factor_ns + self.condense_ns + self.solve_ns + self.reference_ns,
        );
        self
    }
}

/// Side-by-side summary of two runs of the same scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Name of the first (usually MPC) policy.
    pub name_a: String,
    /// Name of the second (usually baseline) policy.
    pub name_b: String,
    /// Total cost of each run ($).
    pub total_cost: (f64, f64),
    /// Per-IDC peak power (MW).
    pub peak_mw: Vec<(f64, f64)>,
    /// Per-IDC mean absolute power step (MW) — demand volatility.
    pub volatility_mw: Vec<(f64, f64)>,
    /// Per-IDC worst single power jump (MW).
    pub max_jump_mw: Vec<(f64, f64)>,
}

impl Comparison {
    /// Builds the comparison. Returns `None` when the runs cover different
    /// scenarios / fleet sizes or are empty.
    pub fn between(a: &SimulationResult, b: &SimulationResult) -> Option<Self> {
        if a.num_idcs() != b.num_idcs() || a.times_min().is_empty() || b.times_min().is_empty() {
            return None;
        }
        let n = a.num_idcs();
        let mut peak_mw = Vec::with_capacity(n);
        let mut volatility_mw = Vec::with_capacity(n);
        let mut max_jump_mw = Vec::with_capacity(n);
        for j in 0..n {
            let sa = a.power_stats(j)?;
            let sb = b.power_stats(j)?;
            peak_mw.push((sa.peak_mw, sb.peak_mw));
            volatility_mw.push((sa.mean_abs_step_mw, sb.mean_abs_step_mw));
            max_jump_mw.push((sa.max_abs_step_mw, sb.max_abs_step_mw));
        }
        Some(Comparison {
            name_a: a.policy_name().to_string(),
            name_b: b.policy_name().to_string(),
            total_cost: (a.total_cost(), b.total_cost()),
            peak_mw,
            volatility_mw,
            max_jump_mw,
        })
    }

    /// Relative cost overhead of run A versus run B, in percent
    /// (positive = A costs more).
    pub fn cost_overhead_percent(&self) -> f64 {
        if self.total_cost.1 == 0.0 {
            return 0.0;
        }
        100.0 * (self.total_cost.0 - self.total_cost.1) / self.total_cost.1
    }

    /// Fleet-wide worst jump reduction: `1 − max_a/max_b`, in percent.
    pub fn jump_reduction_percent(&self) -> f64 {
        let max_a = self
            .max_jump_mw
            .iter()
            .map(|&(a, _)| a)
            .fold(0.0f64, f64::max);
        let max_b = self
            .max_jump_mw
            .iter()
            .map(|&(_, b)| b)
            .fold(0.0f64, f64::max);
        if max_b == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - max_a / max_b)
        }
    }
}

/// Price volatility of a sequence of per-step price vectors: the mean
/// across regions of the per-region standard deviation. Used by the
/// vicious-cycle experiment to show demand-responsive oscillation.
pub fn price_volatility(prices: &[Vec<f64>]) -> f64 {
    if prices.is_empty() || prices[0].is_empty() {
        return 0.0;
    }
    let n = prices[0].len();
    let steps = prices.len() as f64;
    let mut total = 0.0;
    for j in 0..n {
        let series: Vec<f64> = prices.iter().map(|p| p[j]).collect();
        let mean = series.iter().sum::<f64>() / steps;
        let var = series.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / steps;
        total += var.sqrt();
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
    use crate::scenario::smoothing_scenario;
    use crate::simulation::Simulator;

    #[test]
    fn phase_breakdown_accounts_remainder_to_simulate() {
        let b = PhaseBreakdown {
            refresh_ns: 10,
            factor_ns: 20,
            condense_ns: 30,
            solve_ns: 40,
            reference_ns: 50,
            simulate_ns: 0,
        };
        let filled = b.with_total(1_000);
        assert_eq!(filled.simulate_ns, 850);
        assert_eq!(filled.total_ns(), 1_000);
        // Overshoot saturates instead of wrapping.
        assert_eq!(b.with_total(100).simulate_ns, 0);
    }

    #[test]
    fn mpc_policy_reports_phase_breakdown() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        sim.run(&scenario, &mut policy).unwrap();
        let phases = policy.phase_breakdown();
        assert!(phases.solve_ns > 0 && phases.condense_ns > 0);
        assert!(phases.factor_ns > 0);
        assert_eq!(phases.simulate_ns, 0);
    }

    #[test]
    fn comparison_captures_smoothing_advantage() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let mpc = sim
            .run(&scenario, &mut MpcPolicy::paper_tuned(&scenario).unwrap())
            .unwrap();
        let opt = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let cmp = Comparison::between(&mpc, &opt).unwrap();
        assert_eq!(cmp.peak_mw.len(), 3);
        // Smoothing costs a little extra (tracks the reference with lag)…
        assert!(cmp.cost_overhead_percent() > -1.0);
        // …but the comparison is well-formed and names are kept.
        assert!(cmp.name_a.contains("MPC"));
        assert!(cmp.name_b.contains("optimal"));
    }

    #[test]
    fn comparison_rejects_mismatched_runs() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let a = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        // Same run compared with itself: zero overhead, zero reduction.
        let cmp = Comparison::between(&a, &a).unwrap();
        assert_eq!(cmp.cost_overhead_percent(), 0.0);
        assert!(cmp.jump_reduction_percent().abs() < 1e-9);
    }

    #[test]
    fn zero_jump_baseline_yields_zero_reduction() {
        // Degenerate guard: all-zero max jumps must not divide by zero.
        let cmp = Comparison {
            name_a: "a".into(),
            name_b: "b".into(),
            total_cost: (0.0, 0.0),
            peak_mw: vec![(1.0, 1.0)],
            volatility_mw: vec![(0.0, 0.0)],
            max_jump_mw: vec![(0.0, 0.0)],
        };
        assert_eq!(cmp.jump_reduction_percent(), 0.0);
        assert_eq!(cmp.cost_overhead_percent(), 0.0);
    }

    #[test]
    fn price_volatility_of_constant_prices_is_zero() {
        let prices = vec![vec![10.0, 20.0]; 5];
        assert_eq!(price_volatility(&prices), 0.0);
        assert_eq!(price_volatility(&[]), 0.0);
    }

    #[test]
    fn price_volatility_detects_oscillation() {
        let mut prices = Vec::new();
        for k in 0..10 {
            let p = if k % 2 == 0 { 10.0 } else { 50.0 };
            prices.push(vec![p, 30.0]);
        }
        let v = price_volatility(&prices);
        assert!(v > 9.0, "volatility {v}");
    }
}
