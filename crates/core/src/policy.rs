//! Control policies: the paper's MPC and the baseline optimal policies.

use std::time::Instant;

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem, StorageProblem, WarmStateData};
use idc_control::reference::{
    optimal_reference, price_greedy_reference, ReferenceSolution, ReferenceSolver,
};
use idc_datacenter::allocation::Allocation;
use idc_datacenter::idc::IdcConfig;
use idc_datacenter::sleep::SleepController;
use idc_market::tariff::{DemandCharge, PowerBudget};
use idc_storage::{StorageFleet, StorageState};
use idc_timeseries::predictor::WorkloadPredictor;

use crate::scenario::Scenario;
use crate::snapshot::{MpcPolicySnapshot, WarmStartSnapshot};
use crate::{Error, Result};

/// What one policy step sees: the simulator assembles this each sampling
/// period.
#[derive(Debug, Clone, PartialEq)]
pub struct StepContext<'a> {
    /// Step index within the run (0-based).
    pub step: usize,
    /// Hour of day at the start of the step.
    pub hour: f64,
    /// Step length in hours.
    pub dt_hours: f64,
    /// Current regional prices ($/MWh), one per IDC.
    pub prices: Vec<f64>,
    /// Current offered portal workloads (req/s), one per portal.
    pub offered: Vec<f64>,
    /// The IDC configurations.
    pub idcs: &'a [IdcConfig],
}

/// A policy's output for one step: how many servers to run and how to
/// split the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Servers ON per IDC.
    pub servers_on: Vec<u64>,
    /// The workload split `λij`.
    pub allocation: Allocation,
    /// Commanded battery charge rate per IDC (MW, grid side). Empty when
    /// the policy controls no storage — the simulator treats empty as
    /// all-zero.
    pub charge_mw: Vec<f64>,
    /// Commanded battery discharge rate per IDC (MW, load side). Empty
    /// when the policy controls no storage.
    pub discharge_mw: Vec<f64>,
}

/// A workload-allocation policy driven by the simulator.
pub trait Policy {
    /// Short display name used in reports.
    fn name(&self) -> &str;

    /// Called once before the run with the initialization context (the
    /// scenario's `init_hour` prices); policies settle at their preferred
    /// starting operating point here.
    fn initialize(&mut self, ctx: &StepContext<'_>) -> Result<()> {
        let _ = ctx;
        Ok(())
    }

    /// Produces the decision for one step.
    fn decide(&mut self, ctx: &StepContext<'_>) -> Result<Decision>;
}

/// Which reference problem defines "optimal".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceKind {
    /// The true LP of paper eq. 46 (cost per request = `Pr_j·peak/µ_j`).
    LpOptimal,
    /// Greedy filling by raw regional price — the policy the paper's
    /// plotted "optimal method" trajectories follow.
    PriceGreedy,
}

impl ReferenceKind {
    /// Solves the associated reference problem.
    ///
    /// # Errors
    ///
    /// Propagates the optimizer's failure modes (infeasibility etc.).
    pub fn solve(
        &self,
        idcs: &[IdcConfig],
        offered: &[f64],
        prices: &[f64],
    ) -> idc_opt::Result<ReferenceSolution> {
        match self {
            ReferenceKind::LpOptimal => optimal_reference(idcs, offered, prices),
            ReferenceKind::PriceGreedy => price_greedy_reference(idcs, offered, prices),
        }
    }

    /// Solves the associated reference problem through a stateful
    /// [`ReferenceSolver`], reusing its cached LP structure and simplex
    /// workspace (no-op for the LP-free greedy reference). Same results as
    /// [`ReferenceKind::solve`], without the per-call allocations.
    ///
    /// # Errors
    ///
    /// Propagates the optimizer's failure modes (infeasibility etc.).
    pub fn solve_with(
        &self,
        solver: &mut ReferenceSolver,
        idcs: &[IdcConfig],
        offered: &[f64],
        prices: &[f64],
    ) -> idc_opt::Result<ReferenceSolution> {
        match self {
            ReferenceKind::LpOptimal => solver.optimal(idcs, offered, prices),
            ReferenceKind::PriceGreedy => price_greedy_reference(idcs, offered, prices),
        }
    }
}

/// The baseline of Rao et al. (INFOCOM'10): re-solve the instantaneous
/// cost minimum every step and jump straight to it.
#[derive(Debug, Clone)]
pub struct OptimalPolicy {
    kind: ReferenceKind,
    name: String,
    solver: ReferenceSolver,
}

impl PartialEq for OptimalPolicy {
    /// Two baselines are equal when they solve the same reference problem;
    /// the solver's scratch caches carry no behavioural state.
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl OptimalPolicy {
    /// Creates the baseline with the given reference problem.
    pub fn new(kind: ReferenceKind) -> Self {
        let name = match kind {
            ReferenceKind::LpOptimal => "optimal (eq. 46 LP)",
            ReferenceKind::PriceGreedy => "optimal (price-greedy, as plotted)",
        };
        OptimalPolicy {
            kind,
            name: name.into(),
            solver: ReferenceSolver::new(),
        }
    }

    /// The reference problem in use.
    pub fn kind(&self) -> ReferenceKind {
        self.kind
    }
}

impl Policy for OptimalPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, ctx: &StepContext<'_>) -> Result<Decision> {
        let reference =
            self.kind
                .solve_with(&mut self.solver, ctx.idcs, &ctx.offered, &ctx.prices)?;
        let servers_on = reference.servers_ceil(ctx.idcs);
        let allocation = Allocation::from_control_vector(
            ctx.offered.len(),
            ctx.idcs.len(),
            reference.allocation(),
        )
        .expect("reference allocation has fleet dimensions");
        Ok(Decision {
            servers_on,
            allocation,
            charge_mw: Vec::new(),
            discharge_mw: Vec::new(),
        })
    }
}

/// A static no-geo-balancing baseline: every portal's workload is split
/// across IDCs proportionally to their installed capacity, regardless of
/// prices — the "passive consumer" the paper's introduction argues
/// against. Servers follow eq. 35 for the fixed split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticProportionalPolicy;

impl StaticProportionalPolicy {
    /// Creates the baseline.
    pub fn new() -> Self {
        StaticProportionalPolicy
    }
}

impl Policy for StaticProportionalPolicy {
    fn name(&self) -> &str {
        "static (capacity-proportional, price-blind)"
    }

    fn decide(&mut self, ctx: &StepContext<'_>) -> Result<Decision> {
        let weights: Vec<f64> = ctx.idcs.iter().map(|i| i.max_workload()).collect();
        let allocation = Allocation::proportional(&ctx.offered, &weights)
            .ok_or_else(|| Error::Config("fleet has no capacity".into()))?;
        let servers_on: Vec<u64> = ctx
            .idcs
            .iter()
            .enumerate()
            .map(|(j, idc)| {
                idc.required_servers(allocation.idc_total(j))
                    .unwrap_or_else(|| idc.total_servers())
            })
            .collect();
        Ok(Decision {
            servers_on,
            allocation,
            charge_mw: Vec::new(),
            discharge_mw: Vec::new(),
        })
    }
}

/// Tuning of [`MpcPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct MpcPolicyConfig {
    /// The inner receding-horizon controller tuning.
    pub mpc: MpcConfig,
    /// The reference problem tracked by the controller.
    pub reference: ReferenceKind,
    /// Power budgets for peak shaving (reference clamp of Sec. IV-D).
    pub budgets: Option<PowerBudget>,
    /// Maximum servers switched per IDC per slow-loop decision.
    pub server_ramp_limit: u64,
    /// Slow-loop period in fast-loop steps (the two-time-scale ratio).
    pub slow_period: usize,
    /// AR order of the workload predictor.
    pub predictor_order: usize,
    /// When `true` (default, the paper's Sec. IV-D behaviour) the power
    /// reference is re-solved at each prediction step's forecast workload,
    /// letting the controller anticipate ramps; `false` holds the
    /// current-step reference across the horizon (the no-prediction
    /// ablation).
    pub anticipatory_reference: bool,
    /// When `true` (default) the inner controller keeps its solve state —
    /// cached QP skeleton, factorizations, warm start — across sampling
    /// periods. `false` resets it every step, forcing a from-scratch solve:
    /// the cold baseline for benchmarks and ablations. The plan itself is
    /// identical either way (the QP has a unique minimizer).
    pub solver_reuse: bool,
    /// Steps at which the inner QP solve is *forced to fail* (as if the
    /// solver hit its iteration limit): the policy must drop its cached
    /// solver state and take the same graceful-degradation path as a real
    /// infeasibility. Empty in production; populated by the testkit's
    /// fault plans.
    pub forced_failure_steps: Vec<usize>,
    /// Steps at which the solver's incremental working-set factor is
    /// deterministically *poisoned*, forcing its stability-rebuild path.
    /// Unlike [`forced_failure_steps`](Self::forced_failure_steps) the plan
    /// succeeds unchanged — only the refactorization counters move — so
    /// this exercises the rebuild machinery without a fallback. Empty in
    /// production; populated by the testkit's fault plans.
    pub forced_refactor_steps: Vec<usize>,
    /// Steps at which the sharded backend's coordinator *stalls* for one
    /// outer round: the shards re-solve against stale consensus targets and
    /// the multiplier update is skipped, as if a coordination message was
    /// dropped. The plan must still converge (or degrade cleanly through the
    /// usual infeasibility path). No-op for the monolithic backends. Empty
    /// in production; populated by the testkit's fault plans.
    pub forced_stall_steps: Vec<usize>,
    /// When `true`, every per-step [`MpcProblem`] the policy assembles is
    /// kept in a log ([`MpcPolicy::recorded_problems`]) so differential
    /// oracles can re-solve them offline. Off by default.
    pub record_problems: bool,
    /// Per-IDC battery/UPS units the controller may dispatch. `None` (the
    /// default) reproduces the paper's shifting-only controller exactly.
    /// An inert fleet is normalized to `None` at construction.
    pub storage: Option<StorageFleet>,
    /// Billed-peak demand charge. When set, the reference is solved with
    /// the demand-charge-aware epigraph LP against the period's running
    /// peaks instead of [`reference`](Self::reference)'s plain problem.
    pub demand_charge: Option<DemandCharge>,
    /// Steps at which every battery's charge/discharge rate caps are
    /// forced to zero (a fleet-wide UPS transfer-switch outage): the
    /// enlarged QP must degrade to the shifting-only plan without a
    /// structure rebuild. Empty in production; populated by the testkit's
    /// fault plans.
    pub battery_outage_steps: Vec<usize>,
}

impl Default for MpcPolicyConfig {
    fn default() -> Self {
        MpcPolicyConfig {
            mpc: MpcConfig::default(),
            reference: ReferenceKind::PriceGreedy,
            budgets: None,
            server_ramp_limit: 1_500,
            slow_period: 1,
            predictor_order: 3,
            anticipatory_reference: true,
            solver_reuse: true,
            forced_failure_steps: Vec::new(),
            forced_refactor_steps: Vec::new(),
            forced_stall_steps: Vec::new(),
            record_problems: false,
            storage: None,
            demand_charge: None,
            battery_outage_steps: Vec::new(),
        }
    }
}

/// EWMA smoothing factor for the arbitrage price baseline. At 5-minute
/// steps this gives a half-life of about three hours, so the baseline
/// stays close to the daily mean while hourly real-time-price moves show
/// up as deviations worth trading against.
const PRICE_EWMA_ALPHA: f64 = 0.02;

/// Discharge when the spot price exceeds this multiple of the baseline.
/// The ±10% band yields a worst-case sell/buy spread of 1.10/0.90 ≈ 1.22,
/// clearing the ≈1.11 round-trip-efficiency breakeven (η_c·η_d ≈ 0.9).
const ARBITRAGE_DISCHARGE_RATIO: f64 = 1.10;

/// Charge when the spot price falls below this multiple of the baseline.
const ARBITRAGE_CHARGE_RATIO: f64 = 0.90;

/// Safety margin (MW) below a binding power budget that battery-assisted
/// peak shaving aims for — 1 kW, invisible in cost but far above float
/// noise on the realized grid draw.
const BUDGET_SHAVE_MARGIN_MW: f64 = 1e-3;

/// Per-step battery dispatch intent: the reference shift plus the gated
/// QP rate caps (see [`MpcPolicy::storage_shaping`]).
struct StorageShaping {
    shift: Vec<f64>,
    charge_cap: Vec<f64>,
    discharge_cap: Vec<f64>,
}

/// The paper's dynamic cost controller: two-time-scale server sleep
/// control plus constrained MPC workload control, tracking a
/// (budget-clamped) optimal power reference with an input-rate penalty.
#[derive(Debug, Clone)]
pub struct MpcPolicy {
    name: String,
    config: MpcPolicyConfig,
    controller: MpcController,
    predictors: Vec<WorkloadPredictor>,
    /// Reference-LP solver with cached structure and simplex workspace,
    /// reused across every reference solve the policy performs.
    ref_solver: ReferenceSolver,
    /// `(U(k−1), m(k−1))` once initialized.
    state: Option<(Vec<f64>, Vec<u64>)>,
    /// Total wall-clock nanoseconds spent inside [`Policy::decide`].
    decide_ns: u64,
    /// Per-step problems kept when `config.record_problems` is on.
    problem_log: Vec<MpcProblem>,
    /// Steps at which the policy degraded to its fallback (real
    /// infeasibility or injected solver failure).
    fallback_steps: Vec<usize>,
    /// EWMA of per-step QP iteration counts, used only to flag
    /// iteration-count spikes in the anomaly log. Observability state:
    /// deliberately *not* checkpointed and never fed back into control.
    iter_ewma: f64,
    /// The controller's belief of the battery state of charge, evolved
    /// with the same clamped dynamics the simulator applies — so belief
    /// and plant agree exactly on every deterministic run. `None` when no
    /// storage is configured (or before initialization).
    storage_state: Option<StorageState>,
    /// Applied battery rates of the previous step `(charge, discharge)`,
    /// MW — the rate-change variables in the QP are deltas against these.
    prev_rates: Option<(Vec<f64>, Vec<f64>)>,
    /// Per-IDC price EWMA (α = 0.02, ≈3 h half-life at 5-min steps): the
    /// arbitrage baseline. Prices above it shape the reference down
    /// (discharge), below it up (recharge). The slow constant keeps the
    /// baseline near the daily mean so hourly price moves register as
    /// signal rather than dragging the baseline with them.
    price_ewma: Option<Vec<f64>>,
    /// Per-IDC running billed peak of *grid* draw this billing period
    /// (MW), fed to the demand-charge epigraph LP and to the peak-shaving
    /// reference shaping.
    peak_so_far_mw: Vec<f64>,
}

impl MpcPolicy {
    /// Creates the controller with explicit tuning.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for invalid horizon/ramp/predictor
    /// parameters.
    pub fn new(config: MpcPolicyConfig) -> Result<Self> {
        if config.slow_period == 0 {
            return Err(Error::Config("slow_period must be at least 1".into()));
        }
        // Validate the ramp limit through the datacenter sleep controller —
        // the slow loop below applies the same ramp semantics to the
        // reference-derived target.
        SleepController::with_ramp_limit(config.server_ramp_limit)
            .ok_or_else(|| Error::Config("server_ramp_limit must be positive".into()))?;
        if config.predictor_order == 0 {
            return Err(Error::Config("predictor_order must be positive".into()));
        }
        if config.mpc.control_horizon == 0
            || config.mpc.control_horizon > config.mpc.prediction_horizon
        {
            return Err(Error::Config(
                "horizons must satisfy 0 < control ≤ prediction".into(),
            ));
        }
        let mut config = config;
        // Normalize inert storage away so zero-capacity configurations
        // take the exact storage-free code path (byte-identical runs).
        if config.storage.as_ref().is_some_and(StorageFleet::is_inert) {
            config.storage = None;
        }
        let controller = MpcController::new(config.mpc);
        Ok(MpcPolicy {
            name: "dynamic control (MPC)".into(),
            config,
            controller,
            predictors: Vec::new(),
            ref_solver: ReferenceSolver::new(),
            state: None,
            decide_ns: 0,
            problem_log: Vec::new(),
            fallback_steps: Vec::new(),
            iter_ewma: 0.0,
            storage_state: None,
            prev_rates: None,
            price_ewma: None,
            peak_so_far_mw: Vec::new(),
        })
    }

    /// The paper-tuned controller for a scenario: tracks the price-greedy
    /// reference (what the paper plots), adopts the scenario's budgets,
    /// storage fleet and demand-charge tariff, and uses the default
    /// horizons/weights.
    ///
    /// # Errors
    ///
    /// Propagates [`MpcPolicy::new`] failures.
    pub fn paper_tuned(scenario: &Scenario) -> Result<Self> {
        MpcPolicy::new(MpcPolicyConfig {
            budgets: scenario.budgets().cloned(),
            storage: scenario.storage().cloned(),
            demand_charge: scenario.demand_charge().copied(),
            ..MpcPolicyConfig::default()
        })
    }

    /// The tuning in use.
    pub fn config(&self) -> &MpcPolicyConfig {
        &self.config
    }

    /// Current input vector `U(k−1)` (IDC-major flat), once initialized.
    pub fn current_input(&self) -> Option<&[f64]> {
        self.state.as_ref().map(|(u, _)| u.as_slice())
    }

    /// The inner receding-horizon controller (e.g. to inspect its
    /// warm-/cold-solve counters after a run).
    pub fn controller(&self) -> &MpcController {
        &self.controller
    }

    /// The per-step [`MpcProblem`]s assembled during the run, recorded when
    /// `config.record_problems` is set (empty otherwise). Differential
    /// oracles replay these offline against independent solvers.
    pub fn recorded_problems(&self) -> &[MpcProblem] {
        &self.problem_log
    }

    /// Steps at which this policy degraded to its capacity-proportional
    /// fallback, whether through a genuine infeasibility or an injected
    /// solver failure.
    pub fn fallback_steps(&self) -> &[usize] {
        &self.fallback_steps
    }

    /// Per-phase wall-clock breakdown of the time spent in this policy so
    /// far: the controller's own phase counters plus everything else
    /// [`Policy::decide`] does (reference solves, prediction, plan
    /// assembly). `simulate_ns` is left zero — only the caller can measure
    /// time spent outside the policy.
    pub fn phase_breakdown(&self) -> crate::metrics::PhaseBreakdown {
        let t = self.controller.timings();
        crate::metrics::PhaseBreakdown {
            refresh_ns: t.refresh_ns,
            factor_ns: t.factor_ns,
            condense_ns: t.condense_ns,
            solve_ns: t.solve_ns,
            reference_ns: self.decide_ns.saturating_sub(t.total_ns()),
            simulate_ns: 0,
        }
    }

    /// Cumulative solver introspection counters
    /// ([`crate::metrics::SolveStats`]) from the inner controller:
    /// iterations, working-set churn, warm-seed survival, pivot-rule
    /// switches, refinement passes and cold fallbacks across the run so
    /// far. [`PhaseBreakdown`](crate::metrics::PhaseBreakdown)'s sibling:
    /// the breakdown says where the time went, this says why.
    pub fn solve_stats(&self) -> crate::metrics::SolveStats {
        self.controller.solve_stats()
    }

    /// Per-portal workload forecasts for the control horizon, with the
    /// first step pinned to the observed workload (the conservation
    /// constraint must hold for what is actually served).
    fn forecast(&self, observed: &[f64], steps: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(steps);
        out.push(observed.to_vec());
        if steps > 1 {
            let horizon = steps - 1;
            let mut per_portal: Vec<Vec<f64>> = self
                .predictors
                .iter()
                .map(|p| p.forecast(horizon))
                .collect();
            for s in 0..horizon {
                let row: Vec<f64> = per_portal.iter_mut().map(|f| f[s]).collect();
                out.push(row);
            }
        }
        out
    }

    /// Budget-consistent server cap: the largest `m` whose fully-loaded
    /// power stays under the budget, `m = budget / (PUE · peak_power)`.
    fn budget_server_cap(idc: &IdcConfig, budget_mw: f64) -> u64 {
        let per_server_mw = idc.pue() * idc.server().peak_power_w() / 1e6;
        if per_server_mw <= 0.0 {
            return idc.total_servers();
        }
        ((budget_mw / per_server_mw).floor().max(0.0) as u64).min(idc.total_servers())
    }

    /// Solves the operating-point reference: the demand-charge epigraph LP
    /// against the billing period's running peaks when a tariff is
    /// configured, the configured plain reference otherwise.
    fn reference_for(
        &mut self,
        idcs: &[IdcConfig],
        offered: &[f64],
        prices: &[f64],
    ) -> idc_opt::Result<ReferenceSolution> {
        match self.config.demand_charge {
            Some(tariff) => self
                .ref_solver
                .optimal_with_demand_charge(idcs, offered, prices, &tariff, &self.peak_so_far_mw)
                .map(|s| s.reference().clone()),
            None => self
                .config
                .reference
                .solve_with(&mut self.ref_solver, idcs, offered, prices),
        }
    }

    /// Records the step's realized per-IDC grid draw into the billing
    /// period's running peak. No-op when neither storage nor demand
    /// charges are configured (the peak vector is empty then).
    fn observe_grid_power(&mut self, ctx: &StepContext<'_>, decision: &Decision) {
        if self.peak_so_far_mw.is_empty() {
            return;
        }
        for (j, idc) in ctx.idcs.iter().enumerate() {
            let it_mw = idc.pue()
                * (idc.server().b1() * decision.allocation.idc_total(j)
                    + idc.server().b0() * decision.servers_on[j] as f64)
                / 1e6;
            let charge = decision.charge_mw.get(j).copied().unwrap_or(0.0);
            let discharge = decision.discharge_mw.get(j).copied().unwrap_or(0.0);
            let grid = (it_mw + charge - discharge).max(0.0);
            if grid > self.peak_so_far_mw[j] {
                self.peak_so_far_mw[j] = grid;
            }
        }
    }

    /// Fallback steps command zero battery rates: the belief SoC holds and
    /// the next QP measures its rate deltas from zero.
    fn command_zero_rates(&mut self) {
        if let Some((c, d)) = &mut self.prev_rates {
            c.iter_mut().for_each(|x| *x = 0.0);
            d.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Per-IDC battery dispatch intent for this step. `shift` is the MW
    /// adjustment applied to the power reference: negative where the
    /// controller should discharge (peak shaving against the running
    /// billed peak first, then arbitrage when the regional price runs
    /// above its EWMA), positive where it should recharge (price below
    /// EWMA, and never above the already-billed peak when a demand-charge
    /// tariff makes fresh peaks expensive). `charge_cap`/`discharge_cap`
    /// are the rate limits handed to the QP — zero unless a signal fired,
    /// so the solver cannot thrash the battery to absorb ordinary tracking
    /// error (integer server rounding, smoothing lag) and cannot *charge*
    /// into a billed peak just to meet a high reference. Caps enter the
    /// QP right-hand sides only, so gating never invalidates the cached
    /// structure or warm state.
    fn storage_shaping(
        &self,
        ctx: &StepContext<'_>,
        power_ref: &[f64],
        unclamped_ref: &[f64],
    ) -> StorageShaping {
        let n = ctx.idcs.len();
        let mut shaping = StorageShaping {
            shift: vec![0.0; n],
            charge_cap: vec![0.0; n],
            discharge_cap: vec![0.0; n],
        };
        let (Some(fleet), Some(state), Some(ewma)) = (
            &self.config.storage,
            &self.storage_state,
            &self.price_ewma,
        ) else {
            return shaping;
        };
        if self.config.battery_outage_steps.contains(&ctx.step) {
            return shaping;
        }
        let dt = ctx.dt_hours;
        for (j, unit) in fleet.units().iter().enumerate() {
            let soc = state.soc_mwh()[j];
            let d_avail = unit
                .max_discharge_mw
                .min(soc * unit.discharge_efficiency / dt);
            let c_avail = unit
                .max_charge_mw
                .min((unit.capacity_mwh - soc).max(0.0) / (unit.charge_efficiency * dt));
            let peak = self.peak_so_far_mw.get(j).copied().unwrap_or(0.0);
            let mut d_budget = d_avail;
            let mut delta = 0.0;
            if self.config.demand_charge.is_some() && peak > 0.0 && power_ref[j] > peak {
                // Shave the fresh peak first — a ratchet here bills for
                // the whole period. The same discharge budget then serves
                // arbitrage, never double-counted.
                let cut = d_budget.min(power_ref[j] - peak);
                delta -= cut;
                d_budget -= cut;
            }
            // Arbitrage thresholds must clear the round-trip efficiency:
            // with η_c·η_d ≈ 0.9, a trade only pays if the sell price
            // exceeds buy/0.9 ≈ 1.11×. ±10% around a slow baseline keeps
            // the spread at ~1.22×, comfortably past breakeven.
            if ctx.prices[j] > ARBITRAGE_DISCHARGE_RATIO * ewma[j] {
                delta -= d_budget;
            } else if ctx.prices[j] < ARBITRAGE_CHARGE_RATIO * ewma[j] {
                // Charging raises grid draw, so it must stay under both
                // the billed peak (a ratchet charges for the whole
                // period) and any hard power budget (a violation defeats
                // the peak-shaving objective the battery exists for).
                let mut headroom = if self.config.demand_charge.is_some() {
                    (peak - (power_ref[j] + delta)).max(0.0)
                } else {
                    f64::INFINITY
                };
                if let Some(b) = &self.config.budgets {
                    headroom = headroom.min((b.budget_mw(j) - (power_ref[j] + delta)).max(0.0));
                }
                delta += c_avail.min(headroom);
            }
            shaping.shift[j] = delta;
            shaping.charge_cap[j] = delta.max(0.0);
            shaping.discharge_cap[j] = (-delta).max(0.0);
            // Budget backstop: when the reference is clamped at a binding
            // power budget, let the QP serve transient overshoot from the
            // battery even with no price/peak signal. Track a hair *below*
            // the budget — with battery rates the QP hits its reference to
            // float precision, and parking the realized draw exactly on
            // the boundary flips the strict `p > budget` violation check.
            if let Some(b) = &self.config.budgets {
                if unclamped_ref[j] > b.budget_mw(j) {
                    shaping.discharge_cap[j] = shaping.discharge_cap[j].max(d_avail);
                    shaping.shift[j] -= BUDGET_SHAVE_MARGIN_MW;
                }
            }
        }
        shaping
    }

    /// Assembles the per-step [`StorageProblem`] from the configured fleet
    /// and the evolving belief state. The rate caps handed to the QP are
    /// the *gated* caps from [`storage_shaping`](Self::storage_shaping) —
    /// zero on battery-outage steps and whenever no dispatch signal fired.
    /// Caps are rhs-only, so the QP skeleton and warm state survive every
    /// gating change.
    fn storage_problem_for(
        &self,
        ctx: &StepContext<'_>,
        shaping: &StorageShaping,
    ) -> Option<StorageProblem> {
        let fleet = self.config.storage.as_ref()?;
        let units = fleet.units();
        let (prev_c, prev_d) = self.prev_rates.clone().expect("initialized with storage");
        Some(StorageProblem {
            capacity_mwh: units.iter().map(|u| u.capacity_mwh).collect(),
            max_charge_mw: units
                .iter()
                .zip(&shaping.charge_cap)
                .map(|(u, &cap)| cap.min(u.max_charge_mw))
                .collect(),
            max_discharge_mw: units
                .iter()
                .zip(&shaping.discharge_cap)
                .map(|(u, &cap)| cap.min(u.max_discharge_mw))
                .collect(),
            charge_efficiency: units.iter().map(|u| u.charge_efficiency).collect(),
            discharge_efficiency: units.iter().map(|u| u.discharge_efficiency).collect(),
            soc_mwh: self
                .storage_state
                .as_ref()
                .expect("initialized with storage")
                .soc_mwh()
                .to_vec(),
            prev_charge_mw: prev_c,
            prev_discharge_mw: prev_d,
            dt_hours: ctx.dt_hours,
        })
    }

    /// Emergency fallback when the QP is infeasible (e.g. a workload surge
    /// beyond the ramped capacity): turn on whatever eq. 35 demands for a
    /// capacity-proportional split and apply that split directly.
    fn fallback(&self, ctx: &StepContext<'_>) -> Result<Decision> {
        let weights: Vec<f64> = ctx.idcs.iter().map(|i| i.max_workload()).collect();
        let allocation = Allocation::proportional(&ctx.offered, &weights)
            .ok_or_else(|| Error::Config("fleet has no capacity".into()))?;
        let servers_on: Vec<u64> = ctx
            .idcs
            .iter()
            .enumerate()
            .map(|(j, idc)| {
                idc.required_servers(allocation.idc_total(j))
                    .unwrap_or_else(|| idc.total_servers())
            })
            .collect();
        Ok(Decision {
            servers_on,
            allocation,
            charge_mw: Vec::new(),
            discharge_mw: Vec::new(),
        })
    }

    /// Takes the capacity-proportional fallback decision for `ctx` without
    /// consulting the solver, records the degradation in
    /// [`fallback_steps`](Self::fallback_steps) and advances the policy's
    /// internal state exactly as [`Policy::decide`]'s infeasibility path
    /// would. This is the runtime's staleness escape hatch: when the feeds
    /// are too stale to trust an MPC solve, the online stepper degrades to
    /// this safe split and counts it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the fleet has no capacity.
    pub fn degrade(&mut self, ctx: &StepContext<'_>) -> Result<Decision> {
        if self.state.is_none() {
            self.initialize(ctx)?;
        }
        for (p, &l) in self.predictors.iter_mut().zip(&ctx.offered) {
            p.observe(l);
        }
        if let Some(ewma) = &mut self.price_ewma {
            for (e, &p) in ewma.iter_mut().zip(&ctx.prices) {
                *e = (1.0 - PRICE_EWMA_ALPHA) * *e + PRICE_EWMA_ALPHA * p;
            }
        }
        idc_obs::record_anomaly("staleness_degrade", ctx.step as u64, &[]);
        let decision = self.fallback(ctx)?;
        self.command_zero_rates();
        self.observe_grid_power(ctx, &decision);
        self.fallback_steps.push(ctx.step);
        self.state = Some((
            decision.allocation.to_control_vector(),
            decision.servers_on.clone(),
        ));
        Ok(decision)
    }

    /// Exports the policy's complete evolving state for checkpointing (see
    /// [`MpcPolicySnapshot`] for what is and is not captured).
    pub fn snapshot(&self) -> MpcPolicySnapshot {
        let (warm, cold) = self.controller.solve_counters();
        MpcPolicySnapshot {
            prev_input: self.state.as_ref().map(|(u, _)| u.clone()),
            prev_servers: self.state.as_ref().map(|(_, m)| m.clone()),
            predictors: self.predictors.iter().map(|p| p.state()).collect(),
            warm_start: self.controller.warm_state().map(|w| WarmStartSnapshot {
                delta_u: w.delta_u,
                active_set: w.active_set.iter().map(|&i| i as u64).collect(),
                multipliers: w.multipliers,
            }),
            warm_solves: warm as u64,
            cold_solves: cold as u64,
            fallback_steps: self.fallback_steps.iter().map(|&s| s as u64).collect(),
            storage_soc_mwh: self.storage_state.as_ref().map(|s| s.soc_mwh().to_vec()),
            prev_charge_mw: self.prev_rates.as_ref().map(|(c, _)| c.clone()),
            prev_discharge_mw: self.prev_rates.as_ref().map(|(_, d)| d.clone()),
            price_ewma: self.price_ewma.clone(),
            peak_so_far_mw: self.peak_so_far_mw.clone(),
        }
    }

    /// Restores the policy's evolving state from a
    /// [`snapshot`](Self::snapshot) export, so the next
    /// [`Policy::decide`] call produces bit-for-bit the decision an
    /// uninterrupted run would have.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the snapshot is internally
    /// inconsistent with this policy's tuning (corrupt predictor state, a
    /// predictor order mismatch, or input/server vectors of different
    /// lengths).
    pub fn restore(&mut self, snapshot: &MpcPolicySnapshot) -> Result<()> {
        let mut predictors = Vec::with_capacity(snapshot.predictors.len());
        for (i, ps) in snapshot.predictors.iter().enumerate() {
            let p = WorkloadPredictor::from_state(ps)
                .ok_or_else(|| Error::Config(format!("corrupt predictor state #{i}")))?;
            if p.order() != self.config.predictor_order {
                return Err(Error::Config(format!(
                    "predictor #{i} order {} does not match config order {}",
                    p.order(),
                    self.config.predictor_order
                )));
            }
            predictors.push(p);
        }
        let state = match (&snapshot.prev_input, &snapshot.prev_servers) {
            (Some(u), Some(m)) => Some((u.clone(), m.clone())),
            (None, None) => None,
            _ => {
                return Err(Error::Config(
                    "snapshot has input state without server state (or vice versa)".into(),
                ))
            }
        };
        if state.is_none() && !predictors.is_empty() {
            return Err(Error::Config(
                "snapshot has predictors but no controller state".into(),
            ));
        }
        // Storage / demand-charge carry-over: an initialized snapshot must
        // hold exactly the auxiliary state this policy's tuning calls for.
        let initialized = state.is_some();
        let storage_state = match (&self.config.storage, &snapshot.storage_soc_mwh) {
            (Some(fleet), Some(soc)) => {
                Some(StorageState::with_soc(fleet, soc.clone()).ok_or_else(|| {
                    Error::Config(
                        "snapshot battery SoC is inconsistent with the configured fleet".into(),
                    )
                })?)
            }
            (None, Some(_)) => {
                return Err(Error::Config(
                    "snapshot has battery state but no storage is configured".into(),
                ))
            }
            (Some(_), None) if initialized => {
                return Err(Error::Config(
                    "snapshot lacks battery state for a storage-configured policy".into(),
                ))
            }
            _ => None,
        };
        let n_units = self.config.storage.as_ref().map(StorageFleet::num_idcs);
        let prev_rates = match (&snapshot.prev_charge_mw, &snapshot.prev_discharge_mw) {
            (Some(c), Some(d)) => {
                if storage_state.is_none() || Some(c.len()) != n_units || Some(d.len()) != n_units
                {
                    return Err(Error::Config(
                        "snapshot battery rates are inconsistent with the configured fleet".into(),
                    ));
                }
                Some((c.clone(), d.clone()))
            }
            (None, None) => {
                if storage_state.is_some() {
                    return Err(Error::Config(
                        "snapshot has battery SoC but no previous battery rates".into(),
                    ));
                }
                None
            }
            _ => {
                return Err(Error::Config(
                    "snapshot has charge rates without discharge rates (or vice versa)".into(),
                ))
            }
        };
        let needs_aux = self.config.storage.is_some() || self.config.demand_charge.is_some();
        if needs_aux
            && initialized
            && (snapshot.price_ewma.is_none() || snapshot.peak_so_far_mw.is_empty())
        {
            return Err(Error::Config(
                "snapshot lacks price/peak state for a storage- or demand-charge-configured \
                 policy"
                    .into(),
            ));
        }
        self.storage_state = storage_state;
        self.prev_rates = prev_rates;
        self.price_ewma = snapshot.price_ewma.clone();
        self.peak_so_far_mw = snapshot.peak_so_far_mw.clone();
        self.predictors = predictors;
        self.state = state;
        self.controller.reset();
        self.controller
            .restore_warm_state(snapshot.warm_start.as_ref().map(|w| WarmStateData {
                delta_u: w.delta_u.clone(),
                active_set: w.active_set.iter().map(|&i| i as usize).collect(),
                multipliers: w.multipliers.clone(),
            }));
        self.controller
            .restore_solve_counters(snapshot.warm_solves as usize, snapshot.cold_solves as usize);
        self.fallback_steps = snapshot
            .fallback_steps
            .iter()
            .map(|&s| s as usize)
            .collect();
        Ok(())
    }
}

impl Policy for MpcPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn initialize(&mut self, ctx: &StepContext<'_>) -> Result<()> {
        let n = ctx.idcs.len();
        if let Some(fleet) = &self.config.storage {
            if fleet.num_idcs() != n {
                return Err(Error::Config(format!(
                    "storage fleet covers {} IDCs, control fleet has {n}",
                    fleet.num_idcs()
                )));
            }
            self.storage_state = Some(StorageState::of(fleet));
            self.prev_rates = Some((vec![0.0; n], vec![0.0; n]));
        }
        if self.config.storage.is_some() || self.config.demand_charge.is_some() {
            self.price_ewma = Some(ctx.prices.clone());
            self.peak_so_far_mw = vec![0.0; n];
        }
        let reference = self.reference_for(ctx.idcs, &ctx.offered, &ctx.prices)?;
        let u = reference.allocation().to_vec();
        let m = reference.servers_ceil(ctx.idcs);
        self.state = Some((u, m));
        self.predictors = ctx
            .offered
            .iter()
            .map(|&l| {
                let mut p =
                    WorkloadPredictor::new(self.config.predictor_order).expect("validated order");
                p.observe(l);
                p
            })
            .collect();
        Ok(())
    }

    fn decide(&mut self, ctx: &StepContext<'_>) -> Result<Decision> {
        let start = Instant::now();
        let span = idc_obs::Span::enter_cat("policy.decide", "control");
        let result = self.decide_inner(ctx);
        drop(span);
        self.decide_ns += start.elapsed().as_nanos() as u64;
        result
    }
}

impl MpcPolicy {
    /// Updates the iteration EWMA and, when the anomaly log is enabled,
    /// dumps a record for steps whose QP iteration count spikes well above
    /// the recent average. Pure observability: the EWMA feeds nothing back
    /// into control and is not checkpointed.
    fn note_iteration_spike(&mut self, step: usize, iterations: usize) {
        let it = iterations as f64;
        let ewma = self.iter_ewma;
        if idc_obs::anomaly_enabled() && ewma > 0.0 && it > 3.0 * ewma && it > ewma + 8.0 {
            idc_obs::record_anomaly(
                "qp_iteration_spike",
                step as u64,
                &[("iterations", it), ("ewma", ewma)],
            );
        }
        self.iter_ewma = if ewma == 0.0 {
            it
        } else {
            0.9 * ewma + 0.1 * it
        };
    }

    /// The actual decision logic, separated so [`Policy::decide`] can time
    /// it inclusively across early returns.
    fn decide_inner(&mut self, ctx: &StepContext<'_>) -> Result<Decision> {
        if self.state.is_none() {
            self.initialize(ctx)?;
        }
        // Feed the predictors.
        for (p, &l) in self.predictors.iter_mut().zip(&ctx.offered) {
            p.observe(l);
        }
        // Track the arbitrage baseline: per-IDC price EWMA.
        if let Some(ewma) = &mut self.price_ewma {
            for (e, &p) in ewma.iter_mut().zip(&ctx.prices) {
                *e = (1.0 - PRICE_EWMA_ALPHA) * *e + PRICE_EWMA_ALPHA * p;
            }
        }
        let (prev_u, prev_m) = self.state.clone().expect("initialized above");
        let n = ctx.idcs.len();
        let c = ctx.offered.len();

        // ---- Reference (eq. 46 / greedy / demand-charge epigraph) on the
        // one-step-ahead workload, clamped to the power budget for peak
        // shaving (Sec. IV-D). ----
        let reference = self.reference_for(ctx.idcs, &ctx.offered, &ctx.prices)?;
        let mut power_ref = match &self.config.budgets {
            Some(b) => reference.clamped_power_mw(b.as_slice()),
            None => reference.power_mw().to_vec(),
        };
        // ---- Battery dispatch shaping: shift the tracking target by what
        // the units should move this period (peak shaving + price
        // arbitrage) and gate the QP's rate caps accordingly, so the
        // battery moves only when a signal fired. ----
        let shaping = self.storage_shaping(ctx, &power_ref, reference.power_mw());
        for (r, &s) in power_ref.iter_mut().zip(&shaping.shift) {
            *r = (*r + s).max(0.0);
        }
        // Budget-clamped IDCs get a heavy tracking weight: their power must
        // be pinned at the budget, while unclamped IDCs absorb whatever
        // load is displaced (Fig. 6's Wisconsin behaviour).
        let tracking_multiplier: Vec<f64> = match &self.config.budgets {
            Some(b) => reference
                .power_mw()
                .iter()
                .zip(b.as_slice())
                .map(|(&p, &budget)| if p > budget { 25.0 } else { 1.0 })
                .collect(),
            None => vec![1.0; n],
        };

        // ---- Slow loop: ramp-limited server sleep control toward the
        // reference deployment, never below what the current allocation
        // needs, never above a binding power budget's implied cap (unless
        // feasibility demands it). ----
        let ref_servers = reference.servers_ceil(ctx.idcs);
        let mut servers_on = Vec::with_capacity(n);
        for (j, idc) in ctx.idcs.iter().enumerate() {
            let current_lambda: f64 = prev_u[j * c..(j + 1) * c].iter().sum();
            let needed = idc
                .required_servers(current_lambda)
                .unwrap_or_else(|| idc.total_servers());
            let mut target = ref_servers[j].max(needed);
            if let Some(b) = &self.config.budgets {
                let cap = Self::budget_server_cap(idc, b.budget_mw(j)).max(needed);
                target = target.min(cap);
            }
            let next = if ctx.step.is_multiple_of(self.config.slow_period) {
                // Ramp-limited move toward the target, floored at what the
                // current allocation needs for its latency bound.
                let limit = self.config.server_ramp_limit;
                let stepped = if target > prev_m[j] {
                    (prev_m[j] + limit).min(target)
                } else {
                    prev_m[j] - limit.min(prev_m[j] - target)
                };
                stepped.max(needed).min(idc.total_servers())
            } else {
                prev_m[j].max(needed).min(idc.total_servers())
            };
            servers_on.push(next);
        }

        // ---- Emergency capacity override: the ramp limit is a comfort
        // preference, but serving the forecast workload is a hard duty. If
        // the ramped deployment cannot hold the forecast, add servers
        // (cheapest-headroom first) until it can. ----
        let beta2_forecast = self.forecast(&ctx.offered, self.config.mpc.control_horizon);
        let max_total_forecast = beta2_forecast
            .iter()
            .map(|f| f.iter().sum::<f64>())
            .fold(0.0f64, f64::max);
        let capacity_of = |m: &[u64]| -> f64 {
            ctx.idcs
                .iter()
                .zip(m)
                .map(|(idc, &mj)| idc.capacity_with(mj))
                .sum()
        };
        let mut guard = 0;
        while capacity_of(&servers_on) < max_total_forecast * 1.0005 && guard < 1_000 {
            // Add to the IDC with the most headroom.
            let Some((j, _)) = ctx
                .idcs
                .iter()
                .enumerate()
                .map(|(j, idc)| (j, idc.total_servers() - servers_on[j]))
                .filter(|&(_, headroom)| headroom > 0)
                .max_by_key(|&(_, headroom)| headroom)
            else {
                break; // fleet saturated; the QP will report infeasibility
            };
            let missing = max_total_forecast * 1.0005 - capacity_of(&servers_on);
            let add = ((missing / ctx.idcs[j].service_rate()).ceil() as u64)
                .max(1)
                .min(ctx.idcs[j].total_servers() - servers_on[j]);
            servers_on[j] += add;
            guard += 1;
        }

        // ---- Reference *trajectory* over the prediction horizon: the
        // paper's "the optimization is conducted based on the predicted
        // workload" (Sec. IV-D) — re-solve the reference at each step's
        // forecast so the controller anticipates workload ramps. Falls
        // back to holding the current reference when a forecast step is
        // infeasible (the emergency override will catch up). ----
        let beta1 = self.config.mpc.prediction_horizon;
        let horizon_forecasts: Vec<Vec<f64>> = {
            let mut per_portal: Vec<Vec<f64>> =
                self.predictors.iter().map(|p| p.forecast(beta1)).collect();
            (0..beta1)
                .map(|s| per_portal.iter_mut().map(|f| f[s]).collect())
                .collect()
        };
        let mut power_reference_mw = Vec::with_capacity(beta1);
        if self.config.anticipatory_reference {
            for step_forecast in &horizon_forecasts {
                let step_ref = self
                    .reference_for(ctx.idcs, step_forecast, &ctx.prices)
                    .map(|r| {
                        let mut p = match &self.config.budgets {
                            Some(b) => r.clamped_power_mw(b.as_slice()),
                            None => r.power_mw().to_vec(),
                        };
                        for (pj, &s) in p.iter_mut().zip(&shaping.shift) {
                            *pj = (*pj + s).max(0.0);
                        }
                        p
                    })
                    .unwrap_or_else(|_| power_ref.clone());
                power_reference_mw.push(step_ref);
            }
        } else {
            power_reference_mw = vec![power_ref.clone(); beta1];
        }

        let problem = MpcProblem {
            b1_mw: ctx
                .idcs
                .iter()
                .map(|i| i.pue() * i.server().b1() / 1e6)
                .collect(),
            b0_mw: ctx
                .idcs
                .iter()
                .map(|i| i.pue() * i.server().b0() / 1e6)
                .collect(),
            servers_on: servers_on.clone(),
            capacities: ctx
                .idcs
                .iter()
                .zip(&servers_on)
                .map(|(idc, &m)| idc.capacity_with(m))
                .collect(),
            prev_input: prev_u.clone(),
            workload_forecast: beta2_forecast,
            power_reference_mw,
            tracking_multiplier,
            storage: self.storage_problem_for(ctx, &shaping),
        };
        if self.config.record_problems {
            self.problem_log.push(problem.clone());
        }
        if self.config.forced_failure_steps.contains(&ctx.step) {
            // Injected solver failure: behave exactly like an iteration-limit
            // abort — the cached solver state is suspect, so drop it (the
            // next solve is cold) and degrade to the fallback split.
            idc_obs::record_anomaly("injected_solver_failure", ctx.step as u64, &[]);
            self.controller.reset();
            self.fallback_steps.push(ctx.step);
            let decision = self.fallback(ctx)?;
            self.command_zero_rates();
            self.observe_grid_power(ctx, &decision);
            self.state = Some((
                decision.allocation.to_control_vector(),
                decision.servers_on.clone(),
            ));
            return Ok(decision);
        }
        if !self.config.solver_reuse {
            self.controller.reset();
        }
        if self.config.forced_refactor_steps.contains(&ctx.step) {
            // Injected factor poison: the solver detects the drift and
            // rebuilds — no fallback, no reset, the plan is unchanged.
            idc_obs::record_anomaly("injected_forced_refactorization", ctx.step as u64, &[]);
            self.controller.force_refactor_next();
        }
        if self.config.forced_stall_steps.contains(&ctx.step) {
            // Injected coordinator stall: the sharded backend drops one
            // outer coordination round and must converge anyway.
            idc_obs::record_anomaly("injected_coordinator_stall", ctx.step as u64, &[]);
            self.controller.force_coordinator_stall_next();
        }
        match self.controller.plan(&problem) {
            Ok(plan) => {
                self.note_iteration_spike(ctx.step, plan.qp_iterations());
                for r in plan.warm_rejections() {
                    // A warm step paid a cold shard solve: always explain
                    // why in the anomaly log (satellite contract — never a
                    // silent cold fallback).
                    idc_obs::record_anomaly(
                        "warm_start_rejected",
                        ctx.step as u64,
                        &[
                            ("shard", r.shard as f64),
                            ("conservation", r.conservation),
                            ("capacity", r.capacity),
                            ("nonnegativity", r.nonnegativity),
                        ],
                    );
                }
                let u = plan.next_input().to_vec();
                let allocation = Allocation::from_control_vector(c, n, &u)
                    .expect("controller output has fleet dimensions");
                // Apply the planned battery rates to the belief SoC with
                // the same clamped dynamics the simulator uses, and report
                // the applied (not raw) rates so belief and plant agree.
                let mut charge_mw = Vec::new();
                let mut discharge_mw = Vec::new();
                if let Some(fleet) = &self.config.storage {
                    let state = self.storage_state.as_mut().expect("initialized with storage");
                    for j in 0..n {
                        let applied = state.apply(
                            fleet,
                            j,
                            plan.next_charge_mw()[j],
                            plan.next_discharge_mw()[j],
                            ctx.dt_hours,
                        );
                        charge_mw.push(applied.charge_mw);
                        discharge_mw.push(applied.discharge_mw);
                    }
                    self.prev_rates = Some((charge_mw.clone(), discharge_mw.clone()));
                }
                self.state = Some((u, servers_on.clone()));
                let decision = Decision {
                    servers_on,
                    allocation,
                    charge_mw,
                    discharge_mw,
                };
                self.observe_grid_power(ctx, &decision);
                Ok(decision)
            }
            Err(idc_opt::Error::Infeasible) => {
                idc_obs::record_anomaly("qp_infeasible_fallback", ctx.step as u64, &[]);
                self.fallback_steps.push(ctx.step);
                let decision = self.fallback(ctx)?;
                self.command_zero_rates();
                self.observe_grid_power(ctx, &decision);
                self.state = Some((
                    decision.allocation.to_control_vector(),
                    decision.servers_on.clone(),
                ));
                Ok(decision)
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn ctx<'a>(idcs: &'a [IdcConfig], hour: f64, prices: Vec<f64>) -> StepContext<'a> {
        StepContext {
            step: 0,
            hour,
            dt_hours: config::DEFAULT_TS_HOURS,
            prices,
            offered: vec![30_000.0, 15_000.0, 15_000.0, 20_000.0, 20_000.0],
            idcs,
        }
    }

    #[test]
    fn optimal_policy_jumps_to_reference() {
        let fleet = config::paper_fleet_calibrated();
        let mut policy = OptimalPolicy::new(ReferenceKind::PriceGreedy);
        assert_eq!(policy.kind(), ReferenceKind::PriceGreedy);
        let c = ctx(fleet.idcs(), 6.0, vec![43.26, 30.26, 19.06]);
        let d = policy.decide(&c).unwrap();
        // 6H greedy: WI and MN saturated, MI takes the rest (Fig. 4/5).
        let lam = d.allocation.idc_totals();
        assert!(
            (lam[2] - fleet.idcs()[2].max_workload()).abs() < 2.0,
            "WI {}",
            lam[2]
        );
        assert!(
            (lam[1] - fleet.idcs()[1].max_workload()).abs() < 2.0,
            "MN {}",
            lam[1]
        );
        // Server counts ≈ the paper's 7 500 / 40 000 / 20 000.
        assert!(
            (d.servers_on[0] as f64 - 7_500.0).abs() < 5.0,
            "{:?}",
            d.servers_on
        );
        assert_eq!(d.servers_on[1], 40_000);
        assert_eq!(d.servers_on[2], 20_000);
    }

    #[test]
    fn optimal_policy_produces_papers_7h_jump() {
        let fleet = config::paper_fleet_calibrated();
        let mut policy = OptimalPolicy::new(ReferenceKind::PriceGreedy);
        let c = ctx(fleet.idcs(), 7.0, vec![49.90, 29.47, 77.97]);
        let d = policy.decide(&c).unwrap();
        // The paper's 7H optimal: MI 20 000, MN 40 000, WI ~5 715 servers.
        assert_eq!(d.servers_on[0], 20_000);
        assert_eq!(d.servers_on[1], 40_000);
        assert!(
            (d.servers_on[2] as f64 - 5_715.0).abs() < 5.0,
            "WI servers {:?}",
            d.servers_on[2]
        );
    }

    #[test]
    fn mpc_policy_initializes_and_conserves_workload() {
        let fleet = config::paper_fleet_calibrated();
        let scenario = crate::scenario::smoothing_scenario();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);
        policy.initialize(&init).unwrap();
        assert!(policy.current_input().is_some());

        let step = ctx(fleet.idcs(), 7.0, vec![49.90, 29.47, 77.97]);
        let d = policy.decide(&step).unwrap();
        let total: f64 = d.allocation.idc_totals().iter().sum();
        assert!((total - 100_000.0).abs() < 1e-3, "total {total}");
        assert!(d.allocation.is_nonnegative(1e-9));
        // Latency bound respected everywhere.
        for (j, idc) in fleet.idcs().iter().enumerate() {
            assert!(
                idc.meets_latency_bound(d.servers_on[j], d.allocation.idc_total(j)),
                "IDC {j} violates latency"
            );
        }
    }

    #[test]
    fn mpc_moves_gradually_compared_to_optimal() {
        let fleet = config::paper_fleet_calibrated();
        let scenario = crate::scenario::smoothing_scenario();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);
        policy.initialize(&init).unwrap();
        let before = policy.current_input().unwrap().to_vec();

        let step = ctx(fleet.idcs(), 7.0, vec![49.90, 29.47, 77.97]);
        let d = policy.decide(&step).unwrap();
        // Wisconsin (block 2) drains, but not all the way to the 7H
        // optimum (10 000) in a single step.
        let wi_before: f64 = before[2 * 5..3 * 5].iter().sum();
        let wi_after = d.allocation.idc_total(2);
        assert!(wi_after < wi_before, "{wi_after} !< {wi_before}");
        assert!(
            wi_after > 10_000.0 + 1_000.0,
            "jumped too far in one step: {wi_after}"
        );
    }

    #[test]
    fn mpc_config_validation() {
        assert!(MpcPolicy::new(MpcPolicyConfig {
            slow_period: 0,
            ..MpcPolicyConfig::default()
        })
        .is_err());
        assert!(MpcPolicy::new(MpcPolicyConfig {
            server_ramp_limit: 0,
            ..MpcPolicyConfig::default()
        })
        .is_err());
        assert!(MpcPolicy::new(MpcPolicyConfig {
            predictor_order: 0,
            ..MpcPolicyConfig::default()
        })
        .is_err());
    }

    #[test]
    fn budget_server_cap_matches_peak_power() {
        let fleet = config::paper_fleet_calibrated();
        // 5.13 MW / 285 W = 18 000 servers.
        let cap = MpcPolicy::budget_server_cap(&fleet.idcs()[0], 5.13);
        assert_eq!(cap, 18_000);
        // Budget larger than the fleet: capped at M.
        let cap = MpcPolicy::budget_server_cap(&fleet.idcs()[0], 1e9);
        assert_eq!(cap, 20_000);
    }

    #[test]
    fn decide_without_initialize_self_initializes() {
        let fleet = config::paper_fleet_calibrated();
        let scenario = crate::scenario::smoothing_scenario();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let step = ctx(fleet.idcs(), 6.0, vec![43.26, 30.26, 19.06]);
        let d = policy.decide(&step).unwrap();
        let total: f64 = d.allocation.idc_totals().iter().sum();
        assert!((total - 100_000.0).abs() < 1e-3);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let fleet = config::paper_fleet_calibrated();
        let scenario = crate::scenario::smoothing_scenario();
        let mut live = MpcPolicy::paper_tuned(&scenario).unwrap();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);
        live.initialize(&init).unwrap();

        let price_sets = [
            vec![49.90, 29.47, 77.97],
            vec![44.00, 31.00, 60.00],
            vec![41.00, 35.00, 41.00],
            vec![55.00, 28.00, 39.00],
        ];
        for (k, prices) in price_sets.iter().take(2).enumerate() {
            let mut c = ctx(fleet.idcs(), 7.0 + k as f64, prices.clone());
            c.step = k;
            live.decide(&c).unwrap();
        }

        // Snapshot after step 1, rebuild a fresh policy, restore.
        let snap = live.snapshot();
        let mut resumed = MpcPolicy::paper_tuned(&scenario).unwrap();
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.snapshot(), snap);

        for (k, prices) in price_sets.iter().enumerate().skip(2) {
            let mut c = ctx(fleet.idcs(), 7.0 + k as f64, prices.clone());
            c.step = k;
            let a = live.decide(&c).unwrap();
            let b = resumed.decide(&c).unwrap();
            assert_eq!(a.servers_on, b.servers_on, "step {k}");
            for (x, y) in a
                .allocation
                .to_control_vector()
                .iter()
                .zip(b.allocation.to_control_vector().iter())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "step {k}");
            }
        }
        assert_eq!(live.snapshot(), resumed.snapshot());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshot() {
        let scenario = crate::scenario::smoothing_scenario();
        let fleet = config::paper_fleet_calibrated();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);
        policy.initialize(&init).unwrap();
        let good = policy.snapshot();

        let mut bad = good.clone();
        bad.prev_servers = None;
        assert!(policy.restore(&bad).is_err());

        let mut bad = good.clone();
        bad.predictors[0].order = 0; // corrupt predictor
        assert!(policy.restore(&bad).is_err());

        let mut bad = good;
        bad.predictors[0].rls.forgetting = 7.0;
        assert!(policy.restore(&bad).is_err());
    }

    #[test]
    fn degrade_counts_and_advances_state() {
        let scenario = crate::scenario::smoothing_scenario();
        let fleet = config::paper_fleet_calibrated();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let mut c = ctx(fleet.idcs(), 7.0, vec![49.90, 29.47, 77.97]);
        c.step = 3;
        let d = policy.degrade(&c).unwrap();
        assert_eq!(policy.fallback_steps(), &[3]);
        // State advanced to the fallback operating point.
        let total: f64 = d.allocation.idc_totals().iter().sum();
        assert!((total - 100_000.0).abs() < 1e-3);
        assert_eq!(
            policy.current_input().unwrap(),
            d.allocation.to_control_vector().as_slice()
        );
        // A normal decide still works afterwards.
        c.step = 4;
        policy.decide(&c).unwrap();
        assert_eq!(policy.fallback_steps(), &[3]);
    }

    #[test]
    fn storage_snapshot_restore_resumes_bit_identically() {
        let fleet = config::paper_fleet_calibrated();
        let scenario = crate::scenario::storage_plus_shifting_scenario(5);
        let mut live = MpcPolicy::paper_tuned(&scenario).unwrap();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);
        live.initialize(&init).unwrap();

        let price_sets = [
            vec![49.90, 29.47, 77.97],
            vec![44.00, 31.00, 60.00],
            vec![41.00, 35.00, 41.00],
            vec![90.00, 28.00, 12.00], // spread wide enough to dispatch
        ];
        for (k, prices) in price_sets.iter().take(2).enumerate() {
            let mut c = ctx(fleet.idcs(), 7.0 + k as f64, prices.clone());
            c.step = k;
            live.decide(&c).unwrap();
        }

        let snap = live.snapshot();
        assert!(snap.storage_soc_mwh.is_some());
        assert!(snap.price_ewma.is_some());
        assert_eq!(snap.peak_so_far_mw.len(), 3);
        let mut resumed = MpcPolicy::paper_tuned(&scenario).unwrap();
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.snapshot(), snap);

        for (k, prices) in price_sets.iter().enumerate().skip(2) {
            let mut c = ctx(fleet.idcs(), 7.0 + k as f64, prices.clone());
            c.step = k;
            let a = live.decide(&c).unwrap();
            let b = resumed.decide(&c).unwrap();
            assert_eq!(a.servers_on, b.servers_on, "step {k}");
            for (x, y) in a.charge_mw.iter().zip(&b.charge_mw) {
                assert_eq!(x.to_bits(), y.to_bits(), "charge step {k}");
            }
            for (x, y) in a.discharge_mw.iter().zip(&b.discharge_mw) {
                assert_eq!(x.to_bits(), y.to_bits(), "discharge step {k}");
            }
            for (x, y) in a
                .allocation
                .to_control_vector()
                .iter()
                .zip(b.allocation.to_control_vector().iter())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "step {k}");
            }
        }
        assert_eq!(live.snapshot(), resumed.snapshot());
    }

    #[test]
    fn restore_rejects_storage_mismatch() {
        let fleet = config::paper_fleet_calibrated();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);

        // A storage-configured policy rejects snapshots whose battery
        // state is missing or the wrong size.
        let scenario = crate::scenario::storage_plus_shifting_scenario(5);
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        policy.initialize(&init).unwrap();
        let good = policy.snapshot();

        let mut bad = good.clone();
        bad.storage_soc_mwh = None;
        assert!(policy.restore(&bad).is_err());

        let mut bad = good.clone();
        bad.storage_soc_mwh = Some(vec![2.0; 2]); // fleet has 3 units
        assert!(policy.restore(&bad).is_err());

        let mut bad = good.clone();
        bad.prev_charge_mw = None; // rates must come as a pair
        assert!(policy.restore(&bad).is_err());

        let mut bad = good.clone();
        bad.price_ewma = None;
        assert!(policy.restore(&bad).is_err());

        // A storage-free policy rejects a snapshot carrying battery state.
        let plain = crate::scenario::smoothing_scenario();
        let mut plain_policy = MpcPolicy::paper_tuned(&plain).unwrap();
        plain_policy.initialize(&init).unwrap();
        let mut bad = plain_policy.snapshot();
        bad.storage_soc_mwh = good.storage_soc_mwh.clone();
        assert!(plain_policy.restore(&bad).is_err());
    }

    #[test]
    fn battery_outage_steps_force_zero_rates() {
        let fleet = config::paper_fleet_calibrated();
        let scenario = crate::scenario::storage_plus_shifting_scenario(5);
        let mut cfg = MpcPolicy::paper_tuned(&scenario).unwrap().config().clone();
        cfg.battery_outage_steps = vec![1];
        let mut policy = MpcPolicy::new(cfg).unwrap();
        let init = ctx(fleet.idcs(), 6.5, vec![43.26, 30.26, 19.06]);
        policy.initialize(&init).unwrap();

        // A wide price spread would normally dispatch the battery...
        let mut c = ctx(fleet.idcs(), 7.0, vec![90.00, 28.00, 12.00]);
        c.step = 1;
        let d = policy.decide(&c).unwrap();
        // ...but the outage gates every rate cap to zero.
        assert_eq!(d.charge_mw.len(), 3);
        assert!(d.charge_mw.iter().all(|&r| r == 0.0), "{:?}", d.charge_mw);
        assert!(
            d.discharge_mw.iter().all(|&r| r == 0.0),
            "{:?}",
            d.discharge_mw
        );
    }

    #[test]
    fn policy_names_are_informative() {
        let scenario = crate::scenario::smoothing_scenario();
        assert!(OptimalPolicy::new(ReferenceKind::LpOptimal)
            .name()
            .contains("LP"));
        assert!(MpcPolicy::paper_tuned(&scenario)
            .unwrap()
            .name()
            .contains("MPC"));
    }
}
