//! Plain-text rendering for the reproduction harness.

use crate::metrics::Comparison;
use crate::simulation::SimulationResult;

/// Renders one run's per-IDC trajectories as an aligned table:
/// `minute | power per IDC | servers per IDC`.
pub fn render_trajectories(result: &SimulationResult, idc_names: &[&str]) -> String {
    let n = result.num_idcs();
    let mut out = String::new();
    out.push_str(&format!(
        "# {} — {}\n",
        result.scenario_name(),
        result.policy_name()
    ));
    out.push_str("  min");
    for name in idc_names.iter().take(n) {
        out.push_str(&format!("  {:>12}", format!("{name} MW")));
    }
    for name in idc_names.iter().take(n) {
        out.push_str(&format!("  {:>12}", format!("{name} on")));
    }
    out.push('\n');
    for (k, t) in result.times_min().iter().enumerate() {
        out.push_str(&format!("{t:>5.1}"));
        for j in 0..n {
            out.push_str(&format!("  {:>12.4}", result.power_mw(j)[k]));
        }
        for j in 0..n {
            out.push_str(&format!("  {:>12}", result.servers(j)[k]));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "total cost: ${:.2}   latency-ok: {:.1}%\n",
        result.total_cost(),
        100.0 * result.latency_ok_fraction()
    ));
    out
}

/// Renders a policy comparison summary.
pub fn render_comparison(cmp: &Comparison, idc_names: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} vs {}\n", cmp.name_a, cmp.name_b));
    out.push_str(&format!(
        "total cost: ${:.2} vs ${:.2} ({:+.2}%)\n",
        cmp.total_cost.0,
        cmp.total_cost.1,
        cmp.cost_overhead_percent()
    ));
    for (j, name) in idc_names.iter().enumerate().take(cmp.peak_mw.len()) {
        out.push_str(&format!(
            "{name:>10}: peak {:.3} vs {:.3} MW | volatility {:.4} vs {:.4} MW/step | worst jump {:.3} vs {:.3} MW\n",
            cmp.peak_mw[j].0,
            cmp.peak_mw[j].1,
            cmp.volatility_mw[j].0,
            cmp.volatility_mw[j].1,
            cmp.max_jump_mw[j].0,
            cmp.max_jump_mw[j].1,
        ));
    }
    out.push_str(&format!(
        "fleet worst-jump reduction: {:.1}%\n",
        cmp.jump_reduction_percent()
    ));
    out
}

/// Renders one run as CSV (`minute,power_<idc>…,servers_<idc>…,cost_cum`),
/// suitable for external plotting tools.
pub fn render_csv(result: &SimulationResult, idc_names: &[&str]) -> String {
    let n = result.num_idcs();
    let mut out = String::from("minute");
    for name in idc_names.iter().take(n) {
        out.push_str(&format!(",power_mw_{name}"));
    }
    for name in idc_names.iter().take(n) {
        out.push_str(&format!(",servers_{name}"));
    }
    for name in idc_names.iter().take(n) {
        out.push_str(&format!(",workload_{name}"));
    }
    out.push_str(",cost_cumulative\n");
    for (k, t) in result.times_min().iter().enumerate() {
        out.push_str(&format!("{t:.3}"));
        for j in 0..n {
            out.push_str(&format!(",{:.6}", result.power_mw(j)[k]));
        }
        for j in 0..n {
            out.push_str(&format!(",{}", result.servers(j)[k]));
        }
        for j in 0..n {
            out.push_str(&format!(",{:.3}", result.workload(j)[k]));
        }
        out.push_str(&format!(",{:.4}\n", result.cost_cumulative()[k]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{OptimalPolicy, ReferenceKind};
    use crate::scenario::smoothing_scenario;
    use crate::simulation::Simulator;

    #[test]
    fn trajectory_rendering_contains_headers_and_rows() {
        let scenario = smoothing_scenario();
        let result = Simulator::new()
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let text = render_trajectories(&result, &["MI", "MN", "WI"]);
        assert!(text.contains("MI MW"));
        assert!(text.contains("total cost"));
        assert!(text.lines().count() > 20);
    }

    #[test]
    fn csv_has_header_and_one_row_per_step() {
        let scenario = smoothing_scenario();
        let result = Simulator::new()
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let csv = render_csv(&result, &["MI", "MN", "WI"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + result.times_min().len());
        assert!(lines[0].starts_with("minute,power_mw_MI"));
        assert!(lines[0].ends_with("cost_cumulative"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == fields));
    }

    #[test]
    fn comparison_rendering_is_complete() {
        let scenario = smoothing_scenario();
        let sim = Simulator::new();
        let a = sim
            .run(&scenario, &mut OptimalPolicy::new(ReferenceKind::LpOptimal))
            .unwrap();
        let b = sim
            .run(
                &scenario,
                &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
            )
            .unwrap();
        let cmp = crate::metrics::Comparison::between(&a, &b).unwrap();
        let text = render_comparison(&cmp, &["MI", "MN", "WI"]);
        assert!(text.contains("total cost"));
        assert!(text.contains("worst jump"));
        assert!(text.contains("MI"));
    }
}
