use std::fmt;

/// Errors produced by the core simulation and control stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid scenario or controller configuration.
    Config(String),
    /// An optimization subproblem failed.
    Optimization(idc_opt::Error),
    /// A linear-algebra kernel failed.
    Numerical(idc_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Optimization(e) => write!(f, "optimization failure: {e}"),
            Error::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Optimization(e) => Some(e),
            Error::Numerical(e) => Some(e),
            Error::Config(_) => None,
        }
    }
}

impl From<idc_opt::Error> for Error {
    fn from(e: idc_opt::Error) -> Self {
        Error::Optimization(e)
    }
}

impl From<idc_linalg::Error> for Error {
    fn from(e: idc_linalg::Error) -> Self {
        Error::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = Error::Config("bad horizon".into());
        assert_eq!(e.to_string(), "configuration error: bad horizon");
        assert!(e.source().is_none());

        let e: Error = idc_opt::Error::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());

        let e: Error = idc_linalg::Error::Singular.into();
        assert!(e.to_string().contains("singular"));
    }
}
