//! Time sources for online control loops.
//!
//! The batch [`crate::simulation::Simulator`] steps as fast as it can; an
//! online runtime must pace its fast loop at the scenario's sampling
//! period `Ts` (possibly accelerated for replays). The [`Clock`] trait
//! abstracts that pacing so the same stepper runs under a no-op
//! [`SimClock`] in tests and a [`WallClock`] in the daemon.

use std::time::{Duration, Instant};

/// Paces an online control loop: `wait_for_step(k)` blocks until step `k`
/// is due to run.
///
/// Schedulers that multiplex many loops over a worker pool cannot afford
/// to block one thread per loop, so the trait also exposes the
/// *non-blocking* view of the same schedule: [`due_in`](Clock::due_in)
/// reports how long until step `k` is due, letting a ready queue order
/// loops by due time and sleep only until the earliest one.
pub trait Clock {
    /// Blocks until step `k` is due. Simulated clocks return immediately.
    fn wait_for_step(&mut self, k: u64);

    /// Remaining real time until step `k` is due; [`Duration::ZERO`] when
    /// it is due now (the default — simulated clocks are always due).
    /// Never blocks.
    fn due_in(&mut self, _k: u64) -> Duration {
        Duration::ZERO
    }
}

/// The simulated clock: every step is due immediately. Runs under this
/// clock are exactly as fast — and exactly as deterministic — as the batch
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock;

impl Clock for SimClock {
    fn wait_for_step(&mut self, _k: u64) {}
}

/// A wall clock pacing steps at `Ts / speedup` of real time. The epoch is
/// the first `wait_for_step` call, so construction cost never skews the
/// schedule. A step that is already overdue returns immediately (no
/// attempt to "catch up" by running faster than the remaining schedule).
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Option<Instant>,
    step_duration: Duration,
}

impl WallClock {
    /// Creates a clock for sampling period `ts_hours`, accelerated by
    /// `speedup` (2.0 = twice real time). A non-finite, zero or negative
    /// `speedup` means "as fast as possible" — every step is immediately
    /// due, like [`SimClock`].
    pub fn new(ts_hours: f64, speedup: f64) -> Self {
        let secs = if speedup.is_finite() && speedup > 0.0 {
            (ts_hours * 3600.0 / speedup).max(0.0)
        } else {
            0.0
        };
        WallClock {
            start: None,
            step_duration: Duration::from_secs_f64(secs),
        }
    }

    /// The real-time duration of one step under this clock.
    pub fn step_duration(&self) -> Duration {
        self.step_duration
    }
}

impl WallClock {
    /// The instant step `k` is due, establishing the epoch on first use.
    fn due_at(&mut self, k: u64) -> Instant {
        let start = *self.start.get_or_insert_with(Instant::now);
        start + self.step_duration * u32::try_from(k.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    }
}

impl Clock for WallClock {
    fn wait_for_step(&mut self, k: u64) {
        let due = self.due_at(k);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
    }

    fn due_in(&mut self, k: u64) -> Duration {
        self.due_at(k).saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_never_blocks() {
        let mut c = SimClock;
        let t0 = Instant::now();
        for k in 0..1_000 {
            c.wait_for_step(k);
        }
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn wall_clock_max_speed_never_blocks() {
        let mut c = WallClock::new(1.0 / 120.0, 0.0);
        assert_eq!(c.step_duration(), Duration::ZERO);
        let t0 = Instant::now();
        for k in 0..1_000 {
            c.wait_for_step(k);
        }
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn due_in_is_zero_for_sim_and_max_speed_clocks() {
        assert_eq!(SimClock.due_in(1_000_000), Duration::ZERO);
        let mut c = WallClock::new(1.0, 0.0);
        assert_eq!(c.due_in(1_000_000), Duration::ZERO);
    }

    #[test]
    fn due_in_tracks_the_schedule_without_blocking() {
        // 36 s period at 3600× → 10 ms per step.
        let mut c = WallClock::new(0.01, 1.0);
        let t0 = Instant::now();
        // Establishes the epoch; step 0 is due immediately.
        assert_eq!(c.due_in(0), Duration::ZERO);
        let far = c.due_in(100);
        // Step 100 is due ~3.6 s out; the call itself must not sleep.
        assert!(far > Duration::from_secs(3), "{far:?}");
        assert!(t0.elapsed() < Duration::from_millis(100));
        // Consistent with wait_for_step on the shared epoch.
        c.wait_for_step(0);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn wall_clock_paces_steps() {
        // 30 s sampling period at 3000× speedup → 10 ms per step.
        let mut c = WallClock::new(30.0 / 3600.0, 3_000.0);
        assert_eq!(c.step_duration(), Duration::from_millis(10));
        let t0 = Instant::now();
        for k in 0..4 {
            c.wait_for_step(k);
        }
        // Step 3 is due 30 ms after the epoch.
        assert!(
            t0.elapsed() >= Duration::from_millis(28),
            "{:?}",
            t0.elapsed()
        );
    }
}
