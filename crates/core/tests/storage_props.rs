//! Property-based tests for the storage subsystem at the closed-loop
//! level: state-of-charge bounds and the battery energy balance on
//! arbitrary noisy traces, and the zero-capacity byte-identity guarantee
//! across randomized inert configurations.

use idc_core::policy::MpcPolicy;
use idc_core::scenario::noisy_day_scenario;
use idc_core::simulation::Simulator;
use idc_storage::{BatteryUnit, StorageFleet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On arbitrary noisy traces and randomized battery parameters the
    /// closed loop keeps every physical storage invariant: SoC within
    /// `[0, capacity]`, applied rates within the unit's limits, and the
    /// recorded SoC trajectory exactly consistent with the energy balance
    /// `soc' = soc + Ts·(η_c·c − d/η_d)` (modulo the boundary clamp).
    #[test]
    fn soc_stays_in_bounds_on_arbitrary_traces(
        seed in 0u64..10_000,
        cap in 0.5f64..8.0,
        rates in prop::collection::vec(0.2f64..3.0, 2),
        eff in prop::collection::vec(0.8f64..1.0, 2),
        soc_frac in 0.0f64..1.0,
    ) {
        let unit = BatteryUnit::new(
            cap, rates[0], rates[1], eff[0], eff[1], cap * soc_frac,
        ).unwrap();
        let scenario = noisy_day_scenario(seed)
            .with_num_steps(60)
            .with_storage(StorageFleet::uniform(3, unit).unwrap())
            .unwrap();
        let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
        let result = Simulator::new().run(&scenario, &mut policy).unwrap();
        let ts = scenario.ts_hours();
        for j in 0..result.num_idcs() {
            let soc = result.soc_mwh(j).unwrap();
            let c = result.battery_charge_mw(j).unwrap();
            let d = result.battery_discharge_mw(j).unwrap();
            let mut prev = cap * soc_frac;
            for k in 0..soc.len() {
                prop_assert!(
                    soc[k] >= -1e-9 && soc[k] <= cap + 1e-9,
                    "idc {j} step {k}: soc {} outside [0, {cap}]", soc[k]
                );
                prop_assert!(
                    c[k] >= 0.0 && c[k] <= rates[0] + 1e-9,
                    "idc {j} step {k}: charge {} outside [0, {}]", c[k], rates[0]
                );
                prop_assert!(
                    d[k] >= 0.0 && d[k] <= rates[1] + 1e-9,
                    "idc {j} step {k}: discharge {} outside [0, {}]", d[k], rates[1]
                );
                let expected =
                    (prev + (eff[0] * c[k] - d[k] / eff[1]) * ts).clamp(0.0, cap);
                prop_assert!(
                    (soc[k] - expected).abs() <= 1e-9,
                    "idc {j} step {k}: soc {} vs energy balance {expected}", soc[k]
                );
                prev = soc[k];
            }
        }
    }

    /// Inert storage — zero capacity, or zero rates, however the unit got
    /// there — leaves the closed loop byte-identical to a storage-free
    /// run: same power trajectory bits, same server counts, same cost.
    #[test]
    fn inert_storage_is_byte_identical_to_no_storage(
        seed in 0u64..10_000,
        kind in 0usize..2,
        rates in prop::collection::vec(0.0f64..3.0, 2),
        eff in prop::collection::vec(0.8f64..1.0, 2),
        cap in 0.5f64..8.0,
    ) {
        // Two routes to inertness: a zero-capacity unit with live rates,
        // or a real capacity whose rates are both zero.
        let unit = if kind == 0 {
            BatteryUnit::new(0.0, rates[0], rates[1], eff[0], eff[1], 0.0).unwrap()
        } else {
            BatteryUnit::new(cap, 0.0, 0.0, eff[0], eff[1], cap / 2.0).unwrap()
        };
        let base = noisy_day_scenario(seed).with_num_steps(40);
        let with_inert = base
            .clone()
            .with_storage(StorageFleet::uniform(3, unit).unwrap())
            .unwrap();
        prop_assert!(with_inert.storage().is_none(), "inert fleet not normalized away");

        let run = |scenario| {
            let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
            Simulator::new().run(&scenario, &mut policy).unwrap()
        };
        let a = run(base);
        let b = run(with_inert);
        for j in 0..a.num_idcs() {
            prop_assert!(b.soc_mwh(j).is_none());
            for k in 0..a.times_min().len() {
                prop_assert_eq!(a.power_mw(j)[k].to_bits(), b.power_mw(j)[k].to_bits());
                prop_assert_eq!(a.servers(j)[k], b.servers(j)[k]);
                prop_assert_eq!(
                    a.workload(j)[k].to_bits(),
                    b.workload(j)[k].to_bits()
                );
            }
        }
        for k in 0..a.times_min().len() {
            prop_assert_eq!(
                a.cost_cumulative()[k].to_bits(),
                b.cost_cumulative()[k].to_bits()
            );
        }
    }
}
