//! End-to-end storage scenarios: battery dispatch, demand-charge
//! accounting, the zero-capacity byte-identity guarantee and the
//! storage-vs-shifting acceptance experiment.

use idc_core::policy::MpcPolicy;
use idc_core::scenario::{
    demand_charge_scenario, diurnal_day_scenario, peak_shaving_scenario,
    storage_peak_shaving_scenario, storage_plus_shifting_scenario,
};
use idc_core::simulation::{SimulationResult, Simulator};
use idc_storage::{BatteryUnit, StorageFleet};

fn run(scenario: &idc_core::scenario::Scenario) -> SimulationResult {
    let mut policy = MpcPolicy::paper_tuned(scenario).unwrap();
    Simulator::new().run(scenario, &mut policy).unwrap()
}

#[test]
fn storage_peak_shaving_respects_battery_physics() {
    let scenario = storage_peak_shaving_scenario();
    let result = run(&scenario);
    let fleet = scenario.storage().expect("scenario has storage");
    let ts = result.ts_hours();
    let mut any_activity = false;
    for (j, unit) in fleet.units().iter().enumerate() {
        let soc = result.soc_mwh(j).expect("storage run records SoC");
        let charge = result.battery_charge_mw(j).expect("records charge");
        let discharge = result.battery_discharge_mw(j).expect("records discharge");
        assert_eq!(soc.len(), result.times_min().len());
        for (k, &s) in soc.iter().enumerate() {
            assert!(
                (0.0..=unit.capacity_mwh + 1e-9).contains(&s),
                "IDC {j} SoC out of bounds at step {k}: {s}"
            );
            assert!(
                (0.0..=unit.max_charge_mw + 1e-9).contains(&charge[k]),
                "IDC {j} charge rate out of caps at step {k}: {}",
                charge[k]
            );
            assert!(
                (0.0..=unit.max_discharge_mw + 1e-9).contains(&discharge[k]),
                "IDC {j} discharge rate out of caps at step {k}: {}",
                discharge[k]
            );
        }
        // Battery energy conservation: the SoC trajectory must equal the
        // initial charge plus the efficiency-weighted rate integral.
        let mut expected = unit.initial_soc_mwh;
        for (k, (&c, &d)) in charge.iter().zip(discharge).enumerate() {
            expected += (unit.charge_efficiency * c - d / unit.discharge_efficiency) * ts;
            assert!(
                (soc[k] - expected).abs() < 1e-9,
                "IDC {j} SoC drifts from its own rate integral at step {k}: {} vs {expected}",
                soc[k]
            );
        }
        if charge.iter().sum::<f64>() + discharge.iter().sum::<f64>() > 0.01 {
            any_activity = true;
        }
    }
    assert!(any_activity, "no battery was ever dispatched");
    assert!(result.storage_loss_mwh().unwrap() >= 0.0);
    assert!(result.latency_ok_fraction() > 0.999);
}

#[test]
fn storage_shrinks_peak_shaving_budget_violations() {
    let base = run(&peak_shaving_scenario());
    let with_storage = run(&storage_peak_shaving_scenario());
    let budgets = [5.13, 10.26, 4.275];
    let base_viol: f64 = base.budget_violation_fractions(&budgets).iter().sum();
    let storage_viol: f64 = with_storage
        .budget_violation_fractions(&budgets)
        .iter()
        .sum();
    assert!(
        storage_viol <= base_viol + 1e-12,
        "storage made budget violations worse: {storage_viol} vs {base_viol}"
    );
}

#[test]
fn zero_capacity_storage_is_byte_identical() {
    let plain = diurnal_day_scenario(7);
    // An inert fleet normalizes away at scenario level...
    let inert = diurnal_day_scenario(7)
        .with_storage(StorageFleet::uniform(3, BatteryUnit::inert()).unwrap())
        .unwrap();
    assert!(inert.storage().is_none());
    // ...and a zero-rate (but nonzero-capacity) fleet normalizes away at
    // policy level, so both runs take the storage-free code path.
    let zero_rate = diurnal_day_scenario(7)
        .with_storage(
            StorageFleet::uniform(3, BatteryUnit::new(4.0, 0.0, 0.0, 0.95, 0.95, 2.0).unwrap())
                .unwrap(),
        )
        .unwrap();
    assert!(zero_rate.storage().is_none());

    let a = run(&plain);
    let b = run(&inert);
    let c = run(&zero_rate);
    for j in 0..3 {
        for k in 0..a.times_min().len() {
            assert_eq!(a.power_mw(j)[k].to_bits(), b.power_mw(j)[k].to_bits());
            assert_eq!(a.power_mw(j)[k].to_bits(), c.power_mw(j)[k].to_bits());
            assert_eq!(a.servers(j)[k], b.servers(j)[k]);
            assert_eq!(a.servers(j)[k], c.servers(j)[k]);
        }
    }
    for k in 0..a.times_min().len() {
        assert_eq!(
            a.cost_cumulative()[k].to_bits(),
            b.cost_cumulative()[k].to_bits()
        );
        assert_eq!(
            a.cost_cumulative()[k].to_bits(),
            c.cost_cumulative()[k].to_bits()
        );
    }
    assert!(a.soc_mwh(0).is_none());
    assert!(b.soc_mwh(0).is_none());
}

#[test]
fn demand_charge_accounting_is_consistent() {
    let result = run(&demand_charge_scenario(11));
    let dc = result
        .demand_charge_cumulative()
        .expect("tariff configured — accrual recorded");
    assert_eq!(dc.len(), result.times_min().len());
    assert!(dc.windows(2).all(|w| w[1] >= w[0]), "accrual must ratchet");
    assert!(result.total_demand_charge() > 0.0);
    // The billed peak is exactly the maximum of the recorded grid draw.
    let peaks = result.billed_peak_mw().unwrap();
    for (j, &peak) in peaks.iter().enumerate() {
        let observed = result
            .power_mw(j)
            .iter()
            .fold(0.0f64, |acc, &p| acc.max(p));
        assert!(
            (peak - observed).abs() < 1e-12,
            "IDC {j} billed peak {peak} vs observed max {observed}"
        );
    }
    assert!(
        (result.total_cost_with_demand_charges()
            - (result.total_cost() + result.total_demand_charge()))
        .abs()
            < 1e-9
    );
    // No battery in this scenario: rate series are absent.
    assert!(result.soc_mwh(0).is_none());
}

/// The acceptance experiment: on the demand-charge diurnal day, storage
/// plus shifting must beat shifting alone on total cost (energy plus the
/// separately-reported demand-charge component).
#[test]
fn storage_plus_shifting_beats_shifting_alone() {
    let shifting = run(&demand_charge_scenario(11));
    let storage = run(&storage_plus_shifting_scenario(11));
    assert!(storage.total_demand_charge() > 0.0);
    assert!(
        storage.total_cost_with_demand_charges() < shifting.total_cost_with_demand_charges(),
        "storage {} !< shifting alone {} (energy {} + demand {} vs energy {} + demand {})",
        storage.total_cost_with_demand_charges(),
        shifting.total_cost_with_demand_charges(),
        storage.total_cost(),
        storage.total_demand_charge(),
        shifting.total_cost(),
        shifting.total_demand_charge()
    );
    // The battery must also not degrade service.
    assert!(storage.latency_ok_fraction() > 0.999);
}
