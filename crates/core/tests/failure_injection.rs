//! Failure injection: the simulator must reject misbehaving policies, and
//! the MPC policy must survive hostile conditions via its fallbacks.

use idc_core::policy::{
    Decision, MpcPolicy, OptimalPolicy, Policy, ReferenceKind, StaticProportionalPolicy,
    StepContext,
};
use idc_core::scenario::smoothing_scenario;
use idc_core::simulation::Simulator;
use idc_core::Error;
use idc_datacenter::allocation::Allocation;

/// A policy that silently drops half the workload.
struct WorkloadLoser;

impl Policy for WorkloadLoser {
    fn name(&self) -> &str {
        "workload-loser"
    }

    fn decide(&mut self, ctx: &StepContext<'_>) -> idc_core::Result<Decision> {
        let mut allocation = Allocation::zeros(ctx.offered.len(), ctx.idcs.len());
        for (i, &l) in ctx.offered.iter().enumerate() {
            allocation.set(i, 0, l * 0.5); // half vanishes
        }
        Ok(Decision {
            servers_on: vec![ctx.idcs[0].total_servers(); ctx.idcs.len()],
            allocation,
            charge_mw: Vec::new(),
            discharge_mw: Vec::new(),
        })
    }
}

/// A policy that returns the wrong number of IDCs.
struct WrongDimensions;

impl Policy for WrongDimensions {
    fn name(&self) -> &str {
        "wrong-dimensions"
    }

    fn decide(&mut self, ctx: &StepContext<'_>) -> idc_core::Result<Decision> {
        Ok(Decision {
            servers_on: vec![1], // fleet has 3 IDCs
            allocation: Allocation::zeros(ctx.offered.len(), 1),
            charge_mw: Vec::new(),
            discharge_mw: Vec::new(),
        })
    }
}

/// A policy that fails outright.
struct Failing;

impl Policy for Failing {
    fn name(&self) -> &str {
        "failing"
    }

    fn decide(&mut self, _ctx: &StepContext<'_>) -> idc_core::Result<Decision> {
        Err(Error::Config("injected failure".into()))
    }
}

#[test]
fn simulator_rejects_lost_workload() {
    let scenario = smoothing_scenario();
    let err = Simulator::new()
        .run(&scenario, &mut WorkloadLoser)
        .unwrap_err();
    match err {
        Error::Config(msg) => assert!(msg.contains("lost workload"), "{msg}"),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn simulator_rejects_wrong_dimensions() {
    let scenario = smoothing_scenario();
    let err = Simulator::new()
        .run(&scenario, &mut WrongDimensions)
        .unwrap_err();
    match err {
        Error::Config(msg) => assert!(msg.contains("wrong dimensions"), "{msg}"),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn policy_errors_propagate() {
    let scenario = smoothing_scenario();
    let err = Simulator::new().run(&scenario, &mut Failing).unwrap_err();
    assert!(matches!(err, Error::Config(msg) if msg.contains("injected failure")));
}

#[test]
fn static_policy_serves_everything_at_higher_cost() {
    let scenario = smoothing_scenario();
    let sim = Simulator::new();
    let stat = sim
        .run(&scenario, &mut StaticProportionalPolicy::new())
        .unwrap();
    let opt = sim
        .run(&scenario, &mut OptimalPolicy::new(ReferenceKind::LpOptimal))
        .unwrap();
    assert!(stat.latency_ok_fraction() > 0.999);
    // Price-blind placement costs more than the LP optimum.
    assert!(
        stat.total_cost() > opt.total_cost(),
        "static {} !> lp {}",
        stat.total_cost(),
        opt.total_cost()
    );
    // And is perfectly flat (it ignores prices entirely).
    for j in 0..3 {
        assert_eq!(stat.power_stats(j).unwrap().mean_abs_step_mw, 0.0);
    }
}

/// A workload surge beyond the MPC's ramped capacity exercises the
/// emergency capacity override rather than failing.
#[test]
fn mpc_survives_a_workload_surge() {
    use idc_core::scenario::{PricingSpec, Scenario};
    use idc_market::rtp::TracePricing;

    // Build a scenario whose base load is near capacity; noise pushes over.
    let fleet = idc_core::config::paper_fleet_calibrated();
    let pricing = PricingSpec::Trace(TracePricing::new(idc_core::config::paper_price_traces()));
    let scenario = Scenario::new("surge", fleet, pricing, 6.9, 0.25, 1.0 / 120.0)
        .unwrap()
        .with_init_hour(6.5)
        .with_workload_noise(0.10, 99);
    let mut policy = MpcPolicy::paper_tuned(&scenario).unwrap();
    let result = Simulator::new().run(&scenario, &mut policy).unwrap();
    // Everything admitted was served within bounds.
    assert!(result.latency_ok_fraction() > 0.99);
}
