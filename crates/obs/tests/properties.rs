//! Property-based tests for the flight recorder and trace exporter.
//!
//! Each test binds a private recorder to the test thread
//! ([`bind_thread_recorder`]) so that parallel test threads — and any
//! process-global recorder another test may have installed — cannot leak
//! spans into each other's snapshots.

use std::sync::Arc;

use idc_obs::{bind_thread_recorder, chrome_trace, span_depth, FlightRecorder, Span};
use proptest::prelude::*;

/// Walks `shape`, opening one span per element and recursing one level
/// deeper on nonzero entries; checks the depth counter on entry and exit
/// of every level.
fn nest(shape: &[u32], depth: u32) {
    assert_eq!(span_depth(), depth);
    let Some((&go_deeper, rest)) = shape.split_first() else {
        return;
    };
    let span = Span::enter(format!("span.d{depth}"));
    assert!(span.is_recording());
    if go_deeper == 1 {
        nest(rest, depth + 1);
    } else {
        // Two sequential siblings at this level instead of a child.
        drop(Span::enter("leaf.a"));
        drop(Span::enter("leaf.b"));
    }
    drop(span);
    assert_eq!(span_depth(), depth);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary open/close sequences leave the thread-local span stack
    /// balanced: the depth counter returns to zero, a child that starts
    /// inside a parent's window ends inside it, and same-depth spans on
    /// one thread never overlap.
    #[test]
    fn span_nesting_stays_balanced(shape in prop::collection::vec(0u32..2, 1..24)) {
        let recorder = Arc::new(FlightRecorder::new(256));
        bind_thread_recorder(Some(Arc::clone(&recorder)));
        nest(&shape, 0);
        bind_thread_recorder(None);
        prop_assert_eq!(span_depth(), 0);

        let events = recorder.snapshot();
        prop_assert!(!events.is_empty());
        for a in &events {
            for b in &events {
                if b.depth == a.depth + 1
                    && b.start_ns >= a.start_ns
                    && b.start_ns <= a.start_ns + a.dur_ns
                {
                    prop_assert!(b.start_ns + b.dur_ns <= a.start_ns + a.dur_ns);
                }
                if a.depth == b.depth && a.start_ns < b.start_ns {
                    prop_assert!(a.start_ns + a.dur_ns <= b.start_ns);
                }
            }
        }
    }

    /// The Chrome trace export of any recorded span set is valid JSON with
    /// the trace-event envelope, one complete ("X") event per span, and
    /// monotonically non-decreasing `ts` values.
    #[test]
    fn chrome_trace_is_valid_json_with_monotonic_ts(
        shape in prop::collection::vec(0u32..2, 1..24),
        capacity in 4usize..64,
    ) {
        let recorder = Arc::new(FlightRecorder::new(capacity));
        bind_thread_recorder(Some(Arc::clone(&recorder)));
        nest(&shape, 0);
        bind_thread_recorder(None);

        let events = recorder.snapshot();
        prop_assert!(events.len() <= capacity);
        let json = chrome_trace(&events);
        let doc: serde::Value = serde_json::from_str(&json).expect("trace must be valid JSON");
        let Some(serde::Value::Array(out)) = doc.get("traceEvents") else {
            panic!("missing traceEvents array in {json}");
        };
        prop_assert_eq!(out.len(), events.len());
        let mut prev_ts = f64::NEG_INFINITY;
        for event in out {
            let Some(serde::Value::String(ph)) = event.get("ph") else {
                panic!("missing ph in {event:?}");
            };
            prop_assert_eq!(ph, "X");
            let Some(serde::Value::Number(ts)) = event.get("ts") else {
                panic!("missing ts in {event:?}");
            };
            prop_assert!(*ts >= prev_ts, "ts went backwards: {} < {}", ts, prev_ts);
            prev_ts = *ts;
            let Some(serde::Value::Number(dur)) = event.get("dur") else {
                panic!("missing dur in {event:?}");
            };
            prop_assert!(*dur >= 0.0);
        }
    }
}
