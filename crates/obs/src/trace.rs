//! Chrome trace-event JSON export (Perfetto / `chrome://tracing` format).
//!
//! Events are emitted as complete (`"ph":"X"`) events with microsecond
//! timestamps, wrapped in `{"traceEvents":[...]}` — the JSON object form
//! both viewers accept. Rendering is hand-rolled (std-only crate); names
//! are JSON-escaped and timestamps come pre-sorted from
//! [`FlightRecorder::snapshot`], so `ts` is monotonically non-decreasing.

use crate::recorder::{global_recorder, TraceEvent};

/// Escapes `s` for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_us(out: &mut String, ns: u64) {
    // Microseconds with fixed millinanosecond precision; trailing zeros are
    // harmless and keep the rendering allocation-light and locale-free.
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Renders `events` as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(&escape_json(&e.name));
        out.push_str("\",\"cat\":\"");
        out.push_str(&escape_json(e.cat));
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_us(&mut out, e.start_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, e.dur_ns);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"args\":{\"depth\":");
        out.push_str(&e.depth.to_string());
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders the global flight recorder as a Chrome trace. Returns a valid
/// empty trace (`{"traceEvents":[]}` shape) when no recorder is installed,
/// so HTTP handlers can call this unconditionally.
pub fn export_global_trace() -> String {
    match global_recorder() {
        Some(rec) => chrome_trace(&rec.snapshot()),
        None => chrome_trace(&[]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(name: &str, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Owned(name.to_string()),
            cat: "test",
            start_ns,
            dur_ns,
            tid: 1,
            depth: 0,
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn events_render_with_microsecond_timestamps() {
        let trace = chrome_trace(&[ev("a", 1_500, 2_000), ev("b\"x", 3_500, 10)]);
        assert!(trace
            .contains("\"name\":\"a\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.000"));
        assert!(trace.contains("\"name\":\"b\\\"x\""));
        assert!(trace.contains("\"ts\":3.500"));
    }
}
