//! Per-step JSONL anomaly dumps.
//!
//! A process-global, line-oriented sink for the moments worth keeping when
//! something goes sideways: solver failures, fallback degradations,
//! iteration-count spikes. Each record is one JSON object per line —
//! trivially greppable and `jq`-able, and cheap enough to leave wired in
//! (disabled, every call is a single relaxed atomic load).
//!
//! The sink is opt-in via [`set_anomaly_log`]; nothing is ever written (and
//! no clock is read) unless a path was configured, so fault-free golden
//! runs are untouched.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::recorder::now_ns;
use crate::trace::escape_json;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<File>> = Mutex::new(None);

thread_local! {
    static TENANT: std::cell::RefCell<Option<String>> = const { std::cell::RefCell::new(None) };
}

/// Tags every [`record_anomaly`] call made *from this thread* with
/// `"tenant":"<id>"` until the returned guard drops. A multi-tenant host
/// steps many control loops on shared worker threads, so the tenant in
/// scope is a property of the thread's current slice of work, not of the
/// process; thread-local scoping keeps records attributed without
/// threading an id through every solver-level call site.
pub fn tenant_scope(id: &str) -> TenantScope {
    let prev = TENANT.with(|t| t.borrow_mut().replace(id.to_string()));
    TenantScope { prev }
}

/// Restores the previous (usually empty) tenant tag on drop. Returned by
/// [`tenant_scope`]; scopes nest.
#[must_use = "the tenant tag is cleared when this guard drops"]
pub struct TenantScope {
    prev: Option<String>,
}

impl Drop for TenantScope {
    fn drop(&mut self) {
        TENANT.with(|t| *t.borrow_mut() = self.prev.take());
    }
}

/// Opens (creating or truncating) `path` as the process-global anomaly log
/// and enables [`record_anomaly`].
///
/// # Errors
///
/// Propagates the underlying [`std::io::Error`] when the file cannot be
/// created.
pub fn set_anomaly_log(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("anomaly sink mutex") = Some(file);
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Whether an anomaly log is configured. Callers with non-trivial detail
/// assembly should check this first and skip the work when disabled.
pub fn anomaly_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Appends one JSONL record: `kind`, the control `step` it happened at, a
/// monotonic `ts_ns`, and flat numeric `fields`. No-op unless
/// [`set_anomaly_log`] was called. Non-finite field values are rendered as
/// `null` (JSON has no NaN/Inf).
pub fn record_anomaly(kind: &str, step: u64, fields: &[(&str, f64)]) {
    if !anomaly_enabled() {
        return;
    }
    let mut line = String::with_capacity(96 + fields.len() * 24);
    line.push_str("{\"kind\":\"");
    line.push_str(&escape_json(kind));
    line.push_str(&format!("\",\"step\":{step},\"ts_ns\":{}", now_ns()));
    TENANT.with(|t| {
        if let Some(id) = t.borrow().as_deref() {
            line.push_str(",\"tenant\":\"");
            line.push_str(&escape_json(id));
            line.push('"');
        }
    });
    for (key, value) in fields {
        line.push_str(",\"");
        line.push_str(&escape_json(key));
        line.push_str("\":");
        if value.is_finite() {
            line.push_str(&format!("{value}"));
        } else {
            line.push_str("null");
        }
    }
    line.push_str("}\n");
    let mut sink = SINK.lock().expect("anomaly sink mutex");
    if let Some(file) = sink.as_mut() {
        // A full disk must not take down the control loop; drop the record.
        let _ = file.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_noop() {
        // Must not panic or create files as a side effect.
        record_anomaly("qp_infeasible", 3, &[("iterations", 12.0)]);
    }

    fn current_tenant() -> Option<String> {
        TENANT.with(|t| t.borrow().clone())
    }

    #[test]
    fn tenant_scopes_nest_and_unwind() {
        assert_eq!(current_tenant(), None);
        {
            let _outer = tenant_scope("t-007");
            assert_eq!(current_tenant().as_deref(), Some("t-007"));
            {
                let _inner = tenant_scope("t-042");
                assert_eq!(current_tenant().as_deref(), Some("t-042"));
            }
            assert_eq!(current_tenant().as_deref(), Some("t-007"));
        }
        assert_eq!(current_tenant(), None);
    }

    #[test]
    fn tenant_tag_is_per_thread() {
        let _scope = tenant_scope("t-main");
        std::thread::spawn(|| assert_eq!(current_tenant(), None))
            .join()
            .expect("spawned thread");
    }
}
