//! Cumulative introspection counters for the active-set QP solver.

/// Counters collected by the shared primal active-set loop and its two
/// backends (condensed dense and banded Riccati).
///
/// All fields are cumulative over however many solves were merged in —
/// [`merge`](Self::merge) is associative, so a controller can accumulate
/// per-solve stats into a running total and a caller can subtract
/// checkpoints with [`since`](Self::since) to get per-step deltas.
///
/// Semantics of each counter (see DESIGN §9 for the full taxonomy):
///
/// * `solves` — number of active-set solves merged in (warm and cold).
/// * `iterations` — active-set iterations, summed over solves.
/// * `constraints_added` — inequality constraints activated by a blocking
///   ratio test (`working.push`).
/// * `constraints_dropped` — constraints deactivated on a negative
///   multiplier (Dantzig or Bland rule).
/// * `degenerate_pops` — constraints popped after a singular KKT
///   factorization, the numerical-degeneracy recovery path.
/// * `bland_switches` — times the pivot rule switched from Dantzig's most
///   negative multiplier to Bland's smallest index after the degeneracy
///   patience ran out (transitions, not Bland-rule drops).
/// * `seed_offered` / `seed_accepted` — warm-start seed constraints offered
///   to and accepted by the seeding filter; their ratio is the
///   [`seed_survival`](Self::seed_survival) fraction.
/// * `refinement_passes` — iterative-refinement passes performed inside KKT
///   solves.
/// * `cold_fallbacks` — solves where a warm start was attempted and failed,
///   forcing a cold re-solve (counted by the controller, not the loop).
/// * `refactorizations` — full rebuilds of the working-set factor, either
///   at solve start, after a stability trigger (large refinement
///   correction), or forced by fault injection.
/// * `updates_applied` / `downdates_applied` — incremental rows appended
///   to / removed from the working-set Cholesky factor in place of a fresh
///   factorization.
/// * `working_set_delta` — symmetric difference between the seeded initial
///   working set and the converged final one, summed over solves; per-solve
///   this is the gauge of how much the active set actually moved.
/// * `outer_iterations` — consensus-ADMM coordinator rounds (sharded backend
///   only; zero for monolithic solves), summed over steps.
/// * `consensus_residual_nano` — final relative consensus primal residual of
///   each sharded step, in nano-units (`round(residual · 1e9)`), summed over
///   steps; a per-step delta (via [`since`](Self::since)) recovers the
///   step's own stopping residual.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Active-set solves merged into this total.
    pub solves: u64,
    /// Active-set iterations across all solves.
    pub iterations: u64,
    /// Constraints activated by blocking ratio tests.
    pub constraints_added: u64,
    /// Constraints deactivated on negative multipliers.
    pub constraints_dropped: u64,
    /// Constraints popped on singular KKT factorizations.
    pub degenerate_pops: u64,
    /// Dantzig→Bland pivot-rule switches.
    pub bland_switches: u64,
    /// Warm-start seed constraints offered to the seeding filter.
    pub seed_offered: u64,
    /// Warm-start seed constraints accepted as the initial working set.
    pub seed_accepted: u64,
    /// Iterative-refinement passes inside KKT solves.
    pub refinement_passes: u64,
    /// Warm-start attempts that failed and fell back to a cold solve.
    pub cold_fallbacks: u64,
    /// Full working-set factor rebuilds (start-of-solve, stability, forced).
    pub refactorizations: u64,
    /// Incremental factor rows appended on constraint adds.
    pub updates_applied: u64,
    /// Incremental factor rows removed on constraint drops/pops.
    pub downdates_applied: u64,
    /// Symmetric difference between seeded and converged working sets.
    pub working_set_delta: u64,
    /// Consensus-ADMM coordinator rounds (sharded backend only).
    pub outer_iterations: u64,
    /// Final relative consensus primal residual per step, in nano-units.
    pub consensus_residual_nano: u64,
}

impl SolveStats {
    /// Field-wise accumulation of `other` into `self`.
    pub fn merge(&mut self, other: &SolveStats) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.constraints_added += other.constraints_added;
        self.constraints_dropped += other.constraints_dropped;
        self.degenerate_pops += other.degenerate_pops;
        self.bland_switches += other.bland_switches;
        self.seed_offered += other.seed_offered;
        self.seed_accepted += other.seed_accepted;
        self.refinement_passes += other.refinement_passes;
        self.cold_fallbacks += other.cold_fallbacks;
        self.refactorizations += other.refactorizations;
        self.updates_applied += other.updates_applied;
        self.downdates_applied += other.downdates_applied;
        self.working_set_delta += other.working_set_delta;
        self.outer_iterations += other.outer_iterations;
        self.consensus_residual_nano += other.consensus_residual_nano;
    }

    /// Field-wise saturating difference `self - earlier`, for per-step
    /// deltas between two cumulative checkpoints.
    pub fn since(&self, earlier: &SolveStats) -> SolveStats {
        SolveStats {
            solves: self.solves.saturating_sub(earlier.solves),
            iterations: self.iterations.saturating_sub(earlier.iterations),
            constraints_added: self
                .constraints_added
                .saturating_sub(earlier.constraints_added),
            constraints_dropped: self
                .constraints_dropped
                .saturating_sub(earlier.constraints_dropped),
            degenerate_pops: self.degenerate_pops.saturating_sub(earlier.degenerate_pops),
            bland_switches: self.bland_switches.saturating_sub(earlier.bland_switches),
            seed_offered: self.seed_offered.saturating_sub(earlier.seed_offered),
            seed_accepted: self.seed_accepted.saturating_sub(earlier.seed_accepted),
            refinement_passes: self
                .refinement_passes
                .saturating_sub(earlier.refinement_passes),
            cold_fallbacks: self.cold_fallbacks.saturating_sub(earlier.cold_fallbacks),
            refactorizations: self
                .refactorizations
                .saturating_sub(earlier.refactorizations),
            updates_applied: self.updates_applied.saturating_sub(earlier.updates_applied),
            downdates_applied: self
                .downdates_applied
                .saturating_sub(earlier.downdates_applied),
            working_set_delta: self
                .working_set_delta
                .saturating_sub(earlier.working_set_delta),
            outer_iterations: self
                .outer_iterations
                .saturating_sub(earlier.outer_iterations),
            consensus_residual_nano: self
                .consensus_residual_nano
                .saturating_sub(earlier.consensus_residual_nano),
        }
    }

    /// Total working-set churn: adds + drops + degenerate pops.
    pub fn working_set_churn(&self) -> u64 {
        self.constraints_added + self.constraints_dropped + self.degenerate_pops
    }

    /// Fraction of offered warm-seed constraints that survived the seeding
    /// filter, in `[0, 1]`. Defined as 1 when nothing was offered (an empty
    /// seed "survives" trivially — cold solves do not dilute the ratio).
    pub fn seed_survival(&self) -> f64 {
        if self.seed_offered == 0 {
            1.0
        } else {
            self.seed_accepted as f64 / self.seed_offered as f64
        }
    }

    /// Mean active-set iterations per solve (0 when no solves recorded).
    pub fn iterations_per_solve(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.iterations as f64 / self.solves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_since_are_inverse() {
        let a = SolveStats {
            solves: 2,
            iterations: 10,
            constraints_added: 4,
            constraints_dropped: 1,
            degenerate_pops: 1,
            bland_switches: 1,
            seed_offered: 6,
            seed_accepted: 5,
            refinement_passes: 10,
            cold_fallbacks: 1,
            refactorizations: 2,
            updates_applied: 7,
            downdates_applied: 3,
            working_set_delta: 5,
            outer_iterations: 4,
            consensus_residual_nano: 12,
        };
        let b = SolveStats {
            solves: 1,
            iterations: 3,
            seed_offered: 2,
            seed_accepted: 2,
            refactorizations: 1,
            updates_applied: 4,
            ..SolveStats::default()
        };
        let mut total = a;
        total.merge(&b);
        assert_eq!(total.since(&a), b);
        assert_eq!(total.since(&b), a);
        assert_eq!(total.working_set_churn(), 6);
        assert_eq!(total.iterations, 13);
    }

    #[test]
    fn seed_survival_handles_empty_seed() {
        assert_eq!(SolveStats::default().seed_survival(), 1.0);
        let s = SolveStats {
            seed_offered: 4,
            seed_accepted: 3,
            ..SolveStats::default()
        };
        assert_eq!(s.seed_survival(), 0.75);
    }

    #[test]
    fn iterations_per_solve_handles_zero() {
        assert_eq!(SolveStats::default().iterations_per_solve(), 0.0);
        let s = SolveStats {
            solves: 4,
            iterations: 10,
            ..SolveStats::default()
        };
        assert_eq!(s.iterations_per_solve(), 2.5);
    }
}
