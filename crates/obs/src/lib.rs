//! Std-only observability layer for the idc-mpc workspace.
//!
//! Three pieces, all disabled by default and all safe to leave compiled in:
//!
//! * **Spans + flight recorder** ([`Span`], [`FlightRecorder`]): RAII spans
//!   with a thread-local nesting stack and a monotonic clock, recorded into
//!   a fixed-capacity ring buffer. When no recorder is installed the span
//!   constructor returns an inert guard without reading the clock, so
//!   instrumented code pays one relaxed atomic load per span and nothing
//!   else — fault-free runs stay byte-identical because nothing here feeds
//!   back into control decisions.
//! * **Solver introspection counters** ([`SolveStats`]): cumulative
//!   counters threaded through the active-set QP loop (iterations,
//!   working-set churn, warm-seed survival, Dantzig→Bland switches,
//!   refinement passes, cold fallbacks). Pure bookkeeping on `u64`s; no
//!   floating-point state is touched.
//! * **Exporters**: Chrome trace-event JSON ([`chrome_trace`],
//!   [`export_global_trace`]) that loads in Perfetto / `chrome://tracing`,
//!   and a JSONL anomaly log ([`record_anomaly`]) for per-step dumps around
//!   solver failures, fallback degradations and iteration spikes.
//!
//! The crate is std-only by design: the build environment vendors no
//! tracing or metrics crates, and the rest of the workspace must not grow
//! external dependencies through it.

#![warn(missing_docs)]

pub mod anomaly;
pub mod recorder;
pub mod stats;
pub mod trace;

pub use anomaly::{anomaly_enabled, record_anomaly, set_anomaly_log, tenant_scope, TenantScope};
pub use recorder::{
    bind_thread_recorder, global_recorder, install_global_recorder, now_ns, span_depth,
    tracing_enabled, FlightRecorder, Span, TraceEvent,
};
pub use stats::SolveStats;
pub use trace::{chrome_trace, export_global_trace};
