//! Hierarchical spans and the fixed-capacity flight recorder.
//!
//! A [`Span`] is an RAII guard: entering pushes one level onto a
//! thread-local depth stack and samples the monotonic clock; dropping pops
//! the level and records one complete [`TraceEvent`] into whichever
//! recorder is active. Two sinks exist:
//!
//! * a process-global recorder installed once with
//!   [`install_global_recorder`] (what the daemon and CLI tools use), and
//! * an optional thread-local recorder bound with [`bind_thread_recorder`]
//!   (what tests use so parallel test threads do not see each other's
//!   events). The thread-local binding wins when both are set.
//!
//! When neither sink is active, [`Span::enter`] returns an inert guard:
//! no clock read, no allocation, no depth bookkeeping — one relaxed atomic
//! load plus one thread-local flag check. That is the "negligible overhead
//! when disabled" contract the runtime's byte-identity tests rely on.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed span, timestamped in nanoseconds since the process-local
/// recorder epoch (a monotonic clock, not wall time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, e.g. `mpc.solve` or `cell.price_spike`.
    pub name: Cow<'static, str>,
    /// Coarse category for trace-viewer filtering, e.g. `solver`, `runtime`.
    pub cat: &'static str,
    /// Start of the span, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u32,
}

/// Nanoseconds since the process-local monotonic epoch (first call wins).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|tid| {
        if tid.get() == 0 {
            tid.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        tid.get()
    })
}

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Fixed-capacity ring buffer of completed spans. When full, the oldest
/// event is evicted and counted in [`dropped`](Self::dropped) — the
/// recorder always holds the most recent window, which is what you want
/// when dumping a trace after something went wrong.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("events", &self.events.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Appends `event`, evicting the oldest when at capacity.
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.inner.lock().expect("recorder mutex");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// A copy of the buffered events sorted by start time (stable across
    /// threads, so exported `ts` values are monotonically non-decreasing).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.inner.lock().expect("recorder mutex");
        let mut events: Vec<TraceEvent> = ring.events.iter().cloned().collect();
        events.sort_by_key(|e| (e.start_ns, e.tid, e.depth));
        events
    }

    /// Discards all buffered events (the dropped counter is kept).
    pub fn clear(&self) {
        self.inner.lock().expect("recorder mutex").events.clear();
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder mutex").events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder mutex").dropped
    }
}

static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static LOCAL_SINK: RefCell<Option<Arc<FlightRecorder>>> = const { RefCell::new(None) };
    static LOCAL_BOUND: Cell<bool> = const { Cell::new(false) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Installs (or returns the already-installed) process-global flight
/// recorder and enables global span recording. The capacity of the first
/// call wins; later calls return the existing recorder.
pub fn install_global_recorder(capacity: usize) -> Arc<FlightRecorder> {
    let rec = GLOBAL.get_or_init(|| Arc::new(FlightRecorder::new(capacity)));
    GLOBAL_ENABLED.store(true, Ordering::SeqCst);
    Arc::clone(rec)
}

/// The global recorder, if one was installed.
pub fn global_recorder() -> Option<Arc<FlightRecorder>> {
    if GLOBAL_ENABLED.load(Ordering::Relaxed) {
        GLOBAL.get().cloned()
    } else {
        None
    }
}

/// Whether any global recorder is installed (thread-local bindings are not
/// reflected here).
pub fn tracing_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Binds (or with `None` unbinds) a recorder for the current thread only.
/// A bound thread-local recorder takes precedence over the global one;
/// tests use this to observe spans without cross-test interference.
pub fn bind_thread_recorder(recorder: Option<Arc<FlightRecorder>>) {
    LOCAL_BOUND.with(|b| b.set(recorder.is_some()));
    LOCAL_SINK.with(|sink| *sink.borrow_mut() = recorder);
}

fn current_sink() -> Option<Arc<FlightRecorder>> {
    if LOCAL_BOUND.with(|b| b.get()) {
        LOCAL_SINK.with(|sink| sink.borrow().clone())
    } else {
        global_recorder()
    }
}

/// Current span nesting depth on this thread (0 outside any live span).
pub fn span_depth() -> u32 {
    DEPTH.with(|d| d.get())
}

struct ActiveSpan {
    recorder: Arc<FlightRecorder>,
    name: Cow<'static, str>,
    cat: &'static str,
    start_ns: u64,
    depth: u32,
}

/// RAII span guard. Construct with [`Span::enter`]; the span closes and is
/// recorded when the guard drops. Inert (zero bookkeeping) when no
/// recorder is active.
#[must_use = "a span records on drop; binding it to _ closes it immediately"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Opens a span in the default `app` category.
    pub fn enter(name: impl Into<Cow<'static, str>>) -> Span {
        Span::enter_cat(name, "app")
    }

    /// Opens a span with an explicit category.
    pub fn enter_cat(name: impl Into<Cow<'static, str>>, cat: &'static str) -> Span {
        match current_sink() {
            None => Span(None),
            Some(recorder) => {
                let depth = DEPTH.with(|d| {
                    let depth = d.get();
                    d.set(depth + 1);
                    depth
                });
                Span(Some(ActiveSpan {
                    recorder,
                    name: name.into(),
                    cat,
                    start_ns: now_ns(),
                    depth,
                }))
            }
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let end_ns = now_ns();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            active.recorder.record(TraceEvent {
                name: active.name,
                cat: active.cat,
                start_ns: active.start_ns,
                dur_ns: end_ns.saturating_sub(active.start_ns),
                tid: thread_id(),
                depth: active.depth,
            });
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Span(inert)"),
            Some(a) => f
                .debug_struct("Span")
                .field("name", &a.name)
                .field("depth", &a.depth)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_span_without_any_recorder() {
        bind_thread_recorder(None);
        // LOCAL_BOUND is false here, but the global may have been installed
        // by a sibling test; bind an explicit throwaway local to isolate.
        let rec = Arc::new(FlightRecorder::new(4));
        bind_thread_recorder(Some(Arc::clone(&rec)));
        bind_thread_recorder(None);
        // With LOCAL_BOUND unset this thread falls back to the global; we
        // cannot assert global state here, so only check depth neutrality.
        let before = span_depth();
        {
            let _s = Span::enter("noop");
        }
        assert_eq!(span_depth(), before);
        let _ = rec;
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let rec = Arc::new(FlightRecorder::new(16));
        bind_thread_recorder(Some(Arc::clone(&rec)));
        {
            let _outer = Span::enter_cat("outer", "test");
            assert_eq!(span_depth(), 1);
            {
                let _inner = Span::enter_cat("inner", "test");
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 1);
        }
        bind_thread_recorder(None);
        assert_eq!(span_depth(), 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        // Inner closed first but outer started first.
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].depth, 1);
        assert!(events[1].start_ns >= events[0].start_ns);
        assert!(events[0].dur_ns >= events[1].dur_ns);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.record(TraceEvent {
                name: Cow::Owned(format!("e{i}")),
                cat: "test",
                start_ns: i,
                dur_ns: 1,
                tid: 1,
                depth: 0,
            });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let names: Vec<_> = rec.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e3", "e4"]);
    }
}
