//! Property-based tests for workload models and prediction.

use idc_timeseries::ar::ArModel;
use idc_timeseries::metrics;
use idc_timeseries::predictor::WorkloadPredictor;
use idc_timeseries::rls::RecursiveLeastSquares;
use idc_timeseries::traces::DiurnalTrace;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RLS with λ = 1 recovers an arbitrary linear system from rich data.
    #[test]
    fn rls_recovers_true_coefficients(
        truth in prop::collection::vec(-3.0f64..3.0, 3),
    ) {
        let mut rls = RecursiveLeastSquares::new(3, 1.0);
        for t in 0..300 {
            let x = [
                (t as f64 * 0.37).sin(),
                (t as f64 * 0.13).cos(),
                1.0,
            ];
            let y: f64 = truth.iter().zip(&x).map(|(a, b)| a * b).sum();
            rls.update(&x, y);
        }
        for (est, tru) in rls.coefficients().iter().zip(&truth) {
            prop_assert!((est - tru).abs() < 1e-4, "{est} vs {tru}");
        }
    }

    /// Contractive AR processes driven by bounded noise stay bounded by the
    /// geometric-series bound `max_noise / (1 − Σ|α|)` (plus initial decay).
    #[test]
    fn contractive_ar_is_bounded(
        a1 in -0.45f64..0.45,
        a2 in -0.45f64..0.45,
        seed in 0u64..1000,
    ) {
        let m = ArModel::new(vec![a1, a2], 0.5).unwrap();
        prop_assert!(m.is_contractive());
        let mut rng = StdRng::seed_from_u64(seed);
        let path = m.simulate(&mut rng, &[1.0, 1.0], 2000);
        let max = path.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        // 0.5σ noise, |α| sum < 0.9 → loose bound of 100 catches divergence.
        prop_assert!(max < 100.0, "max {max}");
    }

    /// The predictor's one-step error on a noiseless AR(2) process goes to
    /// zero: RLS identifies the process exactly.
    #[test]
    fn predictor_identifies_noiseless_ar(
        a1 in 0.1f64..0.6,
        a2 in -0.3f64..0.3,
    ) {
        let m = ArModel::new(vec![a1, a2], 0.0).unwrap();
        let mut p = WorkloadPredictor::with_forgetting(2, 1.0).unwrap();
        let mut history = vec![100.0, 90.0];
        let mut last_errors = Vec::new();
        for t in 0..120 {
            let v = m.predict(&history) + 10.0; // +10 keeps it from decaying to 0
            history.push(v);
            let e = p.observe(v);
            if t > 100 {
                last_errors.push(e.abs());
            }
        }
        let tail = metrics::mean(&last_errors);
        prop_assert!(tail < 1.0, "tail error {tail}");
    }

    /// Generated diurnal traces are non-negative and deterministic per seed.
    #[test]
    fn traces_nonnegative_and_reproducible(
        base in 0.0f64..2000.0,
        amp in 0.0f64..1000.0,
        noise in 0.0f64..300.0,
        seed in 0u64..100,
    ) {
        let t = DiurnalTrace::new(base).amplitude(amp).noise_std(noise);
        let a = t.generate(&mut StdRng::seed_from_u64(seed), 200, 60.0);
        let b = t.generate(&mut StdRng::seed_from_u64(seed), 200, 60.0);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&v| v >= 0.0));
    }

    /// MAPE and RMSE are zero iff prediction equals actual (on clean data).
    #[test]
    fn metrics_zero_iff_equal(xs in prop::collection::vec(1.0f64..100.0, 1..20)) {
        prop_assert_eq!(metrics::rmse(&xs, &xs), 0.0);
        prop_assert_eq!(metrics::mape(&xs, &xs, 0.5), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|v| v + 1.0).collect();
        prop_assert!(metrics::rmse(&xs, &shifted) > 0.0);
    }

    /// The RLS-fitted AR(2) predictor converges to the *generating*
    /// coefficients on a synthetic stationary (contractive) series — not
    /// just to small prediction error, which weaker models also achieve.
    #[test]
    fn fitted_ar_converges_to_generating_coefficients(
        a1 in 0.2f64..0.55,
        a2 in -0.3f64..0.3,
        seed in 0u64..500,
    ) {
        let model = ArModel::new(vec![a1, a2], 1.0).unwrap();
        prop_assert!(model.is_contractive());
        let mut rng = StdRng::seed_from_u64(seed);
        let path = model.simulate(&mut rng, &[0.0, 0.0], 4000);
        let mut p = WorkloadPredictor::with_forgetting(2, 1.0).unwrap();
        for &v in &path {
            let e = p.observe(v);
            prop_assert!(e.is_finite());
        }
        let est = p.coefficients();
        // OLS on an AR process is consistent; 4000 noisy samples put the
        // estimate within a few percent of the truth.
        prop_assert!((est[0] - a1).abs() < 0.08, "α̂₁ {} vs {a1}", est[0]);
        prop_assert!((est[1] - a2).abs() < 0.08, "α̂₂ {} vs {a2}", est[1]);
    }

    /// On a constant input the predictor stays finite (no NaN/∞ anywhere:
    /// errors, coefficients, forecasts) and learns the constant.
    #[test]
    fn predictor_is_finite_on_constant_input(
        level in 0.0f64..1.0e6,
        order in 1usize..5,
    ) {
        let mut p = WorkloadPredictor::new(order).unwrap();
        for _ in 0..200 {
            let e = p.observe(level);
            prop_assert!(e.is_finite());
        }
        prop_assert!(p.coefficients().iter().all(|c| c.is_finite()));
        let next = p.predict_next();
        prop_assert!(next.is_finite());
        prop_assert!((next - level).abs() <= 0.01 * level.max(1.0), "{next} vs {level}");
        for v in p.forecast(10) {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    /// An impulse (a single spike in an otherwise flat series) must not
    /// destabilize the estimator: every error, coefficient and forecast
    /// stays finite, and the forecast recovers toward the flat level.
    #[test]
    fn predictor_is_finite_on_impulse_input(
        base in 0.0f64..1000.0,
        spike in 1.0e3f64..1.0e9,
        at in 20usize..80,
        order in 1usize..5,
    ) {
        let mut p = WorkloadPredictor::new(order).unwrap();
        for t in 0..120 {
            let v = if t == at { spike } else { base };
            let e = p.observe(v);
            prop_assert!(e.is_finite(), "error blew up at t={t}");
            prop_assert!(p.coefficients().iter().all(|c| c.is_finite()));
            prop_assert!(p.predict_next().is_finite());
        }
        for v in p.forecast(10) {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }
}
