//! Holt's double-exponential (level + trend) smoothing predictor.
//!
//! An alternative to the paper's AR(p)+RLS workload predictor, used as an
//! ablation: Holt tracks a local level `ℓ` and trend `b`,
//!
//! ```text
//! ℓ(k) = α·y(k) + (1−α)(ℓ(k−1) + b(k−1))
//! b(k) = β·(ℓ(k) − ℓ(k−1)) + (1−β)·b(k−1)
//! ŷ(k+h) = ℓ(k) + h·b(k)
//! ```
//!
//! It adapts faster to ramps than low-order AR but has no notion of
//! oscillation; the `prediction` bench and the Fig. 3 harness compare the
//! two on the same traces.

/// Holt linear-trend exponential smoother.
///
/// # Example
///
/// ```
/// use idc_timeseries::holt::HoltPredictor;
///
/// let mut h = HoltPredictor::new(0.5, 0.2).expect("valid smoothing factors");
/// for t in 0..50 {
///     h.observe(100.0 + 3.0 * t as f64);
/// }
/// // Extrapolates the ramp.
/// assert!((h.predict(1) - 250.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HoltPredictor {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
    observations: usize,
}

impl HoltPredictor {
    /// Creates a smoother with level factor `alpha` and trend factor
    /// `beta`, both in `(0, 1]`. Returns `None` outside that range.
    pub fn new(alpha: f64, beta: f64) -> Option<Self> {
        if !(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0) {
            return None;
        }
        Some(HoltPredictor {
            alpha,
            beta,
            level: None,
            trend: 0.0,
            observations: 0,
        })
    }

    /// Level smoothing factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Trend smoothing factor β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of samples consumed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Incorporates one sample; returns the a-priori one-step error.
    pub fn observe(&mut self, value: f64) -> f64 {
        self.observations += 1;
        match self.level {
            None => {
                self.level = Some(value);
                self.trend = 0.0;
                0.0
            }
            Some(prev_level) => {
                let err = value - (prev_level + self.trend);
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
                err
            }
        }
    }

    /// `h`-step-ahead forecast `ℓ + h·b`, clamped non-negative (workload).
    pub fn predict(&self, h: usize) -> f64 {
        match self.level {
            None => 0.0,
            Some(level) => (level + h as f64 * self.trend).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_factors() {
        assert!(HoltPredictor::new(0.0, 0.5).is_none());
        assert!(HoltPredictor::new(0.5, 1.5).is_none());
        assert!(HoltPredictor::new(1.0, 1.0).is_some());
    }

    #[test]
    fn empty_predictor_returns_zero() {
        let h = HoltPredictor::new(0.5, 0.2).unwrap();
        assert_eq!(h.predict(3), 0.0);
        assert_eq!(h.observations(), 0);
    }

    #[test]
    fn constant_signal_is_learned_exactly() {
        let mut h = HoltPredictor::new(0.4, 0.1).unwrap();
        for _ in 0..100 {
            h.observe(420.0);
        }
        assert!((h.predict(1) - 420.0).abs() < 1e-9);
        assert!((h.predict(10) - 420.0).abs() < 1e-6);
    }

    #[test]
    fn linear_ramp_is_extrapolated() {
        let mut h = HoltPredictor::new(0.5, 0.3).unwrap();
        for t in 0..200 {
            h.observe(10.0 + 2.5 * t as f64);
        }
        // Next value ≈ 10 + 2.5·200 = 510; 4 steps out ≈ 517.5.
        assert!((h.predict(1) - 510.0).abs() < 1.0, "{}", h.predict(1));
        assert!((h.predict(4) - 517.5).abs() < 1.5, "{}", h.predict(4));
    }

    #[test]
    fn forecast_is_clamped_nonnegative() {
        let mut h = HoltPredictor::new(1.0, 1.0).unwrap();
        h.observe(10.0);
        h.observe(1.0); // steep downward trend
        assert!(h.predict(50) >= 0.0);
    }

    #[test]
    fn one_step_error_shrinks_on_smooth_signal() {
        let mut h = HoltPredictor::new(0.6, 0.3).unwrap();
        let mut early = 0.0;
        let mut late = 0.0;
        for t in 0..300 {
            let e = h.observe(500.0 + 100.0 * (t as f64 * 0.02).sin()).abs();
            if (5..25).contains(&t) {
                early += e;
            }
            if t >= 280 {
                late += e;
            }
        }
        assert!(late < early, "early {early}, late {late}");
    }
}
