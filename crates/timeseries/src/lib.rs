//! Workload modelling and online prediction for the `idc-mpc` workspace.
//!
//! The ICDCS 2012 paper predicts the arriving Internet workload with a
//! *time-varying p-th order autoregressive model* whose coefficients are
//! estimated online by *Recursive Least Squares* (paper Sec. III-D,
//! eq. 12–13, Fig. 3). This crate provides:
//!
//! * [`ar::ArModel`] — AR(p) simulation and one-step prediction,
//! * [`rls::RecursiveLeastSquares`] — exponentially-weighted RLS estimation,
//! * [`predictor::WorkloadPredictor`] — the combination the paper uses: an
//!   online-estimated AR(p) one-step/h-step workload forecaster,
//! * [`holt::HoltPredictor`] — a double-exponential-smoothing alternative
//!   used to ablate the predictor choice,
//! * [`traces`] — synthetic diurnal/bursty web-workload generators standing
//!   in for the EPA-HTTP trace of Fig. 3 (not redistributable offline),
//! * [`mmpp::MarkovModulatedPoisson`] — the MMPP arrival model the paper
//!   cites (\[15\]) as a standard fit for web service workloads,
//! * [`metrics`] — MAPE/RMSE prediction-accuracy metrics.
//!
//! # Example
//!
//! ```
//! use idc_timeseries::predictor::WorkloadPredictor;
//!
//! let mut predictor = WorkloadPredictor::new(3).expect("order > 0");
//! // Feed a gentle ramp; the predictor should extrapolate it.
//! for t in 0..50 {
//!     predictor.observe(100.0 + 2.0 * t as f64);
//! }
//! let next = predictor.predict_next();
//! assert!((next - 200.0).abs() < 10.0, "prediction {next}");
//! ```

#![warn(missing_docs)]

pub mod ar;
mod gaussian;
pub mod holt;
pub mod metrics;
pub mod mmpp;
pub mod predictor;
pub mod rls;
pub mod traces;

pub use gaussian::standard_normal;
