//! Autoregressive AR(p) models (paper eq. 12).
//!
//! The paper models workload arrival as a time-varying AR(p) process
//! `µ(k) = Σ_{s=1..p} α_s µ(k−s) + ε(k)` with i.i.d. white-noise
//! innovations. This module provides the *generative* side (simulation with
//! known coefficients); the *estimation* side lives in
//! [`crate::rls`] / [`crate::predictor`].

use rand::Rng;

use crate::gaussian::standard_normal;

/// An AR(p) process with fixed coefficients and Gaussian innovations.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use idc_timeseries::ar::ArModel;
///
/// let model = ArModel::new(vec![0.6, 0.3], 1.0).expect("valid");
/// let mut rng = StdRng::seed_from_u64(5);
/// let path = model.simulate(&mut rng, &[10.0, 10.0], 100);
/// assert_eq!(path.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArModel {
    coeffs: Vec<f64>,
    noise_std: f64,
}

impl ArModel {
    /// Creates an AR(p) model from lag coefficients `[α₁, …, α_p]` and the
    /// innovation standard deviation.
    ///
    /// Returns `None` when `coeffs` is empty, any value is non-finite, or
    /// `noise_std` is negative.
    pub fn new(coeffs: Vec<f64>, noise_std: f64) -> Option<Self> {
        if coeffs.is_empty()
            || noise_std < 0.0
            || !noise_std.is_finite()
            || coeffs.iter().any(|c| !c.is_finite())
        {
            return None;
        }
        Some(ArModel { coeffs, noise_std })
    }

    /// Model order `p`.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// Borrow of the lag coefficients `[α₁, …, α_p]`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Innovation standard deviation.
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Sufficient (not necessary) stationarity test: `Σ|α_s| < 1`.
    ///
    /// Processes passing this test are guaranteed stationary; the paper's
    /// fitted workload models land comfortably inside this region.
    pub fn is_contractive(&self) -> bool {
        self.coeffs.iter().map(|c| c.abs()).sum::<f64>() < 1.0
    }

    /// One-step conditional mean given `history`, ordered oldest → newest.
    ///
    /// Uses however many of the most recent values are available (up to
    /// `p`); with an empty history the prediction is 0.
    pub fn predict(&self, history: &[f64]) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .map(|(s, &alpha)| {
                history
                    .len()
                    .checked_sub(s + 1)
                    .map_or(0.0, |idx| alpha * history[idx])
            })
            .sum()
    }

    /// Simulates `n` steps starting from `init` (oldest → newest; values
    /// beyond `p` are ignored, missing values are treated as 0).
    pub fn simulate<R: Rng + ?Sized>(&self, rng: &mut R, init: &[f64], n: usize) -> Vec<f64> {
        let mut history: Vec<f64> = init.to_vec();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = self.predict(&history);
            let value = mean + self.noise_std * standard_normal(rng);
            history.push(value);
            out.push(value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constructor_validates() {
        assert!(ArModel::new(vec![], 1.0).is_none());
        assert!(ArModel::new(vec![0.5], -1.0).is_none());
        assert!(ArModel::new(vec![f64::NAN], 1.0).is_none());
        assert!(ArModel::new(vec![0.5], 0.0).is_some());
    }

    #[test]
    fn predict_uses_most_recent_values_first() {
        // α₁ applies to the newest sample.
        let m = ArModel::new(vec![1.0, 0.0], 0.0).unwrap();
        assert_eq!(m.predict(&[5.0, 9.0]), 9.0);
        let m2 = ArModel::new(vec![0.0, 1.0], 0.0).unwrap();
        assert_eq!(m2.predict(&[5.0, 9.0]), 5.0);
    }

    #[test]
    fn predict_handles_short_history() {
        let m = ArModel::new(vec![0.5, 0.25], 0.0).unwrap();
        assert_eq!(m.predict(&[]), 0.0);
        assert_eq!(m.predict(&[4.0]), 2.0); // only α₁ contributes
    }

    #[test]
    fn noiseless_simulation_is_deterministic_recursion() {
        let m = ArModel::new(vec![0.5], 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let path = m.simulate(&mut rng, &[8.0], 3);
        assert_eq!(path, vec![4.0, 2.0, 1.0]);
    }

    #[test]
    fn contractive_process_stays_bounded() {
        let m = ArModel::new(vec![0.5, 0.3], 1.0).unwrap();
        assert!(m.is_contractive());
        let mut rng = StdRng::seed_from_u64(3);
        let path = m.simulate(&mut rng, &[0.0, 0.0], 5000);
        let max = path.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        // Stationary variance is finite; 1000σ would indicate divergence.
        assert!(max < 50.0, "max |x| = {max}");
    }

    #[test]
    fn explosive_process_diverges() {
        let m = ArModel::new(vec![1.2], 0.0).unwrap();
        assert!(!m.is_contractive());
        let mut rng = StdRng::seed_from_u64(3);
        let path = m.simulate(&mut rng, &[1.0], 100);
        assert!(path.last().unwrap() > &1e6);
    }

    #[test]
    fn accessors_expose_parameters() {
        let m = ArModel::new(vec![0.1, 0.2, 0.3], 2.5).unwrap();
        assert_eq!(m.order(), 3);
        assert_eq!(m.coeffs(), &[0.1, 0.2, 0.3]);
        assert_eq!(m.noise_std(), 2.5);
    }
}
