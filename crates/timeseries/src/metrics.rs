//! Prediction-accuracy and descriptive statistics used by the Fig. 3
//! reproduction and the EXPERIMENTS.md reporting.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square error between two equal-length series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "rmse: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    (actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).powi(2))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error (%), skipping points where
/// `|actual| < floor` to avoid division blow-ups on near-zero workload.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(actual: &[f64], predicted: &[f64], floor: f64) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mape: length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() >= floor {
            total += ((a - p) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_of_identical_series_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // Errors 3 and 4 → RMSE = sqrt((9+16)/2).
        let v = rmse(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((v - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_near_zero_actuals() {
        let v = mape(&[0.0, 100.0], &[50.0, 110.0], 1.0);
        assert!((v - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_of_perfect_prediction_is_zero() {
        assert_eq!(mape(&[10.0, 20.0], &[10.0, 20.0], 1.0), 0.0);
        assert_eq!(mape(&[0.0], &[5.0], 1.0), 0.0); // all skipped
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_validates_lengths() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
