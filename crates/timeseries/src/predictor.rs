//! The paper's workload predictor: an AR(p) model whose coefficients are
//! estimated online by RLS (paper eq. 13, Fig. 3).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::rls::{RecursiveLeastSquares, RlsState};

/// The complete evolving state of a [`WorkloadPredictor`] as plain
/// serializable data, for checkpoint/restore of online controllers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorState {
    /// AR model order `p`.
    pub order: u64,
    /// The recent-sample window, oldest first (at most `order` entries).
    pub history: Vec<f64>,
    /// The RLS coefficient estimator's state.
    pub rls: RlsState,
}

/// Default RLS forgetting factor; slightly below 1 so the predictor tracks
/// the time-varying diurnal workload, as the paper's "time-varying AR"
/// phrasing requires.
pub const DEFAULT_FORGETTING: f64 = 0.995;

/// An online AR(p)+RLS workload forecaster.
///
/// Feed observations with [`observe`](Self::observe); read one-step
/// forecasts with [`predict_next`](Self::predict_next) or multi-step
/// forecasts (needed for the MPC prediction horizon β₁) with
/// [`forecast`](Self::forecast).
///
/// Before `p + 1` observations have been seen the predictor falls back to
/// persistence (the last observed value).
///
/// # Example
///
/// ```
/// use idc_timeseries::predictor::WorkloadPredictor;
///
/// let mut p = WorkloadPredictor::new(2).expect("order > 0");
/// for t in 0..60 {
///     p.observe(500.0 + 100.0 * (t as f64 * 0.1).sin());
/// }
/// let horizon = p.forecast(5);
/// assert_eq!(horizon.len(), 5);
/// assert!(horizon.iter().all(|v| *v >= 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadPredictor {
    order: usize,
    rls: RecursiveLeastSquares,
    history: VecDeque<f64>,
}

impl WorkloadPredictor {
    /// Creates a predictor of AR order `order` with the default forgetting
    /// factor. Returns `None` if `order == 0`.
    pub fn new(order: usize) -> Option<Self> {
        Self::with_forgetting(order, DEFAULT_FORGETTING)
    }

    /// Creates a predictor with an explicit forgetting factor `λ ∈ (0, 1]`.
    /// Returns `None` if `order == 0` or `λ` is out of range.
    pub fn with_forgetting(order: usize, forgetting: f64) -> Option<Self> {
        if order == 0 || !(forgetting > 0.0 && forgetting <= 1.0) {
            return None;
        }
        Some(WorkloadPredictor {
            order,
            rls: RecursiveLeastSquares::new(order, forgetting),
            history: VecDeque::with_capacity(order + 1),
        })
    }

    /// AR model order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Current estimated AR coefficients `[α̂₁, …, α̂_p]` (α̂₁ is the weight
    /// of the most recent sample).
    pub fn coefficients(&self) -> &[f64] {
        self.rls.coefficients()
    }

    /// Number of observations consumed so far.
    pub fn observations(&self) -> usize {
        self.rls.updates() + self.history.len().min(self.order)
    }

    /// Incorporates a new workload sample, updating the AR coefficients,
    /// and returns the a-priori one-step prediction error (0 while the
    /// history is still warming up).
    pub fn observe(&mut self, value: f64) -> f64 {
        let err = if self.history.len() >= self.order {
            let x = self.regressor();
            self.rls.update(&x, value)
        } else {
            0.0
        };
        self.history.push_back(value);
        if self.history.len() > self.order {
            self.history.pop_front();
        }
        err
    }

    /// One-step-ahead forecast `µ̂(k+1)`, clamped to be non-negative
    /// (workload cannot be negative).
    pub fn predict_next(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        if self.rls.updates() == 0 {
            // Persistence fallback during warm-up.
            return *self.history.back().expect("checked non-empty");
        }
        self.rls.predict(&self.regressor()).max(0.0)
    }

    /// Recursive `h`-step forecast: each step feeds the previous prediction
    /// back as a pseudo-observation. Used to fill the MPC prediction
    /// horizon.
    pub fn forecast(&self, h: usize) -> Vec<f64> {
        let mut virtual_history: VecDeque<f64> = self.history.clone();
        let mut out = Vec::with_capacity(h);
        for _ in 0..h {
            let pred = if virtual_history.is_empty() {
                0.0
            } else if self.rls.updates() == 0 {
                *virtual_history.back().expect("checked non-empty")
            } else {
                let x: Vec<f64> = (0..self.order)
                    .map(|s| {
                        virtual_history
                            .len()
                            .checked_sub(s + 1)
                            .map_or(0.0, |i| virtual_history[i])
                    })
                    .collect();
                self.rls.predict(&x).max(0.0)
            };
            virtual_history.push_back(pred);
            if virtual_history.len() > self.order {
                virtual_history.pop_front();
            }
            out.push(pred);
        }
        out
    }

    /// Exports the predictor's complete evolving state for checkpointing.
    pub fn state(&self) -> PredictorState {
        PredictorState {
            order: self.order as u64,
            history: self.history.iter().copied().collect(),
            rls: self.rls.state(),
        }
    }

    /// Rebuilds a predictor from a [`state`](Self::state) export, resuming
    /// observation and forecasting bit-for-bit. Returns `None` when the
    /// state is internally inconsistent (zero order, a history longer than
    /// the order, an RLS dimension that does not match the order, or a
    /// corrupt RLS state).
    pub fn from_state(state: &PredictorState) -> Option<Self> {
        let order = state.order as usize;
        if order == 0 || state.history.len() > order {
            return None;
        }
        let rls = RecursiveLeastSquares::from_state(&state.rls)?;
        if rls.dim() != order {
            return None;
        }
        Some(WorkloadPredictor {
            order,
            rls,
            history: state.history.iter().copied().collect(),
        })
    }

    /// Regressor `[µ(k−1), …, µ(k−p)]`, newest first, zero-padded.
    fn regressor(&self) -> Vec<f64> {
        (0..self.order)
            .map(|s| {
                self.history
                    .len()
                    .checked_sub(s + 1)
                    .map_or(0.0, |i| self.history[i])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(WorkloadPredictor::new(0).is_none());
        assert!(WorkloadPredictor::with_forgetting(2, 0.0).is_none());
        assert!(WorkloadPredictor::with_forgetting(2, 1.1).is_none());
        assert!(WorkloadPredictor::new(3).is_some());
    }

    #[test]
    fn empty_predictor_predicts_zero() {
        let p = WorkloadPredictor::new(2).unwrap();
        assert_eq!(p.predict_next(), 0.0);
        assert_eq!(p.forecast(3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn warmup_uses_persistence() {
        let mut p = WorkloadPredictor::new(3).unwrap();
        p.observe(42.0);
        assert_eq!(p.predict_next(), 42.0);
    }

    #[test]
    fn learns_constant_signal() {
        let mut p = WorkloadPredictor::new(2).unwrap();
        for _ in 0..100 {
            p.observe(750.0);
        }
        assert!((p.predict_next() - 750.0).abs() < 1.0);
        // Multi-step forecast of a constant stays constant.
        for v in p.forecast(10) {
            assert!((v - 750.0).abs() < 2.0);
        }
    }

    #[test]
    fn learns_linear_ramp() {
        let mut p = WorkloadPredictor::new(2).unwrap();
        for t in 0..200 {
            p.observe(100.0 + 5.0 * t as f64);
        }
        // Next value should be ≈ 100 + 5·200 = 1100.
        let next = p.predict_next();
        assert!((next - 1100.0).abs() < 15.0, "next {next}");
    }

    #[test]
    fn tracks_sinusoid_with_small_error() {
        let mut p = WorkloadPredictor::new(4).unwrap();
        let mut abs_err = 0.0;
        let mut count = 0;
        for t in 0..500 {
            let v = 1000.0 + 400.0 * (t as f64 * 0.05).sin();
            let e = p.observe(v);
            if t > 100 {
                abs_err += e.abs();
                count += 1;
            }
        }
        let mae = abs_err / count as f64;
        // Relative error under 2% of the mean level.
        assert!(mae < 20.0, "mae {mae}");
    }

    #[test]
    fn forecast_is_nonnegative() {
        let mut p = WorkloadPredictor::new(2).unwrap();
        for v in [10.0, 5.0, 1.0, 0.5, 0.1, 0.0, 0.0] {
            p.observe(v);
        }
        assert!(p.forecast(20).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mut p = WorkloadPredictor::new(3).unwrap();
        for t in 0..40 {
            p.observe(1000.0 + 300.0 * (t as f64 * 0.2).sin());
        }
        let mut restored = WorkloadPredictor::from_state(&p.state()).unwrap();
        assert_eq!(restored.forecast(5), p.forecast(5));
        for t in 40..60 {
            let v = 1000.0 + 300.0 * (t as f64 * 0.2).sin();
            let a = p.observe(v);
            let b = restored.observe(v);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(p.state(), restored.state());
    }

    #[test]
    fn from_state_rejects_inconsistent_data() {
        let mut p = WorkloadPredictor::new(2).unwrap();
        p.observe(5.0);
        let good = p.state();
        let mut bad = good.clone();
        bad.order = 0;
        assert!(WorkloadPredictor::from_state(&bad).is_none());
        let mut bad = good.clone();
        bad.history = vec![1.0, 2.0, 3.0]; // longer than the order
        assert!(WorkloadPredictor::from_state(&bad).is_none());
        let mut bad = good;
        bad.order = 3; // RLS dimension no longer matches
        assert!(WorkloadPredictor::from_state(&bad).is_none());
    }

    #[test]
    fn observation_counter() {
        let mut p = WorkloadPredictor::new(2).unwrap();
        for i in 0..5 {
            p.observe(i as f64);
        }
        assert_eq!(p.observations(), 5);
    }
}
