//! Exponentially-weighted Recursive Least Squares (paper Sec. III-D).
//!
//! The paper estimates the time-varying AR coefficients online with RLS
//! (citing Yao et al., JSA 2010). The implementation below is the standard
//! covariance-form recursion with a forgetting factor `λ ∈ (0, 1]`:
//!
//! ```text
//! k(t)  = P x / (λ + xᵀ P x)
//! θ(t)  = θ + k (y − xᵀθ)
//! P(t)  = (P − k xᵀ P) / λ
//! ```

use idc_linalg::{vec_ops, Matrix};
use serde::{Deserialize, Serialize};

/// The complete evolving state of a [`RecursiveLeastSquares`] estimator as
/// plain serializable data, for checkpoint/restore of online controllers.
///
/// Captures everything [`RecursiveLeastSquares::update`] touches — the
/// coefficient estimate `θ`, the covariance `P` (row-major), the forgetting
/// factor and the update counter — so
/// [`RecursiveLeastSquares::from_state`] resumes the recursion bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlsState {
    /// Coefficient estimate `θ`, one entry per regressor dimension.
    pub theta: Vec<f64>,
    /// Covariance matrix `P`, row-major, `theta.len()²` entries.
    pub covariance: Vec<f64>,
    /// Forgetting factor `λ ∈ (0, 1]`.
    pub forgetting: f64,
    /// Number of updates performed so far.
    pub updates: u64,
}

/// Online recursive least-squares estimator of `y ≈ θᵀx`.
///
/// # Example
///
/// ```
/// use idc_timeseries::rls::RecursiveLeastSquares;
///
/// // Learn y = 2·x0 − 1·x1 from noiseless samples.
/// let mut rls = RecursiveLeastSquares::new(2, 1.0);
/// for t in 0..100 {
///     let x = [(t as f64).sin(), (t as f64 * 0.7).cos()];
///     let y = 2.0 * x[0] - x[1];
///     rls.update(&x, y);
/// }
/// let theta = rls.coefficients();
/// assert!((theta[0] - 2.0).abs() < 1e-6);
/// assert!((theta[1] + 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct RecursiveLeastSquares {
    theta: Vec<f64>,
    p: Matrix,
    forgetting: f64,
    updates: usize,
}

impl RecursiveLeastSquares {
    /// Creates an estimator for `dim` coefficients with forgetting factor
    /// `forgetting` (1.0 = ordinary RLS; < 1.0 tracks time-varying systems).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `forgetting ∉ (0, 1]`.
    pub fn new(dim: usize, forgetting: f64) -> Self {
        assert!(dim > 0, "rls requires at least one coefficient");
        assert!(
            forgetting > 0.0 && forgetting <= 1.0,
            "forgetting factor must lie in (0, 1], got {forgetting}"
        );
        RecursiveLeastSquares {
            theta: vec![0.0; dim],
            // Large initial covariance ⇒ fast initial adaptation.
            p: Matrix::identity(dim).scale(1e6),
            forgetting,
            updates: 0,
        }
    }

    /// Number of coefficients being estimated.
    pub fn dim(&self) -> usize {
        self.theta.len()
    }

    /// Current coefficient estimate `θ`.
    pub fn coefficients(&self) -> &[f64] {
        &self.theta
    }

    /// Number of updates performed so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Predicted output `θᵀx` for a regressor.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        vec_ops::dot(&self.theta, x)
    }

    /// Incorporates one observation pair `(x, y)` and returns the *a
    /// priori* prediction error `y − θᵀx` (before the update).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        assert_eq!(x.len(), self.dim(), "regressor length mismatch");
        let err = y - self.predict(x);

        // px = P x ; denom = λ + xᵀ P x
        let px = self.p.mul_vec(x).expect("square covariance");
        let denom = self.forgetting + vec_ops::dot(x, &px);
        // Gain k = P x / denom.
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();

        // θ ← θ + k · err
        vec_ops::axpy(err, &k, &mut self.theta);

        // P ← (P − k (Px)ᵀ) / λ   (using symmetry of P: xᵀP = (Px)ᵀ)
        let n = self.dim();
        for i in 0..n {
            for j in 0..n {
                self.p[(i, j)] = (self.p[(i, j)] - k[i] * px[j]) / self.forgetting;
            }
        }
        self.updates += 1;
        err
    }

    /// Exports the estimator's complete evolving state for checkpointing.
    pub fn state(&self) -> RlsState {
        let n = self.dim();
        let mut covariance = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                covariance.push(self.p[(i, j)]);
            }
        }
        RlsState {
            theta: self.theta.clone(),
            covariance,
            forgetting: self.forgetting,
            updates: self.updates as u64,
        }
    }

    /// Rebuilds an estimator from a [`state`](Self::state) export, resuming
    /// the recursion bit-for-bit. Returns `None` when the state is
    /// internally inconsistent (dimension mismatch, non-finite entries, or
    /// an out-of-range forgetting factor).
    pub fn from_state(state: &RlsState) -> Option<Self> {
        let n = state.theta.len();
        if n == 0
            || state.covariance.len() != n * n
            || !(state.forgetting > 0.0 && state.forgetting <= 1.0)
            || state.theta.iter().any(|v| !v.is_finite())
            || state.covariance.iter().any(|v| !v.is_finite())
        {
            return None;
        }
        let mut p = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                p[(i, j)] = state.covariance[i * n + j];
            }
        }
        Some(RecursiveLeastSquares {
            theta: state.theta.clone(),
            p,
            forgetting: state.forgetting,
            updates: state.updates as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_static_system() {
        let mut rls = RecursiveLeastSquares::new(3, 1.0);
        let truth = [1.5, -0.7, 0.2];
        for t in 0..200 {
            let x = [
                (t as f64 * 0.3).sin(),
                (t as f64 * 0.11).cos(),
                ((t % 7) as f64) / 7.0,
            ];
            let y = vec_ops::dot(&truth, &x);
            rls.update(&x, y);
        }
        for (est, tru) in rls.coefficients().iter().zip(&truth) {
            assert!((est - tru).abs() < 1e-5, "{est} vs {tru}");
        }
    }

    #[test]
    fn forgetting_tracks_parameter_change() {
        let mut rls = RecursiveLeastSquares::new(1, 0.9);
        // First regime: y = 2x.
        for t in 0..100 {
            let x = [1.0 + (t % 3) as f64];
            rls.update(&x, 2.0 * x[0]);
        }
        assert!((rls.coefficients()[0] - 2.0).abs() < 1e-6);
        // Regime switch: y = −1·x. With λ = 0.9 it must re-converge fast.
        for t in 0..100 {
            let x = [1.0 + (t % 3) as f64];
            rls.update(&x, -x[0]);
        }
        assert!((rls.coefficients()[0] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn prediction_error_shrinks() {
        let mut rls = RecursiveLeastSquares::new(2, 1.0);
        let mut early = 0.0;
        let mut late = 0.0;
        for t in 0..100 {
            let x = [(t as f64 * 0.5).sin(), 1.0];
            let e = rls.update(&x, 3.0 * x[0] + 0.5).abs();
            if t < 5 {
                early += e;
            }
            if t >= 95 {
                late += e;
            }
        }
        assert!(late < early * 1e-3 + 1e-9, "early {early}, late {late}");
    }

    #[test]
    fn updates_counter_increments() {
        let mut rls = RecursiveLeastSquares::new(1, 1.0);
        assert_eq!(rls.updates(), 0);
        rls.update(&[1.0], 1.0);
        rls.update(&[1.0], 1.0);
        assert_eq!(rls.updates(), 2);
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mut rls = RecursiveLeastSquares::new(3, 0.98);
        for t in 0..50 {
            let x = [(t as f64 * 0.3).sin(), (t as f64 * 0.11).cos(), 1.0];
            rls.update(&x, 1.5 * x[0] - 0.7 * x[1] + 0.2);
        }
        let mut restored = RecursiveLeastSquares::from_state(&rls.state()).unwrap();
        assert_eq!(restored.coefficients(), rls.coefficients());
        assert_eq!(restored.updates(), rls.updates());
        // The two recursions must stay bit-identical under further updates.
        for t in 50..80 {
            let x = [(t as f64 * 0.3).sin(), (t as f64 * 0.11).cos(), 1.0];
            let y = 1.5 * x[0] - 0.7 * x[1] + 0.2;
            let a = rls.update(&x, y);
            let b = restored.update(&x, y);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(rls.state(), restored.state());
    }

    #[test]
    fn from_state_rejects_inconsistent_data() {
        let rls = RecursiveLeastSquares::new(2, 1.0);
        let good = rls.state();
        let mut bad = good.clone();
        bad.covariance.pop();
        assert!(RecursiveLeastSquares::from_state(&bad).is_none());
        let mut bad = good.clone();
        bad.forgetting = 1.5;
        assert!(RecursiveLeastSquares::from_state(&bad).is_none());
        let mut bad = good.clone();
        bad.theta[0] = f64::NAN;
        assert!(RecursiveLeastSquares::from_state(&bad).is_none());
        let mut bad = good;
        bad.theta.clear();
        bad.covariance.clear();
        assert!(RecursiveLeastSquares::from_state(&bad).is_none());
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn rejects_bad_forgetting_factor() {
        let _ = RecursiveLeastSquares::new(1, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn rejects_zero_dimension() {
        let _ = RecursiveLeastSquares::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "regressor length mismatch")]
    fn rejects_wrong_regressor_length() {
        let mut rls = RecursiveLeastSquares::new(2, 1.0);
        rls.update(&[1.0], 1.0);
    }
}
