//! Box–Muller standard-normal sampling.
//!
//! Implemented in-crate so the workspace depends only on the core `rand`
//! crate (no `rand_distr`), keeping the offline dependency footprint small.

use rand::Rng;

/// Draws one standard-normal (`N(0, 1)`) variate via the Box–Muller
/// transform.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use idc_timeseries::standard_normal;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let samples: Vec<f64> = (0..1000).map(|_| standard_normal(&mut rng)).collect();
/// let mean = samples.iter().sum::<f64>() / samples.len() as f64;
/// assert!(mean.abs() < 0.15);
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) stays finite.
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn moments_are_approximately_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn values_are_finite() {
        let mut rng = StdRng::seed_from_u64(99);
        assert!((0..10_000).all(|_| standard_normal(&mut rng).is_finite()));
    }
}
