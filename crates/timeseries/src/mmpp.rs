//! Markov-Modulated Poisson Process workload model.
//!
//! The paper (Sec. III-D) cites MMPP \[15\] as a standard fit for web-service
//! arrival processes. We implement a discrete-time MMPP: a hidden Markov
//! chain over "activity states" (e.g. quiet / busy / flash-crowd), each
//! with its own Poisson arrival rate; per sampling interval the chain
//! transitions and an arrival count is drawn.

use rand::Rng;

/// A discrete-time Markov-Modulated Poisson Process.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use idc_timeseries::mmpp::MarkovModulatedPoisson;
///
/// let mmpp = MarkovModulatedPoisson::new(
///     vec![100.0, 1000.0],
///     vec![vec![0.95, 0.05], vec![0.10, 0.90]],
/// ).expect("valid chain");
/// let mut rng = StdRng::seed_from_u64(0);
/// let arrivals = mmpp.sample_path(&mut rng, 0, 500, 1.0);
/// assert_eq!(arrivals.len(), 500);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModulatedPoisson {
    rates: Vec<f64>,
    transition: Vec<Vec<f64>>,
}

impl MarkovModulatedPoisson {
    /// Creates an MMPP from per-state arrival rates (req/s) and a row-
    /// stochastic transition matrix.
    ///
    /// Returns `None` when the dimensions disagree, a rate is negative, a
    /// probability is outside `[0, 1]` or a row does not sum to 1 (within
    /// 1e-9).
    pub fn new(rates: Vec<f64>, transition: Vec<Vec<f64>>) -> Option<Self> {
        let n = rates.len();
        if n == 0 || transition.len() != n {
            return None;
        }
        if rates.iter().any(|&r| !(r >= 0.0) || !r.is_finite()) {
            return None;
        }
        for row in &transition {
            if row.len() != n {
                return None;
            }
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                return None;
            }
            if (row.iter().sum::<f64>() - 1.0).abs() > 1e-9 {
                return None;
            }
        }
        Some(MarkovModulatedPoisson { rates, transition })
    }

    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.rates.len()
    }

    /// Arrival rate of state `s` (req/s).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn rate(&self, s: usize) -> f64 {
        self.rates[s]
    }

    /// Draws the next hidden state given the current one.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn step_state<R: Rng + ?Sized>(&self, rng: &mut R, state: usize) -> usize {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (next, &p) in self.transition[state].iter().enumerate() {
            acc += p;
            if u < acc {
                return next;
            }
        }
        self.num_states() - 1
    }

    /// Samples `n` intervals of length `dt` seconds starting in
    /// `initial_state`, returning the observed arrival *rate* (count / dt)
    /// per interval.
    ///
    /// # Panics
    ///
    /// Panics if `initial_state` is out of range or `dt ≤ 0`.
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        initial_state: usize,
        n: usize,
        dt: f64,
    ) -> Vec<f64> {
        assert!(initial_state < self.num_states(), "state out of range");
        assert!(dt > 0.0, "interval length must be positive");
        let mut state = initial_state;
        (0..n)
            .map(|_| {
                state = self.step_state(rng, state);
                poisson(rng, self.rates[state] * dt) as f64 / dt
            })
            .collect()
    }
}

/// Draws a Poisson(λ) count. Uses Knuth's product method for small λ and a
/// Gaussian approximation (clamped at 0) for large λ, which is ample for
/// workload simulation.
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        let z = crate::standard_normal(rng);
        (lambda + lambda.sqrt() * z).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn two_state() -> MarkovModulatedPoisson {
        MarkovModulatedPoisson::new(vec![50.0, 500.0], vec![vec![0.9, 0.1], vec![0.2, 0.8]])
            .unwrap()
    }

    #[test]
    fn constructor_validates_dimensions_and_stochasticity() {
        assert!(MarkovModulatedPoisson::new(vec![], vec![]).is_none());
        assert!(MarkovModulatedPoisson::new(vec![1.0], vec![vec![0.5]]).is_none());
        assert!(MarkovModulatedPoisson::new(vec![1.0], vec![vec![0.5, 0.5]]).is_none());
        assert!(MarkovModulatedPoisson::new(vec![-1.0], vec![vec![1.0]]).is_none());
        assert!(MarkovModulatedPoisson::new(vec![1.0, 2.0], vec![vec![1.0, 0.0]]).is_none());
        assert!(two_state().num_states() == 2);
    }

    #[test]
    fn mean_rate_lies_between_state_rates() {
        let mmpp = two_state();
        let mut rng = StdRng::seed_from_u64(11);
        let path = mmpp.sample_path(&mut rng, 0, 20_000, 1.0);
        let mean = path.iter().sum::<f64>() / path.len() as f64;
        assert!(mean > 50.0 && mean < 500.0, "mean {mean}");
        // Stationary distribution of the chain is (2/3, 1/3) → mean = 200.
        assert!((mean - 200.0).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn large_lambda_uses_gaussian_branch_with_right_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, 1000.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1000.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn small_lambda_mean_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut rng, 3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zero_lambda_gives_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn path_is_deterministic_per_seed() {
        let mmpp = two_state();
        let a = mmpp.sample_path(&mut StdRng::seed_from_u64(1), 0, 50, 1.0);
        let b = mmpp.sample_path(&mut StdRng::seed_from_u64(1), 0, 50, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn sample_path_rejects_bad_state() {
        let mmpp = two_state();
        let mut rng = StdRng::seed_from_u64(0);
        mmpp.sample_path(&mut rng, 9, 10, 1.0);
    }
}
