//! Synthetic web-workload trace generation.
//!
//! The paper evaluates its predictor on the EPA-HTTP trace (Internet
//! Traffic Archive, Aug 30 1995 — Fig. 3). That trace is not available
//! offline, so [`DiurnalTrace`] generates a statistically similar arrival
//! process: a diurnal base curve (two harmonics), multiplicative noise and
//! occasional request bursts, clamped non-negative. [`epa_like`] is the
//! pinned configuration used by the Fig. 3 reproduction — its envelope
//! (≈ 0–2000 req/s, night trough, office-hours plateau) matches the
//! published figure.

use rand::Rng;

use crate::gaussian::standard_normal;

/// Configurable diurnal workload generator.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use idc_timeseries::traces::DiurnalTrace;
///
/// let trace = DiurnalTrace::new(1000.0)
///     .amplitude(600.0)
///     .noise_std(50.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = trace.generate(&mut rng, 1440, 60.0);
/// assert_eq!(samples.len(), 1440);
/// assert!(samples.iter().all(|&v| v >= 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalTrace {
    base: f64,
    amplitude: f64,
    second_harmonic: f64,
    peak_hour: f64,
    noise_std: f64,
    burst_probability: f64,
    burst_scale: f64,
}

impl DiurnalTrace {
    /// Creates a generator with mean request rate `base` (req/s) and no
    /// variation; chain setters to add structure.
    pub fn new(base: f64) -> Self {
        DiurnalTrace {
            base,
            amplitude: 0.0,
            second_harmonic: 0.0,
            peak_hour: 15.0,
            noise_std: 0.0,
            burst_probability: 0.0,
            burst_scale: 0.0,
        }
    }

    /// Sets the daily swing: the deterministic component is
    /// `base + amplitude·cos(2π(h − peak)/24) + second·cos(4π(h − peak)/24)`.
    pub fn amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude;
        self
    }

    /// Sets the second-harmonic amplitude (sharpens the office-hours
    /// plateau).
    pub fn second_harmonic(mut self, second: f64) -> Self {
        self.second_harmonic = second;
        self
    }

    /// Sets the hour of day (0–24) at which the workload peaks.
    pub fn peak_hour(mut self, hour: f64) -> Self {
        self.peak_hour = hour;
        self
    }

    /// Sets the Gaussian noise standard deviation (req/s).
    pub fn noise_std(mut self, std: f64) -> Self {
        self.noise_std = std;
        self
    }

    /// Enables request bursts: with probability `prob` per sample, the rate
    /// is multiplied by `1 + scale·u` with `u ~ U(0,1)`.
    pub fn bursts(mut self, prob: f64, scale: f64) -> Self {
        self.burst_probability = prob;
        self.burst_scale = scale;
        self
    }

    /// Deterministic diurnal mean at hour-of-day `h ∈ [0, 24)`.
    pub fn mean_at_hour(&self, h: f64) -> f64 {
        let phase = (h - self.peak_hour) * std::f64::consts::TAU / 24.0;
        (self.base + self.amplitude * phase.cos() + self.second_harmonic * (2.0 * phase).cos())
            .max(0.0)
    }

    /// Generates `n` samples spaced `dt_seconds` apart, starting at
    /// midnight. Values are clamped non-negative.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, dt_seconds: f64) -> Vec<f64> {
        (0..n)
            .map(|k| {
                let hour = (k as f64 * dt_seconds / 3600.0) % 24.0;
                let mut v = self.mean_at_hour(hour) + self.noise_std * standard_normal(rng);
                if self.burst_probability > 0.0 && rng.random::<f64>() < self.burst_probability {
                    v *= 1.0 + self.burst_scale * rng.random::<f64>();
                }
                v.max(0.0)
            })
            .collect()
    }
}

/// The pinned EPA-HTTP-like configuration used for the Fig. 3 reproduction:
/// night trough near 100 req/s, office-hours levels of 1200–1800 req/s and
/// bursty spikes approaching 2000 req/s.
pub fn epa_like() -> DiurnalTrace {
    DiurnalTrace::new(800.0)
        .amplitude(650.0)
        .second_harmonic(150.0)
        .peak_hour(14.0)
        .noise_std(90.0)
        .bursts(0.02, 0.5)
}

/// A piecewise-constant profile: `levels[i]` held for `hold` samples each.
/// Used to exercise controllers with step workload changes.
pub fn step_profile(levels: &[f64], hold: usize) -> Vec<f64> {
    levels
        .iter()
        .flat_map(|&v| std::iter::repeat_n(v, hold))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constant_trace_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = DiurnalTrace::new(500.0).generate(&mut rng, 100, 60.0);
        assert!(t.iter().all(|&v| (v - 500.0).abs() < 1e-12));
    }

    #[test]
    fn peak_hour_is_respected() {
        let t = DiurnalTrace::new(1000.0).amplitude(500.0).peak_hour(15.0);
        assert!(t.mean_at_hour(15.0) > t.mean_at_hour(3.0));
        assert!((t.mean_at_hour(15.0) - 1500.0).abs() < 1e-9);
        assert!((t.mean_at_hour(3.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn samples_are_nonnegative_even_with_heavy_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = DiurnalTrace::new(10.0)
            .noise_std(100.0)
            .generate(&mut rng, 2000, 60.0);
        assert!(t.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn bursts_raise_the_maximum() {
        let base = DiurnalTrace::new(1000.0).noise_std(10.0);
        let bursty = base.clone().bursts(0.2, 1.0);
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let a = base.generate(&mut rng1, 1000, 60.0);
        let b = bursty.generate(&mut rng2, 1000, 60.0);
        let max_a = a.iter().fold(0.0f64, |m, &v| m.max(v));
        let max_b = b.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(max_b > max_a * 1.2, "{max_b} vs {max_a}");
    }

    #[test]
    fn epa_like_envelope_matches_figure_3() {
        let mut rng = StdRng::seed_from_u64(2012);
        let day = epa_like().generate(&mut rng, 1440, 60.0);
        let max = day.iter().fold(0.0f64, |m, &v| m.max(v));
        let min = day.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(max > 1200.0 && max < 3000.0, "max {max}");
        assert!(min < 300.0, "min {min}");
        // Office hours busier than deep night.
        let night: f64 = day[120..180].iter().sum::<f64>() / 60.0; // ~02:00–03:00
        let noon: f64 = day[780..840].iter().sum::<f64>() / 60.0; // ~13:00–14:00
        assert!(noon > 3.0 * night, "noon {noon}, night {night}");
    }

    #[test]
    fn step_profile_holds_levels() {
        let p = step_profile(&[1.0, 2.0], 3);
        assert_eq!(p, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let trace = epa_like();
        let a = trace.generate(&mut StdRng::seed_from_u64(5), 100, 60.0);
        let b = trace.generate(&mut StdRng::seed_from_u64(5), 100, 60.0);
        assert_eq!(a, b);
    }
}
