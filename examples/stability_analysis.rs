//! Closed-loop stability analysis of the MPC workload controller
//! (paper Sec. IV-E).
//!
//! The paper appeals to the contraction-mapping stability argument of
//! Mayne et al. \[21\] for constrained MPC. Here we *verify* the property
//! computationally for the paper's instance:
//!
//! 1. build the closed-loop map `λ_WI(k) → λ_WI(k+1)` (one degree of
//!    freedom once conservation fixes the rest, with Minnesota pinned),
//! 2. numerically linearize it around the tracking equilibrium and check
//!    the spectral radius (local Schur stability),
//! 3. run an empirical contraction test over a grid of initial
//!    allocations, and
//! 4. measure the convergence horizon from the Fig. 4 starting point.
//!
//! Run with: `cargo run -p idc-examples --bin stability_analysis`

use idc_control::mpc::{MpcConfig, MpcController, MpcProblem};
use idc_control::stability::{converges_to_fixed_point, is_contraction, linearized_jacobian};
use idc_core::config;
use idc_linalg::eigen::spectral_radius;

/// Closed-loop map on the (MI, WI) workload pair at the 7H prices; MN held
/// at its saturated 49 999 req/s. Input and output are `[λ_MI, λ_WI]`.
fn closed_loop_step(lam: &[f64]) -> Vec<f64> {
    let fleet = config::paper_fleet_calibrated();
    let idcs = fleet.idcs();
    let mn = 49_999.0;
    let total = 100_000.0 - mn;
    // Re-project the probe point onto the conservation manifold.
    let mi = lam[0].clamp(0.0, total);
    let wi = total - mi;

    let mut controller = MpcController::new(MpcConfig::default());
    // 7H reference (greedy): MI full at 39 999, WI the rest.
    let mi_ref = 39_999.0_f64.min(total);
    let wi_ref = total - mi_ref;
    let b1: Vec<f64> = idcs.iter().map(|i| i.server().b1() / 1e6).collect();
    let b0: Vec<f64> = idcs.iter().map(|i| i.server().b0() / 1e6).collect();
    let servers = [20_000u64, 40_000, 20_000]; // ample capacity everywhere
    let reference = vec![
        b1[0] * mi_ref + b0[0] * servers[0] as f64,
        b1[1] * mn + b0[1] * servers[1] as f64,
        b1[2] * wi_ref + b0[2] * servers[2] as f64,
    ];
    let problem = MpcProblem {
        b1_mw: b1,
        b0_mw: b0,
        servers_on: servers.to_vec(),
        capacities: idcs
            .iter()
            .zip(servers)
            .map(|(idc, m)| idc.capacity_with(m))
            .collect(),
        // One portal per IDC block keeps the map one-dimensional per IDC.
        prev_input: vec![mi, mn, wi],
        workload_forecast: vec![vec![100_000.0]; 3],
        power_reference_mw: vec![reference; 5],
        tracking_multiplier: MpcProblem::uniform_tracking(3),
        storage: None,
    };
    let plan = controller.plan(&problem).expect("feasible by construction");
    vec![plan.next_input()[0], plan.next_input()[2]]
}

fn main() {
    // 1. Linearize around the equilibrium (the reference allocation).
    let eq = [39_999.0, 10_002.0];
    let jac = linearized_jacobian(closed_loop_step, &eq, 50.0);
    let rho = spectral_radius(&jac, 30).expect("finite Jacobian");
    println!("closed-loop Jacobian at the tracking equilibrium:");
    println!("  [{:>8.5} {:>8.5}]", jac[(0, 0)], jac[(0, 1)]);
    println!("  [{:>8.5} {:>8.5}]", jac[(1, 0)], jac[(1, 1)]);
    println!(
        "spectral radius ρ = {rho:.5}  →  {}",
        if rho < 1.0 {
            "locally Schur stable"
        } else {
            "NOT stable"
        }
    );

    // 2. Empirical contraction over a grid of initial allocations.
    let samples: Vec<Vec<f64>> = (0..6)
        .map(|k| {
            let mi = 5_000.0 + 7_000.0 * k as f64;
            vec![mi, 50_001.0 - mi]
        })
        .collect();
    let contracting = is_contraction(closed_loop_step, &samples, 5, 0.9);
    println!("5-step contraction over 6 initial allocations: {contracting}");

    // 3. Convergence horizon from the Fig. 4 starting point (everything
    //    the 6H optimum gave Wisconsin).
    let start = [15_002.0, 35_000.0];
    match converges_to_fixed_point(closed_loop_step, &start, 200, 1.0) {
        Some(steps) => println!(
            "from the 6H operating point the loop reaches its fixed point in {steps} steps \
             ({:.1} minutes at Ts = 30 s)",
            steps as f64 * 0.5
        ),
        None => println!("no convergence within 200 steps"),
    }
}
