//! Shared helpers for the runnable examples (currently none — each example is self-contained).
