//! Quickstart: run the paper's headline experiment in a dozen lines.
//!
//! Simulates the 6H→7H electricity-price flip on the three-IDC fleet and
//! compares the paper's MPC controller against the instantaneous-optimal
//! baseline: same workload served, drastically smoother power demand.
//!
//! Run with: `cargo run -p idc-examples --bin quickstart`

use idc_core::metrics::Comparison;
use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::report;
use idc_core::scenario::smoothing_scenario;
use idc_core::simulation::Simulator;

fn main() -> Result<(), idc_core::Error> {
    let scenario = smoothing_scenario();
    let sim = Simulator::new();

    let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    let names = ["Michigan", "Minnesota", "Wisconsin"];
    println!("{}", report::render_trajectories(&mpc, &names));
    println!("{}", report::render_trajectories(&opt, &names));

    let cmp = Comparison::between(&mpc, &opt).expect("same scenario");
    println!("{}", report::render_comparison(&cmp, &names));
    Ok(())
}
