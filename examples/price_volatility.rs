//! The demand↔price "vicious cycle" (paper Sec. I).
//!
//! When a MW-scale consumer's own demand moves the wholesale price, naive
//! price-chasing re-optimizes against the price its *previous* move
//! created: load floods the cheapest region, the price there rises, the
//! ranking flips, and the allocation sloshes back — price and power
//! oscillate. The MPC's input-rate penalty damps exactly this loop.
//!
//! This example sweeps the price-impact coefficient γ and reports the
//! realized price volatility and worst power jump under both policies.
//!
//! Run with: `cargo run -p idc-examples --bin price_volatility`

use idc_core::metrics::price_volatility;
use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::scenario::vicious_cycle_scenario;
use idc_core::simulation::Simulator;

fn main() -> Result<(), idc_core::Error> {
    let sim = Simulator::new();
    println!("gamma | price volatility ($/MWh)   | worst power jump (MW)");
    println!("      |    optimal        MPC      |   optimal      MPC");
    for gamma in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let scenario = vicious_cycle_scenario(gamma);
        let opt = sim.run(
            &scenario,
            &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
        )?;
        let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;

        let jump = |r: &idc_core::simulation::SimulationResult| {
            (0..r.num_idcs())
                .map(|j| r.power_stats(j).expect("nonempty").max_abs_step_mw)
                .fold(0.0f64, f64::max)
        };
        println!(
            "{gamma:>5.1} | {:>10.3} {:>10.3} | {:>10.3} {:>8.3}",
            price_volatility(opt.prices()),
            price_volatility(mpc.prices()),
            jump(&opt),
            jump(&mpc),
        );
    }
    println!();
    println!("Larger gamma = stronger demand response. The baseline's oscillation grows with");
    println!("gamma while the MPC's damped moves keep both price and demand volatility low.");
    Ok(())
}
