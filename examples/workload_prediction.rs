//! Online workload prediction with AR(p) + RLS (paper Sec. III-D, Fig. 3).
//!
//! Streams a bursty diurnal web-workload trace (the EPA-HTTP stand-in)
//! through the online predictor and reports the one-step-ahead accuracy,
//! plus a sample of original-vs-predicted values around the morning ramp.
//!
//! Run with: `cargo run -p idc-examples --bin workload_prediction`

use idc_timeseries::metrics::{mape, rmse};
use idc_timeseries::predictor::WorkloadPredictor;
use idc_timeseries::traces::epa_like;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let day = epa_like().generate(&mut rng, 1440, 60.0); // 1 sample/minute

    let mut predictor = WorkloadPredictor::new(3).expect("order > 0");
    let mut predicted = Vec::with_capacity(day.len());
    for &v in &day {
        predicted.push(predictor.predict_next());
        predictor.observe(v);
    }

    // Skip the warm-up when scoring.
    let actual = &day[10..];
    let pred = &predicted[10..];
    println!("AR(3) + RLS one-step-ahead accuracy over a 24 h trace:");
    println!("  RMSE: {:>8.2} req/s", rmse(actual, pred));
    println!("  MAPE: {:>8.2} %", mape(actual, pred, 50.0));
    println!();
    println!("morning ramp, minutes 360-380 (06:00-06:20):");
    println!("  min   original   predicted");
    for k in 360..380 {
        println!("{:>5}  {:>9.1}  {:>10.1}", k, day[k], predicted[k]);
    }
    println!();
    println!(
        "estimated AR coefficients after the day: {:?}",
        predictor
            .coefficients()
            .iter()
            .map(|c| (c * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
