//! Geographic load balancing over a full day of real-time prices.
//!
//! Walks the 24-hour Oct-3-2011 price traces hour by hour, solving both
//! control-reference problems — the true eq. 46 LP and the price-greedy
//! heuristic the paper's plots follow — and reports where each puts the
//! workload, what it costs, and the cumulative gap between the two.
//!
//! Run with: `cargo run -p idc-examples --bin geo_load_balancing`

use idc_control::reference::{optimal_reference, price_greedy_reference};
use idc_core::config;
use idc_datacenter::allocation::Allocation;

fn main() -> Result<(), idc_core::Error> {
    let fleet = config::paper_fleet_calibrated();
    let traces = config::paper_price_traces();
    let offered = fleet.offered_workloads();
    let names = ["Michigan", "Minnesota", "Wisconsin"];

    println!(
        "hour |  prices ($/MWh)        |  LP workload split (kreq/s)  | LP $/h   | greedy $/h"
    );
    let mut lp_total = 0.0;
    let mut greedy_total = 0.0;
    let mut static_total = 0.0;
    // Price-blind baseline: fixed capacity-proportional split.
    let weights: Vec<f64> = fleet.idcs().iter().map(|i| i.max_workload()).collect();
    let static_alloc = Allocation::proportional(&offered, &weights).expect("positive capacity");
    for h in 0..24 {
        let prices: Vec<f64> = traces.iter().map(|t| t.price_at_hour(h as f64)).collect();
        let lp = optimal_reference(fleet.idcs(), &offered, &prices)?;
        let greedy = price_greedy_reference(fleet.idcs(), &offered, &prices)?;
        lp_total += lp.cost_rate_per_hour();
        greedy_total += greedy.cost_rate_per_hour();
        // Static split cost at this hour's prices (eq. 35 servers).
        static_total += (0..fleet.num_idcs())
            .map(|j| {
                let idc = &fleet.idcs()[j];
                let lam = static_alloc.idc_total(j);
                let m = lam / idc.service_rate() + 1.0 / (idc.service_rate() * idc.latency_bound());
                prices[j] * (idc.server().b1() * lam + idc.server().b0() * m) / 1e6
            })
            .sum::<f64>();
        let lam = lp.idc_workloads(offered.len());
        println!(
            "{h:>4} | {:>6.2} {:>6.2} {:>6.2} | {:>8.1} {:>8.1} {:>8.1} | {:>8.2} | {:>8.2}",
            prices[0],
            prices[1],
            prices[2],
            lam[0] / 1e3,
            lam[1] / 1e3,
            lam[2] / 1e3,
            lp.cost_rate_per_hour(),
            greedy.cost_rate_per_hour(),
        );
    }
    println!();
    println!("daily electricity cost, LP optimum:   ${lp_total:.2}");
    println!("daily electricity cost, price-greedy: ${greedy_total:.2}");
    println!("daily electricity cost, static split: ${static_total:.2}");
    println!(
        "geographic load balancing saves {:.2}% over the price-blind static split",
        100.0 * (static_total - lp_total) / static_total
    );
    println!(
        "greedy overhead: {:.2}% — the gap the paper's plotted 'optimal method' leaves on the table",
        100.0 * (greedy_total - lp_total) / lp_total
    );
    println!();
    for (j, name) in names.iter().enumerate() {
        println!(
            "{name}: installed {} servers at {} req/s each",
            fleet.idcs()[j].total_servers(),
            fleet.idcs()[j].service_rate()
        );
    }

    // Where should the operator build out? Sum each IDC's capacity shadow
    // price ($/h per installed server) across the day.
    let mut buildout = vec![0.0; fleet.num_idcs()];
    for h in 0..24 {
        let prices: Vec<f64> = traces.iter().map(|t| t.price_at_hour(h as f64)).collect();
        let lp = optimal_reference(fleet.idcs(), &offered, &prices)?;
        for (acc, &s) in buildout.iter_mut().zip(lp.server_shadow()) {
            *acc += s;
        }
    }
    println!();
    println!("marginal value of one extra installed server ($/day, from LP shadow prices):");
    for (j, name) in names.iter().enumerate() {
        println!("  {name:>10}: {:.4}", -buildout[j]);
    }
    Ok(())
}
