//! Peak shaving under grid power budgets (paper Sec. V-C, Figs. 6–7).
//!
//! The 7H price flip makes the baseline jump Michigan to 5.7 MW and keep
//! Minnesota at 11.4 MW — both above their budgets (5.13 and 10.26 MW).
//! The MPC tracks the budget-clamped reference instead, redistributing the
//! displaced load to Wisconsin, which settles between its budget and its
//! optimal value exactly as the paper describes.
//!
//! Run with: `cargo run -p idc-examples --bin peak_shaving`

use idc_core::policy::{MpcPolicy, OptimalPolicy, ReferenceKind};
use idc_core::report;
use idc_core::scenario::peak_shaving_scenario;
use idc_core::simulation::Simulator;

fn main() -> Result<(), idc_core::Error> {
    let scenario = peak_shaving_scenario();
    let budgets = scenario.budgets().expect("scenario has budgets").clone();
    let sim = Simulator::new();

    let mpc = sim.run(&scenario, &mut MpcPolicy::paper_tuned(&scenario)?)?;
    let opt = sim.run(
        &scenario,
        &mut OptimalPolicy::new(ReferenceKind::PriceGreedy),
    )?;

    let names = ["Michigan", "Minnesota", "Wisconsin"];
    println!("{}", report::render_trajectories(&mpc, &names));
    println!("{}", report::render_trajectories(&opt, &names));

    println!("power budgets (MW): {:?}", budgets.as_slice());
    let mpc_v = mpc.budget_violation_fractions(budgets.as_slice());
    let opt_v = opt.budget_violation_fractions(budgets.as_slice());
    for (j, name) in names.iter().enumerate() {
        println!(
            "{name:>10}: budget {:>6.3} MW | over-budget samples  MPC {:>5.1}%  optimal {:>5.1}% | final power  MPC {:>6.3}  optimal {:>6.3} MW",
            budgets.budget_mw(j),
            100.0 * mpc_v[j],
            100.0 * opt_v[j],
            mpc.power_mw(j).last().expect("nonempty run"),
            opt.power_mw(j).last().expect("nonempty run"),
        );
    }
    Ok(())
}
